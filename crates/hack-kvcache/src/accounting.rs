//! Decode-instance memory accounting (Table 5 and the §7.4 overhead numbers).

use crate::layout::{CacheLayout, KvShape};
use hack_quant::params::QuantBits;

/// Memory model of a decode instance: parameters + activations + KV cache against the
/// GPU memory capacity allocated to one model replica.
#[derive(Debug, Clone, Copy)]
pub struct DecodeMemoryModel {
    /// Total GPU memory available to the replica, in bytes.
    pub gpu_memory_bytes: usize,
    /// Bytes of model parameters resident on this replica (after TP/PP sharding).
    pub param_bytes: usize,
    /// Bytes reserved for activations and other working state.
    pub activation_bytes: usize,
    /// KV shape of the model.
    pub shape: KvShape,
    /// KV storage layout used by the evaluated method.
    pub layout: CacheLayout,
}

/// Byte-level breakdown of a decode instance's memory usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryBreakdown {
    /// Parameter bytes.
    pub params: usize,
    /// Activation bytes.
    pub activations: usize,
    /// KV cache bytes (including any sums / FP16 tail the layout stores).
    pub kv: usize,
    /// Bytes attributable to Summation Elimination sums (zero for non-HACK layouts).
    pub se_sums: usize,
    /// Bytes attributable to the RQE FP16 tail (zero for non-HACK layouts).
    pub rqe_tail: usize,
    /// Total bytes.
    pub total: usize,
    /// Total as a fraction of GPU memory (the number Table 5 reports).
    pub fraction_of_gpu: f64,
}

impl DecodeMemoryModel {
    /// Bytes left for the KV cache after parameters and activations.
    pub fn kv_budget_bytes(&self) -> usize {
        self.gpu_memory_bytes
            .saturating_sub(self.param_bytes)
            .saturating_sub(self.activation_bytes)
    }

    /// Memory breakdown when `resident_tokens` KV tokens are cached.
    pub fn breakdown(&self, resident_tokens: usize) -> MemoryBreakdown {
        let kv = self.layout.kv_bytes(&self.shape, resident_tokens);
        let (se_sums, rqe_tail) = match self.layout {
            CacheLayout::Quantized {
                bits,
                partition,
                store_sums,
                fp16_tail,
            } => {
                let without_sums = CacheLayout::Quantized {
                    bits,
                    partition,
                    store_sums: false,
                    fp16_tail,
                }
                .kv_bytes(&self.shape, resident_tokens);
                let without_tail = CacheLayout::Quantized {
                    bits,
                    partition,
                    store_sums,
                    fp16_tail: false,
                }
                .kv_bytes(&self.shape, resident_tokens);
                let se = if store_sums { kv - without_sums } else { 0 };
                let tail = if fp16_tail {
                    kv.saturating_sub(without_tail)
                } else {
                    0
                };
                (se, tail)
            }
            _ => (0, 0),
        };
        let total = self.param_bytes + self.activation_bytes + kv;
        MemoryBreakdown {
            params: self.param_bytes,
            activations: self.activation_bytes,
            kv,
            se_sums,
            rqe_tail,
            total,
            fraction_of_gpu: total as f64 / self.gpu_memory_bytes.max(1) as f64,
        }
    }

    /// Peak GPU memory usage fraction for a given number of resident KV tokens
    /// (clamped to 1.0, since a real system would have started rejecting requests).
    pub fn peak_usage_fraction(&self, resident_tokens: usize) -> f64 {
        self.breakdown(resident_tokens).fraction_of_gpu.min(1.0)
    }

    /// Largest number of KV tokens that fit in the KV budget (binary search over the
    /// exact layout size, since quantized layouts are not perfectly linear).
    pub fn max_resident_tokens(&self) -> usize {
        let budget = self.kv_budget_bytes();
        if budget == 0 {
            return 0;
        }
        let mut lo = 0usize;
        let mut hi = 1usize;
        while self.layout.kv_bytes(&self.shape, hi) <= budget {
            hi *= 2;
            if hi > 1 << 40 {
                break;
            }
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if self.layout.kv_bytes(&self.shape, mid) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// §7.4: fraction of GPU memory spent on SE sums at a given residency.
    pub fn se_overhead_fraction(&self, resident_tokens: usize) -> f64 {
        self.breakdown(resident_tokens).se_sums as f64 / self.gpu_memory_bytes.max(1) as f64
    }

    /// §7.4: fraction of GPU memory spent on the RQE FP16 tail at a given residency.
    pub fn rqe_overhead_fraction(&self, resident_tokens: usize) -> f64 {
        self.breakdown(resident_tokens).rqe_tail as f64 / self.gpu_memory_bytes.max(1) as f64
    }
}

/// Convenience constructor for the paper's default HACK layout with a given partition.
pub fn hack_layout_with_partition(partition: usize) -> CacheLayout {
    CacheLayout::Quantized {
        bits: QuantBits::Int2,
        partition,
        store_sums: true,
        fp16_tail: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Llama-3.1-70B-like decode replica on 8 × A100-80GB (640 GiB), FP16 parameters
    /// ≈ 140 GB, generous activation reservation.
    fn llama70b_model(layout: CacheLayout) -> DecodeMemoryModel {
        DecodeMemoryModel {
            gpu_memory_bytes: 640 * (1 << 30),
            param_bytes: 140 * (1 << 30),
            activation_bytes: 20 * (1 << 30),
            shape: KvShape {
                layers: 80,
                kv_heads: 8,
                head_dim: 128,
            },
            layout,
        }
    }

    #[test]
    fn budget_subtracts_params_and_activations() {
        let m = llama70b_model(CacheLayout::Fp16);
        assert_eq!(m.kv_budget_bytes(), (640 - 140 - 20) * (1 << 30));
    }

    #[test]
    fn breakdown_fraction_grows_with_tokens() {
        let m = llama70b_model(CacheLayout::Fp16);
        let a = m.peak_usage_fraction(100_000);
        let b = m.peak_usage_fraction(1_000_000);
        assert!(b > a);
        assert!(a > 0.25, "params alone put usage above 25%: {a}");
    }

    #[test]
    fn quantized_layout_reduces_peak_usage_as_in_table5() {
        // Same resident token count, baseline vs quantized: the reduction should be in
        // the tens of percent for long-sequence workloads.
        let tokens = 1_200_000;
        let base = llama70b_model(CacheLayout::Fp16).peak_usage_fraction(tokens);
        let quant = llama70b_model(CacheLayout::quantized_baseline()).peak_usage_fraction(tokens);
        let hack = llama70b_model(CacheLayout::hack_default()).peak_usage_fraction(tokens);
        assert!(
            base > quant,
            "baseline {base} should exceed quantized {quant}"
        );
        assert!(base - quant > 0.2, "reduction {} too small", base - quant);
        // HACK sits slightly above the plain quantized methods (sums + tail).
        assert!(hack >= quant);
        assert!(
            hack - quant < 0.05,
            "HACK extra usage {} too large",
            hack - quant
        );
    }

    #[test]
    fn se_overhead_is_a_few_percent_of_quantized_kv() {
        let m = llama70b_model(CacheLayout::hack_default());
        let tokens = 1_200_000;
        let se = m.se_overhead_fraction(tokens);
        // §7.4 reports 2.2%-2.7% of GPU capacity at full load; the exact figure depends
        // on residency, so just require the right order of magnitude.
        assert!(se > 0.001 && se < 0.05, "SE overhead fraction {se}");
    }

    #[test]
    fn rqe_overhead_is_well_below_one_percent() {
        let m = llama70b_model(CacheLayout::hack_default());
        // RQE tail is bounded by Π tokens per sequence; with ~75 resident sequences of
        // 16K tokens the tail share is tiny.
        let tokens = 1_200_000;
        let rqe = m.rqe_overhead_fraction(tokens);
        assert!(rqe < 0.01, "RQE overhead fraction {rqe}");
    }

    #[test]
    fn max_resident_tokens_respects_budget() {
        let m = llama70b_model(CacheLayout::Fp16);
        let max = m.max_resident_tokens();
        assert!(m.layout.kv_bytes(&m.shape, max) <= m.kv_budget_bytes());
        assert!(m.layout.kv_bytes(&m.shape, max + 1) > m.kv_budget_bytes());
        // Quantized layout fits several times more tokens.
        let mq = llama70b_model(CacheLayout::hack_default());
        assert!(mq.max_resident_tokens() > 4 * max);
    }

    #[test]
    fn zero_budget_fits_zero_tokens() {
        let mut m = llama70b_model(CacheLayout::Fp16);
        m.param_bytes = m.gpu_memory_bytes;
        assert_eq!(m.max_resident_tokens(), 0);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let m = llama70b_model(CacheLayout::hack_default());
        let b = m.breakdown(500_000);
        assert_eq!(b.total, b.params + b.activations + b.kv);
        assert!(b.se_sums < b.kv);
        assert!(b.rqe_tail < b.kv);
    }

    #[test]
    fn fraction_is_clamped() {
        let m = llama70b_model(CacheLayout::Fp16);
        assert_eq!(m.peak_usage_fraction(100_000_000), 1.0);
    }
}
