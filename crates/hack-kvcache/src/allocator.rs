//! Free-list allocator of physical KV cache blocks over a byte budget.

use crate::block::{BlockId, BLOCK_TOKENS};
use crate::layout::{CacheLayout, KvShape};

/// Allocates fixed-size KV blocks out of a GPU memory budget.
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    total_blocks: usize,
    free: Vec<BlockId>,
    block_bytes: usize,
}

impl BlockAllocator {
    /// Creates an allocator over `budget_bytes` of KV cache memory for the given model
    /// shape and storage layout.
    ///
    /// The per-block byte cost is amortised over a long reference sequence (128 blocks)
    /// rather than computed for a single 16-token block: per-sequence structures such
    /// as quantization metadata and the RQE FP16 tail exist once per sequence, not once
    /// per block, and charging them to every block would misprice quantized layouts.
    pub fn new(budget_bytes: usize, shape: &KvShape, layout: &CacheLayout) -> Self {
        const REFERENCE_BLOCKS: usize = 128;
        let block_bytes = layout
            .kv_bytes(shape, BLOCK_TOKENS * REFERENCE_BLOCKS)
            .div_ceil(REFERENCE_BLOCKS)
            .max(1);
        let total_blocks = budget_bytes / block_bytes;
        let free: Vec<BlockId> = (0..total_blocks).rev().map(BlockId).collect();
        Self {
            total_blocks,
            free,
            block_bytes,
        }
    }

    /// Creates an allocator with an explicit number of blocks (tests / custom sizing).
    pub fn with_blocks(total_blocks: usize, block_bytes: usize) -> Self {
        Self {
            total_blocks,
            free: (0..total_blocks).rev().map(BlockId).collect(),
            block_bytes,
        }
    }

    /// Total number of blocks managed.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Number of currently free blocks.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Number of currently allocated blocks.
    pub fn used_blocks(&self) -> usize {
        self.total_blocks - self.free.len()
    }

    /// Bytes represented by a single block.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.used_blocks() * self.block_bytes
    }

    /// Whether `n` blocks can currently be allocated.
    pub fn can_allocate(&self, n: usize) -> bool {
        self.free.len() >= n
    }

    /// Allocates `n` blocks, or returns `None` (allocating nothing) if they are not all
    /// available.
    pub fn allocate(&mut self, n: usize) -> Option<Vec<BlockId>> {
        if !self.can_allocate(n) {
            return None;
        }
        let at = self.free.len() - n;
        Some(self.free.split_off(at))
    }

    /// Frees previously allocated blocks.
    ///
    /// # Panics
    /// Panics if freeing would exceed the total block count (double free).
    pub fn free(&mut self, blocks: &[BlockId]) {
        assert!(
            self.free.len() + blocks.len() <= self.total_blocks,
            "double free: {} free + {} returned > {} total",
            self.free.len(),
            blocks.len(),
            self.total_blocks
        );
        self.free.extend_from_slice(blocks);
    }

    /// Fraction of blocks currently in use (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.used_blocks() as f64 / self.total_blocks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_quant::params::QuantBits;

    fn small_shape() -> KvShape {
        KvShape {
            layers: 2,
            kv_heads: 2,
            head_dim: 64,
        }
    }

    #[test]
    fn budget_determines_block_count() {
        let shape = small_shape();
        let layout = CacheLayout::Fp16;
        let block_bytes = layout.kv_bytes(&shape, BLOCK_TOKENS);
        let alloc = BlockAllocator::new(block_bytes * 10 + 5, &shape, &layout);
        assert_eq!(alloc.total_blocks(), 10);
        assert_eq!(alloc.free_blocks(), 10);
        assert_eq!(alloc.block_bytes(), block_bytes);
    }

    #[test]
    fn quantized_layout_yields_more_blocks_for_same_budget() {
        let shape = small_shape();
        let budget = 64 * 1024 * 1024;
        let fp16 = BlockAllocator::new(budget, &shape, &CacheLayout::Fp16);
        let hack = BlockAllocator::new(budget, &shape, &CacheLayout::hack_default());
        assert!(hack.total_blocks() > 4 * fp16.total_blocks());
    }

    #[test]
    fn allocate_and_free_round_trip() {
        let mut alloc = BlockAllocator::with_blocks(8, 100);
        let a = alloc.allocate(3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(alloc.used_blocks(), 3);
        assert_eq!(alloc.used_bytes(), 300);
        let b = alloc.allocate(5).unwrap();
        assert_eq!(alloc.free_blocks(), 0);
        assert!(alloc.allocate(1).is_none());
        alloc.free(&a);
        assert_eq!(alloc.free_blocks(), 3);
        alloc.free(&b);
        assert_eq!(alloc.free_blocks(), 8);
        assert_eq!(alloc.utilization(), 0.0);
    }

    #[test]
    fn failed_allocation_changes_nothing() {
        let mut alloc = BlockAllocator::with_blocks(2, 10);
        assert!(alloc.allocate(3).is_none());
        assert_eq!(alloc.free_blocks(), 2);
    }

    #[test]
    fn allocated_ids_are_unique() {
        let mut alloc = BlockAllocator::with_blocks(16, 10);
        let mut all = Vec::new();
        for _ in 0..4 {
            all.extend(alloc.allocate(4).unwrap());
        }
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut alloc = BlockAllocator::with_blocks(2, 10);
        let a = alloc.allocate(1).unwrap();
        alloc.free(&a);
        alloc.free(&a);
        alloc.free(&a);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut alloc = BlockAllocator::with_blocks(10, 10);
        alloc.allocate(5).unwrap();
        assert!((alloc.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hack_layout_block_bytes_are_amortised() {
        let shape = KvShape {
            layers: 4,
            kv_heads: 4,
            head_dim: 128,
        };
        let layout = CacheLayout::Quantized {
            bits: QuantBits::Int2,
            partition: 64,
            store_sums: true,
            fp16_tail: true,
        };
        let alloc = BlockAllocator::new(1 << 30, &shape, &layout);
        // The amortised per-block cost must be cheaper than pricing a lone 16-token
        // block (which would charge the whole FP16 tail to that block) but still much
        // cheaper than an FP16 block.
        assert!(alloc.block_bytes() < layout.kv_bytes(&shape, BLOCK_TOKENS));
        assert!(alloc.block_bytes() * 4 < CacheLayout::Fp16.kv_bytes(&shape, BLOCK_TOKENS));
    }
}
