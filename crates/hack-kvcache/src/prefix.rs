//! Per-replica session prefix cache.
//!
//! Multi-turn sessions replay the previous turn's context as the prompt
//! prefix of the next turn. A decode replica that keeps a finished session's
//! quantized KV bytes resident can serve the follow-up without re-prefilling
//! (or re-transferring) the shared prefix. [`PrefixCache`] models that
//! residency: at most one entry per session, sized in (quantized) KV bytes,
//! LRU-evicted under a byte capacity, with pinning so a prefix is never
//! evicted while a descendant request that was promised the hit is still in
//! flight.
//!
//! The cache is deliberately simple and fully deterministic: entries live in
//! a `Vec` scanned linearly (the per-replica session population is small),
//! recency is a logical clock bumped on every touch, and eviction order is
//! (oldest `last_used`, then lowest session id) — no hashing, no wall-clock.

/// One resident session prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixEntry {
    /// Session whose context this prefix holds.
    pub session: u64,
    /// Tokens of context the prefix covers (the parent's full sequence).
    pub tokens: usize,
    /// Resident size in bytes (quantized KV for `tokens`).
    pub bytes: f64,
    /// Number of in-flight descendant requests holding the entry pinned.
    pub pins: u32,
    /// Logical-clock timestamp of the last lookup/insert (LRU key).
    last_used: u64,
}

/// What [`PrefixCache::insert`] did, so the caller can mirror the byte deltas
/// into its own memory accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertReport {
    /// Whether the prefix is resident after the call.
    pub accepted: bool,
    /// Net change of resident bytes (insert minus evictions/replacement);
    /// negative when evictions outweigh the new entry.
    pub bytes_delta: f64,
    /// Sessions evicted to make room (never the inserted session itself).
    pub evicted: Vec<u64>,
}

/// Deterministic LRU cache of session prefixes for one decode replica.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixCache {
    capacity_bytes: f64,
    used_bytes: f64,
    peak_bytes: f64,
    clock: u64,
    entries: Vec<PrefixEntry>,
}

impl PrefixCache {
    /// An empty cache with the given byte capacity.
    pub fn new(capacity_bytes: f64) -> Self {
        assert!(
            capacity_bytes >= 0.0 && capacity_bytes.is_finite(),
            "cache capacity must be finite and non-negative"
        );
        Self {
            capacity_bytes,
            used_bytes: 0.0,
            peak_bytes: 0.0,
            clock: 0,
            entries: Vec::new(),
        }
    }

    /// Byte capacity of the cache.
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    /// High-water mark of resident bytes.
    pub fn peak_bytes(&self) -> f64 {
        self.peak_bytes
    }

    /// Number of resident prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes held by unpinned entries — reclaimable on demand by
    /// [`Self::evict_until`].
    pub fn evictable_bytes(&self) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.pins == 0)
            .map(|e| e.bytes)
            .sum()
    }

    fn position(&self, session: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.session == session)
    }

    /// Looks up a session's resident prefix, refreshing its recency. Returns
    /// `(tokens, bytes)` on a hit.
    pub fn lookup(&mut self, session: u64) -> Option<(usize, f64)> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.iter_mut().find(|e| e.session == session)?;
        entry.last_used = clock;
        Some((entry.tokens, entry.bytes))
    }

    /// Pins a session's entry (no-op if absent). Pinned entries survive every
    /// eviction path until unpinned.
    pub fn pin(&mut self, session: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.session == session) {
            e.pins += 1;
        }
    }

    /// Releases one pin of a session's entry (no-op if absent).
    pub fn unpin(&mut self, session: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.session == session) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Whether a session's entry is currently pinned (false if absent).
    pub fn is_pinned(&self, session: u64) -> bool {
        self.entries
            .iter()
            .any(|e| e.session == session && e.pins > 0)
    }

    /// Index of the least-recently-used unpinned entry (ties: lowest session
    /// id), excluding `keep`.
    fn lru_victim(&self, keep: u64) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.pins == 0 && e.session != keep)
            .min_by_key(|(_, e)| (e.last_used, e.session))
            .map(|(i, _)| i)
    }

    fn remove_at(&mut self, idx: usize) -> PrefixEntry {
        let entry = self.entries.remove(idx);
        self.used_bytes -= entry.bytes;
        if self.used_bytes < 0.0 {
            self.used_bytes = 0.0;
        }
        entry
    }

    /// Inserts or replaces the prefix of `session` (`tokens` of context,
    /// `bytes` resident size), evicting LRU unpinned entries of *other*
    /// sessions as needed. A replacement keeps the entry's pins. If the entry
    /// cannot fit even after evicting everything evictable, the insert is
    /// rejected — unless the session already holds a **pinned** entry, which
    /// is kept unchanged (a promise to an in-flight descendant outranks
    /// freshness).
    pub fn insert(&mut self, session: u64, tokens: usize, bytes: f64) -> InsertReport {
        self.clock += 1;
        let mut report = InsertReport {
            accepted: false,
            bytes_delta: 0.0,
            evicted: Vec::new(),
        };
        if bytes > self.capacity_bytes {
            // Oversized prefix: at best keep (do not grow) an existing entry.
            if let Some(idx) = self.position(session) {
                if self.entries[idx].pins > 0 {
                    self.entries[idx].last_used = self.clock;
                    report.accepted = true;
                } else {
                    let old = self.remove_at(idx);
                    report.bytes_delta -= old.bytes;
                    report.evicted.push(old.session);
                }
            }
            self.peak();
            return report;
        }
        let old_bytes = self
            .position(session)
            .map(|idx| self.entries[idx].bytes)
            .unwrap_or(0.0);
        // Evict until the (replaced) entry fits under capacity.
        while self.used_bytes - old_bytes + bytes > self.capacity_bytes {
            match self.lru_victim(session) {
                Some(idx) => {
                    let victim = self.remove_at(idx);
                    report.bytes_delta -= victim.bytes;
                    report.evicted.push(victim.session);
                }
                None => {
                    // Only pinned entries (or the session itself) remain.
                    if let Some(idx) = self.position(session) {
                        if self.entries[idx].pins > 0 {
                            self.entries[idx].last_used = self.clock;
                            report.accepted = true;
                        } else {
                            let old = self.remove_at(idx);
                            report.bytes_delta -= old.bytes;
                            report.evicted.push(old.session);
                        }
                    }
                    self.peak();
                    return report;
                }
            }
        }
        // Evictions may have shifted indices; re-locate the session's entry
        // (it is never its own victim, so presence is unchanged).
        match self.position(session) {
            Some(idx) => {
                self.used_bytes += bytes - self.entries[idx].bytes;
                let clock = self.clock;
                let e = &mut self.entries[idx];
                e.tokens = tokens;
                e.bytes = bytes;
                e.last_used = clock;
                report.bytes_delta += bytes - old_bytes;
            }
            None => {
                self.entries.push(PrefixEntry {
                    session,
                    tokens,
                    bytes,
                    pins: 0,
                    last_used: self.clock,
                });
                self.used_bytes += bytes;
                report.bytes_delta += bytes;
            }
        }
        report.accepted = true;
        self.peak();
        report
    }

    /// Removes a session's entry regardless of pins, returning its bytes.
    pub fn remove(&mut self, session: u64) -> Option<f64> {
        let idx = self.position(session)?;
        Some(self.remove_at(idx).bytes)
    }

    /// Evicts LRU unpinned entries until at least `need_bytes` have been
    /// freed (or nothing evictable remains). Returns the freed bytes and the
    /// evicted sessions — the reservation path uses this to let decode KV
    /// reservations reclaim cache space on demand.
    pub fn evict_until(&mut self, need_bytes: f64) -> (f64, Vec<u64>) {
        let mut freed = 0.0;
        let mut evicted = Vec::new();
        while freed < need_bytes {
            match self.lru_victim(u64::MAX) {
                Some(idx) => {
                    let victim = self.remove_at(idx);
                    freed += victim.bytes;
                    evicted.push(victim.session);
                }
                None => break,
            }
        }
        (freed, evicted)
    }

    /// Drops every entry (replica failure / drain), returning the sessions
    /// that were resident in insertion order.
    pub fn invalidate_all(&mut self) -> Vec<u64> {
        let sessions = self.entries.iter().map(|e| e.session).collect();
        self.entries.clear();
        self.used_bytes = 0.0;
        sessions
    }

    fn peak(&mut self) {
        if self.used_bytes > self.peak_bytes {
            self.peak_bytes = self.used_bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_refresh_recency_and_misses_return_none() {
        let mut c = PrefixCache::new(100.0);
        assert!(c.insert(1, 10, 40.0).accepted);
        assert!(c.insert(2, 20, 40.0).accepted);
        assert_eq!(c.lookup(1), Some((10, 40.0)));
        assert_eq!(c.lookup(3), None);
        // Session 2 is now LRU; inserting a third entry evicts it, not 1.
        let report = c.insert(3, 5, 40.0);
        assert!(report.accepted);
        assert_eq!(report.evicted, vec![2]);
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(2).is_none());
    }

    #[test]
    fn eviction_is_lru_with_session_tiebreak() {
        let mut c = PrefixCache::new(90.0);
        c.insert(7, 1, 30.0);
        c.insert(3, 1, 30.0);
        c.insert(5, 1, 30.0);
        // All same recency order 7 < 3 < 5 by insertion clock; evicting two
        // frees 7 then 3.
        let (freed, evicted) = c.evict_until(60.0);
        assert_eq!(freed, 60.0);
        assert_eq!(evicted, vec![7, 3]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pinned_entries_survive_every_eviction_path() {
        let mut c = PrefixCache::new(100.0);
        c.insert(1, 10, 60.0);
        c.pin(1);
        assert_eq!(c.evictable_bytes(), 0.0);
        let (freed, evicted) = c.evict_until(10.0);
        assert_eq!(freed, 0.0);
        assert!(evicted.is_empty());
        // An insert that cannot fit without evicting the pinned entry is
        // rejected; the pinned entry stays.
        let report = c.insert(2, 99, 80.0);
        assert!(!report.accepted);
        assert_eq!(c.lookup(1), Some((10, 60.0)));
        // Unpinning makes it evictable again.
        c.unpin(1);
        let report = c.insert(2, 99, 80.0);
        assert!(report.accepted);
        assert_eq!(report.evicted, vec![1]);
    }

    #[test]
    fn replacement_keeps_pins_and_updates_bytes() {
        let mut c = PrefixCache::new(100.0);
        c.insert(1, 10, 30.0);
        c.pin(1);
        let report = c.insert(1, 25, 70.0);
        assert!(report.accepted);
        assert_eq!(report.bytes_delta, 40.0);
        assert!(report.evicted.is_empty());
        assert_eq!(c.lookup(1), Some((25, 70.0)));
        assert_eq!(c.used_bytes(), 70.0);
        // Still pinned: a competing oversized insert cannot displace it.
        assert!(!c.insert(2, 1, 80.0).accepted);
        assert_eq!(c.lookup(1), Some((25, 70.0)));
    }

    #[test]
    fn pinned_entry_survives_oversized_replacement() {
        let mut c = PrefixCache::new(50.0);
        c.insert(1, 10, 30.0);
        c.pin(1);
        // Growing the session's own prefix beyond capacity keeps the old
        // (pinned) entry rather than dropping the promise.
        let report = c.insert(1, 99, 80.0);
        assert!(report.accepted);
        assert_eq!(c.lookup(1), Some((10, 30.0)));
        // Unpinned, the same oversized replacement just drops the entry.
        c.unpin(1);
        let report = c.insert(1, 99, 80.0);
        assert!(!report.accepted);
        assert_eq!(report.evicted, vec![1]);
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0.0);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut c = PrefixCache::new(100.0);
        let mut shadow = 0.0;
        for s in 0..20u64 {
            let report = c.insert(s, 1, 10.0 + s as f64);
            shadow += report.bytes_delta;
            assert!((shadow - c.used_bytes()).abs() < 1e-9);
            assert!(c.used_bytes() <= c.capacity_bytes());
        }
        assert!(c.peak_bytes() <= c.capacity_bytes());
        assert!(c.peak_bytes() > 0.0);
        let freed: f64 = c.invalidate_all().len() as f64;
        assert!(freed > 0.0);
        assert_eq!(c.used_bytes(), 0.0);
    }

    #[test]
    fn invalidate_returns_resident_sessions() {
        let mut c = PrefixCache::new(100.0);
        c.insert(4, 1, 10.0);
        c.insert(9, 1, 10.0);
        c.pin(9);
        assert_eq!(c.invalidate_all(), vec![4, 9]);
        assert!(c.is_empty());
        assert_eq!(c.lookup(9), None);
    }
}
