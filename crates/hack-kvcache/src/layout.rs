//! KV storage layouts and their byte costs.

use hack_quant::params::{PartitionSize, QuantBits};

/// Shape of a model's KV data (per token): number of layers, number of KV heads and
/// head dimension. Grouped-query attention models (Llama-3.1, Mistral, Yi) have fewer
/// KV heads than query heads, which this shape captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvShape {
    /// Number of transformer layers.
    pub layers: usize,
    /// Number of KV heads per layer.
    pub kv_heads: usize,
    /// Head dimension.
    pub head_dim: usize,
}

impl KvShape {
    /// Number of K (or V) elements per token across the whole model.
    pub fn elements_per_token(&self) -> usize {
        self.layers * self.kv_heads * self.head_dim
    }
}

/// Storage scheme of the KV cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheLayout {
    /// Plain FP16 storage (the disaggregated baseline).
    Fp16,
    /// Minifloat storage with `bits` bits per element (FP8/FP6/FP4 baselines, §3).
    /// Values are stored at this width but must be converted to FP16 for compute on
    /// GPUs without native support.
    Minifloat {
        /// Bits per element (4, 6 or 8).
        bits: u32,
    },
    /// Partitioned integer quantization (HACK, CacheGen- and KVQuant-like baselines).
    Quantized {
        /// Code precision (2-bit for HACK/KVQuant/CacheGen-equivalent setting).
        bits: QuantBits,
        /// Partition size Π along the quantized dimension.
        partition: usize,
        /// Whether per-partition code sums are stored (HACK's Summation Elimination).
        store_sums: bool,
        /// Whether an FP16 tail of up to Π tokens of V is kept unquantized
        /// (HACK's Requantization Elimination).
        fp16_tail: bool,
    },
}

impl CacheLayout {
    /// The paper's HACK layout: 2-bit codes, Π = 64, sums and FP16 tail enabled.
    pub fn hack_default() -> Self {
        CacheLayout::Quantized {
            bits: QuantBits::Int2,
            partition: PartitionSize::DEFAULT.get(),
            store_sums: true,
            fp16_tail: true,
        }
    }

    /// 2-bit quantized layout without HACK's extra structures (CacheGen / KVQuant).
    pub fn quantized_baseline() -> Self {
        CacheLayout::Quantized {
            bits: QuantBits::Int2,
            partition: PartitionSize::DEFAULT.get(),
            store_sums: false,
            fp16_tail: false,
        }
    }

    /// Bytes required to store the K **and** V data of `tokens` tokens for the given
    /// model shape.
    ///
    /// Quantized layouts are not exactly linear in the token count because V's
    /// partition metadata grows with `⌈tokens/Π⌉` and the FP16 tail holds up to Π
    /// tokens; this function accounts for both exactly.
    pub fn kv_bytes(&self, shape: &KvShape, tokens: usize) -> usize {
        if tokens == 0 {
            return 0;
        }
        let heads = shape.layers * shape.kv_heads;
        match *self {
            CacheLayout::Fp16 => 2 * 2 * tokens * shape.elements_per_token(),
            CacheLayout::Minifloat { bits } => {
                // K + V, `bits` bits per element, rounded up to bytes per head-token row
                // to model alignment.
                let row_bytes = (shape.head_dim * bits as usize).div_ceil(8);
                2 * tokens * heads * row_bytes
            }
            CacheLayout::Quantized {
                bits,
                partition,
                store_sums,
                fp16_tail,
            } => {
                let (quant_tokens, tail_tokens) = if fp16_tail {
                    ((tokens / partition) * partition, tokens % partition)
                } else {
                    (tokens, 0)
                };
                // K: partitioned along the head dimension — one partition set per token.
                let k = hack_quant::cost::quantized_tensor_bytes(
                    tokens,
                    shape.head_dim,
                    bits,
                    partition,
                    store_sums,
                );
                // V: partitioned along the sequence dimension — one partition set per channel.
                let v = hack_quant::cost::quantized_tensor_bytes(
                    shape.head_dim,
                    quant_tokens,
                    bits,
                    partition,
                    store_sums,
                );
                let tail = hack_quant::cost::rqe_tail_bytes(tail_tokens, shape.head_dim);
                heads * (k + v + tail)
            }
        }
    }

    /// Average bytes per token for block-granular accounting (computed over one block
    /// of `block_tokens` tokens).
    pub fn bytes_per_token(&self, shape: &KvShape, block_tokens: usize) -> usize {
        self.kv_bytes(shape, block_tokens)
            .div_ceil(block_tokens.max(1))
    }

    /// Compression ratio versus FP16 for a given sequence length
    /// (`1 - bytes/fp16_bytes`).
    pub fn compression_vs_fp16(&self, shape: &KvShape, tokens: usize) -> f64 {
        let fp16 = CacheLayout::Fp16.kv_bytes(shape, tokens) as f64;
        if fp16 == 0.0 {
            return 0.0;
        }
        1.0 - self.kv_bytes(shape, tokens) as f64 / fp16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama70b_shape() -> KvShape {
        // Llama-3.1 70B: 80 layers, 8 KV heads (GQA), head_dim 128.
        KvShape {
            layers: 80,
            kv_heads: 8,
            head_dim: 128,
        }
    }

    #[test]
    fn fp16_bytes_formula() {
        let shape = llama70b_shape();
        // Per token: 2 (K+V) * 2 bytes * 80*8*128 elements = 327,680 bytes.
        assert_eq!(CacheLayout::Fp16.kv_bytes(&shape, 1), 327_680);
        assert_eq!(CacheLayout::Fp16.kv_bytes(&shape, 100), 32_768_000);
        assert_eq!(CacheLayout::Fp16.kv_bytes(&shape, 0), 0);
    }

    #[test]
    fn hack_layout_compresses_around_85_percent() {
        let shape = llama70b_shape();
        let ratio = CacheLayout::hack_default().compression_vs_fp16(&shape, 16_384);
        assert!(ratio > 0.82 && ratio < 0.88, "ratio {ratio}");
    }

    #[test]
    fn quantized_baseline_slightly_smaller_than_hack() {
        // HACK stores sums and the FP16 tail, so it uses slightly more memory than a
        // plain 2-bit quantized cache (Table 5 shows ~0.6-2.9% higher usage).
        let shape = llama70b_shape();
        let tokens = 10_000;
        let hack = CacheLayout::hack_default().kv_bytes(&shape, tokens);
        let base = CacheLayout::quantized_baseline().kv_bytes(&shape, tokens);
        assert!(hack > base);
        let overhead = (hack - base) as f64 / base as f64;
        assert!(overhead < 0.10, "overhead {overhead}");
    }

    #[test]
    fn minifloat_sizes_are_ordered() {
        let shape = llama70b_shape();
        let tokens = 1000;
        let fp8 = CacheLayout::Minifloat { bits: 8 }.kv_bytes(&shape, tokens);
        let fp6 = CacheLayout::Minifloat { bits: 6 }.kv_bytes(&shape, tokens);
        let fp4 = CacheLayout::Minifloat { bits: 4 }.kv_bytes(&shape, tokens);
        let fp16 = CacheLayout::Fp16.kv_bytes(&shape, tokens);
        assert!(fp4 < fp6 && fp6 < fp8 && fp8 < fp16);
        // FP8 halves FP16; FP4 quarters it.
        assert_eq!(fp8 * 2, fp16);
        assert_eq!(fp4 * 4, fp16);
    }

    #[test]
    fn minifloat_compression_below_quantized() {
        // §3: FP4/6/8 cannot reach the ~86% compression of 2-bit quantization.
        let shape = llama70b_shape();
        let tokens = 8192;
        let fp4 = CacheLayout::Minifloat { bits: 4 }.compression_vs_fp16(&shape, tokens);
        let hack = CacheLayout::hack_default().compression_vs_fp16(&shape, tokens);
        assert!(fp4 <= 0.75 + 1e-9);
        assert!(hack > fp4);
    }

    #[test]
    fn bytes_per_token_is_positive_and_consistent() {
        let shape = llama70b_shape();
        let per_token = CacheLayout::hack_default().bytes_per_token(&shape, 16);
        assert!(per_token > 0);
        let full = CacheLayout::hack_default().kv_bytes(&shape, 16);
        assert!(per_token * 16 >= full);
    }

    #[test]
    fn elements_per_token() {
        assert_eq!(llama70b_shape().elements_per_token(), 80 * 8 * 128);
    }

    #[test]
    fn hack_tail_grows_then_resets_at_partition_boundary() {
        let shape = KvShape {
            layers: 1,
            kv_heads: 1,
            head_dim: 128,
        };
        let layout = CacheLayout::hack_default();
        // At exactly 64 tokens the tail is empty; at 65 it holds one token.
        let at64 = layout.kv_bytes(&shape, 64);
        let at65 = layout.kv_bytes(&shape, 65);
        let at127 = layout.kv_bytes(&shape, 127);
        assert!(at65 > at64);
        // The FP16 tail at 127 tokens (63 tokens * 128 dims * 2 bytes) dominates the
        // growth between 64 and 127.
        assert!(at127 - at64 > 63 * 128 * 2);
    }
}
