//! Per-sequence KV cache management: block tables, appends, admission control.

use crate::allocator::BlockAllocator;
use crate::block::{blocks_for_tokens, BlockId, BLOCK_TOKENS};
use crate::layout::{CacheLayout, KvShape};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Identifier of a sequence (request) resident in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SequenceId(pub u64);

#[derive(Debug, Clone)]
struct SequenceEntry {
    blocks: Vec<BlockId>,
    tokens: usize,
}

/// Paged KV cache manager for one decode (or prefill) instance.
///
/// Thread-safe: the cluster simulator and the transport demo touch it from multiple
/// worker threads.
#[derive(Debug)]
pub struct KvCacheManager {
    inner: Mutex<Inner>,
    shape: KvShape,
    layout: CacheLayout,
}

#[derive(Debug)]
struct Inner {
    allocator: BlockAllocator,
    sequences: HashMap<SequenceId, SequenceEntry>,
    peak_used_blocks: usize,
}

impl KvCacheManager {
    /// Creates a manager over `budget_bytes` of KV memory.
    pub fn new(budget_bytes: usize, shape: KvShape, layout: CacheLayout) -> Self {
        let allocator = BlockAllocator::new(budget_bytes, &shape, &layout);
        Self {
            inner: Mutex::new(Inner {
                allocator,
                sequences: HashMap::new(),
                peak_used_blocks: 0,
            }),
            shape,
            layout,
        }
    }

    /// The model KV shape this cache serves.
    pub fn shape(&self) -> KvShape {
        self.shape
    }

    /// The storage layout of this cache.
    pub fn layout(&self) -> CacheLayout {
        self.layout
    }

    /// Whether a new sequence of `tokens` tokens can currently be admitted.
    pub fn can_admit(&self, tokens: usize) -> bool {
        self.inner
            .lock()
            .allocator
            .can_allocate(blocks_for_tokens(tokens))
    }

    /// Admits a sequence with `tokens` tokens (its prompt KV data), allocating blocks.
    /// Returns `false` (and admits nothing) if memory is insufficient — the caller then
    /// swaps to CPU memory or queues the request, as in §4.
    pub fn admit(&self, id: SequenceId, tokens: usize) -> bool {
        let mut inner = self.inner.lock();
        assert!(
            !inner.sequences.contains_key(&id),
            "sequence {id:?} already admitted"
        );
        let needed = blocks_for_tokens(tokens);
        match inner.allocator.allocate(needed) {
            Some(blocks) => {
                inner.sequences.insert(id, SequenceEntry { blocks, tokens });
                inner.peak_used_blocks = inner.peak_used_blocks.max(inner.allocator.used_blocks());
                true
            }
            None => false,
        }
    }

    /// Appends one generated token to a sequence, allocating a new block when the
    /// current one is full. Returns `false` if a needed block could not be allocated
    /// (the sequence is left unchanged).
    pub fn append_token(&self, id: SequenceId) -> bool {
        let mut inner = self.inner.lock();
        let needs_block = {
            let entry = inner
                .sequences
                .get(&id)
                .unwrap_or_else(|| panic!("unknown sequence {id:?}"));
            entry.tokens.is_multiple_of(BLOCK_TOKENS) && entry.tokens > 0 || entry.blocks.is_empty()
        };
        if needs_block {
            match inner.allocator.allocate(1) {
                Some(mut blocks) => {
                    let new_block = blocks.pop().unwrap();
                    inner.sequences.get_mut(&id).unwrap().blocks.push(new_block);
                }
                None => return false,
            }
        }
        inner.sequences.get_mut(&id).unwrap().tokens += 1;
        inner.peak_used_blocks = inner.peak_used_blocks.max(inner.allocator.used_blocks());
        true
    }

    /// Releases a finished sequence, returning its blocks to the free list.
    pub fn release(&self, id: SequenceId) {
        let mut inner = self.inner.lock();
        if let Some(entry) = inner.sequences.remove(&id) {
            inner.allocator.free(&entry.blocks);
        }
    }

    /// Number of tokens held for a sequence, if resident.
    pub fn tokens_of(&self, id: SequenceId) -> Option<usize> {
        self.inner.lock().sequences.get(&id).map(|e| e.tokens)
    }

    /// Number of resident sequences.
    pub fn resident_sequences(&self) -> usize {
        self.inner.lock().sequences.len()
    }

    /// Bytes currently allocated to KV data.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().allocator.used_bytes()
    }

    /// Peak bytes ever allocated to KV data.
    pub fn peak_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.peak_used_blocks * inner.allocator.block_bytes()
    }

    /// Current block utilisation (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        self.inner.lock().allocator.utilization()
    }

    /// Total KV memory budget in bytes.
    pub fn capacity_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.allocator.total_blocks() * inner.allocator.block_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> KvShape {
        KvShape {
            layers: 2,
            kv_heads: 2,
            head_dim: 64,
        }
    }

    fn manager_with_blocks(blocks: usize) -> KvCacheManager {
        let layout = CacheLayout::Fp16;
        let s = shape();
        let block_bytes = layout.kv_bytes(&s, BLOCK_TOKENS);
        KvCacheManager::new(block_bytes * blocks, s, layout)
    }

    #[test]
    fn admit_allocates_expected_blocks() {
        let m = manager_with_blocks(10);
        assert!(m.can_admit(100));
        assert!(m.admit(SequenceId(1), 100));
        // 100 tokens -> 7 blocks of 16.
        assert_eq!(m.used_bytes(), 7 * m.capacity_bytes() / 10);
        assert_eq!(m.tokens_of(SequenceId(1)), Some(100));
        assert_eq!(m.resident_sequences(), 1);
    }

    #[test]
    fn admission_fails_when_full_and_leaves_state_unchanged() {
        let m = manager_with_blocks(4);
        assert!(m.admit(SequenceId(1), 40)); // 3 blocks
        assert!(!m.can_admit(40));
        assert!(!m.admit(SequenceId(2), 40));
        assert_eq!(m.resident_sequences(), 1);
        assert!(m.admit(SequenceId(3), 10)); // 1 block still fits
    }

    #[test]
    fn append_token_allocates_block_on_boundary() {
        let m = manager_with_blocks(3);
        assert!(m.admit(SequenceId(1), 16)); // exactly one full block
        let before = m.used_bytes();
        assert!(m.append_token(SequenceId(1))); // needs a second block
        assert!(m.used_bytes() > before);
        assert_eq!(m.tokens_of(SequenceId(1)), Some(17));
        // Tokens 18..32 reuse the same block.
        for _ in 0..15 {
            assert!(m.append_token(SequenceId(1)));
        }
        assert_eq!(m.tokens_of(SequenceId(1)), Some(32));
        assert_eq!(m.used_bytes(), before + m.capacity_bytes() / 3);
    }

    #[test]
    fn append_fails_when_out_of_blocks() {
        let m = manager_with_blocks(1);
        assert!(m.admit(SequenceId(1), 16));
        assert!(!m.append_token(SequenceId(1)));
        assert_eq!(m.tokens_of(SequenceId(1)), Some(16));
    }

    #[test]
    fn release_returns_blocks() {
        let m = manager_with_blocks(4);
        assert!(m.admit(SequenceId(1), 64));
        assert!(!m.can_admit(16));
        m.release(SequenceId(1));
        assert!(m.can_admit(64));
        assert_eq!(m.used_bytes(), 0);
        assert_eq!(m.resident_sequences(), 0);
    }

    #[test]
    fn peak_usage_is_monotone() {
        let m = manager_with_blocks(8);
        assert!(m.admit(SequenceId(1), 64)); // 4 blocks
        let peak_after_admit = m.peak_bytes();
        m.release(SequenceId(1));
        assert_eq!(m.peak_bytes(), peak_after_admit);
        assert!(m.admit(SequenceId(2), 16));
        assert_eq!(m.peak_bytes(), peak_after_admit);
        assert!(m.admit(SequenceId(3), 112)); // brings usage to 8 blocks
        assert!(m.peak_bytes() > peak_after_admit);
    }

    #[test]
    #[should_panic(expected = "already admitted")]
    fn duplicate_admission_panics() {
        let m = manager_with_blocks(4);
        m.admit(SequenceId(1), 1);
        m.admit(SequenceId(1), 1);
    }

    #[test]
    #[should_panic(expected = "unknown sequence")]
    fn append_unknown_sequence_panics() {
        let m = manager_with_blocks(4);
        m.append_token(SequenceId(9));
    }

    #[test]
    fn quantized_layout_admits_many_more_tokens() {
        let s = shape();
        let budget = 8 * 1024 * 1024;
        let fp16 = KvCacheManager::new(budget, s, CacheLayout::Fp16);
        let hack = KvCacheManager::new(budget, s, CacheLayout::hack_default());
        // Keep admitting 512-token sequences until each cache is full.
        let count = |m: &KvCacheManager| {
            let mut n = 0u64;
            while m.admit(SequenceId(n), 512) {
                n += 1;
            }
            n
        };
        let n_fp16 = count(&fp16);
        let n_hack = count(&hack);
        assert!(n_hack >= 4 * n_fp16, "hack {n_hack} vs fp16 {n_fp16}");
    }

    #[test]
    fn utilization_reflects_block_usage() {
        let m = manager_with_blocks(10);
        assert_eq!(m.utilization(), 0.0);
        m.admit(SequenceId(1), 80); // 5 blocks
        assert!((m.utilization() - 0.5).abs() < 1e-9);
    }
}
