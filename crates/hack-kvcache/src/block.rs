//! Fixed-size KV cache blocks.

/// Number of token slots per KV cache block (vLLM's default block size).
pub const BLOCK_TOKENS: usize = 16;

/// Identifier of a physical KV cache block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// A physical block: a fixed number of token slots, of which `used` are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// This block's id.
    pub id: BlockId,
    /// Number of token slots currently used (`<= BLOCK_TOKENS`).
    pub used: usize,
}

impl Block {
    /// Creates an empty block.
    pub fn new(id: BlockId) -> Self {
        Self { id, used: 0 }
    }

    /// Remaining free token slots.
    pub fn free_slots(&self) -> usize {
        BLOCK_TOKENS - self.used
    }

    /// Whether the block is full.
    pub fn is_full(&self) -> bool {
        self.used == BLOCK_TOKENS
    }

    /// Fills up to `n` slots, returning how many were actually filled.
    pub fn fill(&mut self, n: usize) -> usize {
        let take = n.min(self.free_slots());
        self.used += take;
        take
    }
}

/// Number of blocks needed to hold `tokens` tokens.
pub fn blocks_for_tokens(tokens: usize) -> usize {
    tokens.div_ceil(BLOCK_TOKENS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_empty() {
        let b = Block::new(BlockId(3));
        assert_eq!(b.used, 0);
        assert_eq!(b.free_slots(), BLOCK_TOKENS);
        assert!(!b.is_full());
    }

    #[test]
    fn fill_caps_at_capacity() {
        let mut b = Block::new(BlockId(0));
        assert_eq!(b.fill(10), 10);
        assert_eq!(b.fill(10), BLOCK_TOKENS - 10);
        assert!(b.is_full());
        assert_eq!(b.fill(5), 0);
    }

    #[test]
    fn blocks_for_tokens_rounds_up() {
        assert_eq!(blocks_for_tokens(0), 0);
        assert_eq!(blocks_for_tokens(1), 1);
        assert_eq!(blocks_for_tokens(BLOCK_TOKENS), 1);
        assert_eq!(blocks_for_tokens(BLOCK_TOKENS + 1), 2);
        assert_eq!(blocks_for_tokens(1000), 63);
    }
}
