//! # hack-kvcache
//!
//! vLLM-style paged KV cache with byte-exact memory accounting.
//!
//! The paper builds HACK on top of vLLM's paged KV cache and modifies the cache
//! structure to hold 2-bit quantized codes, their FP16 `min`/`scale` metadata, the
//! per-partition code sums used by Summation Elimination, and a separate FP16 buffer
//! for the last (partial) block of V (§6). This crate reproduces that cache manager:
//!
//! * [`layout`] — [`CacheLayout`]: how many bytes a token's KV data occupies for a
//!   given storage scheme (FP16, FP8/6/4 casts, or partitioned 2-bit quantization with
//!   optional sums/tail), for a full model (layers × KV heads × head_dim).
//! * [`block`] / [`allocator`] — fixed-size token blocks and a free-list allocator over
//!   a GPU memory budget.
//! * [`manager`] — [`KvCacheManager`]: per-sequence block tables, token appends, block
//!   allocation/free, swap-out decisions, utilisation and peak-usage queries. This is
//!   the component the cluster simulator uses to decide whether a decode instance can
//!   accept a request (and whether the prefill instance must spill KV data to CPU
//!   memory, §2.1/§4).
//! * [`accounting`] — decode-instance memory accounting used to regenerate Table 5 and
//!   the SE/RQE overhead numbers of §7.4.
//! * [`prefix`] — [`PrefixCache`]: per-decode-replica residency of finished sessions'
//!   quantized KV prefixes (LRU with pinning), the model behind the cluster
//!   simulator's prefix-cache hits that skip re-prefilling shared session context.

pub mod accounting;
pub mod allocator;
pub mod block;
pub mod layout;
pub mod manager;
pub mod prefix;

pub use accounting::{DecodeMemoryModel, MemoryBreakdown};
pub use allocator::BlockAllocator;
pub use block::{BlockId, BLOCK_TOKENS};
pub use layout::{CacheLayout, KvShape};
pub use manager::{KvCacheManager, SequenceId};
pub use prefix::{InsertReport, PrefixCache, PrefixEntry};
