//! CacheGen-like baseline: delta encoding along the token axis + quantization +
//! entropy coding into a compact bitstream.
//!
//! CacheGen's key insight is that KV values of adjacent tokens in the same channel are
//! highly correlated, so encoding token-to-token *deltas* concentrates the distribution
//! around zero and makes it highly compressible (§2.2). This reproduction follows that
//! recipe:
//!
//! 1. Split the token axis into groups of [`CacheGenLike::anchor_interval`] tokens;
//!    the first token of each group is an **anchor** encoded directly, the rest are
//!    encoded as deltas from the previous token in the same channel.
//! 2. Quantize anchors and deltas with per-channel asymmetric quantization
//!    ([`CacheGenLike::bits`] bits, metadata in FP16).
//! 3. Entropy-code the concatenated code stream with the canonical Huffman coder from
//!    [`crate::entropy`] (the paper uses an arithmetic coder — same order-0 entropy
//!    class; the substitution is recorded in DESIGN.md).
//!
//! Decompression reverses the three steps and, like KVQuant, always dequantizes before
//! compute.

use crate::entropy;
use crate::traits::{CompressedKv, KvCompressor};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_quant::stochastic::{dequantize_value, quantize_value, PartitionMeta};
use hack_tensor::{DetRng, Matrix};

/// CacheGen-like delta + entropy codec.
#[derive(Debug, Clone, Copy)]
pub struct CacheGenLike {
    /// Quantization precision of the per-group anchor values (kept high so drift does
    /// not accumulate across groups).
    pub anchor_bits: QuantBits,
    /// Quantization precision of the token-to-token deltas (low: deltas are small and
    /// concentrated around zero, which is what makes the bitstream compressible).
    pub delta_bits: QuantBits,
    /// Number of tokens per anchor group along the token axis.
    pub anchor_interval: usize,
}

impl Default for CacheGenLike {
    fn default() -> Self {
        Self {
            anchor_bits: QuantBits::Int8,
            delta_bits: QuantBits::Int2,
            anchor_interval: 64,
        }
    }
}

impl KvCompressor for CacheGenLike {
    fn name(&self) -> &'static str {
        "cachegen"
    }

    fn compress(&self, m: &Matrix, rng: &mut DetRng) -> CompressedKv {
        let tokens = m.rows();
        let channels = m.cols();
        let mut payload = Vec::new();
        payload.extend_from_slice(&(tokens as u32).to_le_bytes());
        payload.extend_from_slice(&(channels as u32).to_le_bytes());
        if tokens == 0 || channels == 0 {
            return CompressedKv {
                payload,
                rows: tokens,
                cols: channels,
            };
        }

        // Build the delta representation channel-by-channel, group-by-group.
        // `codes` is the symbol stream handed to the entropy coder; metadata (two FP16
        // per channel-group for anchors, two per channel-group for deltas) goes into a
        // side buffer.
        let groups = tokens.div_ceil(self.anchor_interval);
        let mut meta_bytes: Vec<u8> = Vec::with_capacity(groups * channels * 8);
        let mut codes: Vec<u8> = Vec::with_capacity(tokens * channels);

        for g in 0..groups {
            let start = g * self.anchor_interval;
            let end = (start + self.anchor_interval).min(tokens);
            for ch in 0..channels {
                // Anchor value and deltas for this channel within the group.
                let anchor = m.get(start, ch);
                let mut deltas = Vec::with_capacity(end - start - 1);
                for t in start + 1..end {
                    deltas.push(m.get(t, ch) - m.get(t - 1, ch));
                }
                // Quantize the anchor alone (degenerate one-value partition) and the
                // deltas with their own range.
                let anchor_meta = PartitionMeta::from_values(&[anchor], self.anchor_bits);
                let delta_meta = PartitionMeta::from_values(&deltas, self.delta_bits);
                push_meta(&mut meta_bytes, &anchor_meta);
                push_meta(&mut meta_bytes, &delta_meta);
                codes.push(quantize_value(
                    anchor,
                    &anchor_meta,
                    self.anchor_bits,
                    RoundingMode::Stochastic,
                    rng,
                ));
                for &d in &deltas {
                    codes.push(quantize_value(
                        d,
                        &delta_meta,
                        self.delta_bits,
                        RoundingMode::Stochastic,
                        rng,
                    ));
                }
            }
        }

        let encoded = entropy::encode(&codes);
        payload.extend_from_slice(&(meta_bytes.len() as u32).to_le_bytes());
        payload.extend_from_slice(&meta_bytes);
        payload.extend_from_slice(&encoded);
        CompressedKv {
            payload,
            rows: tokens,
            cols: channels,
        }
    }

    fn decompress(&self, c: &CompressedKv) -> Matrix {
        let payload = &c.payload;
        assert!(payload.len() >= 8, "CacheGen payload too short");
        let tokens = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        let channels = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
        if tokens == 0 || channels == 0 {
            return Matrix::zeros(tokens, channels);
        }
        let meta_len = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
        let meta_bytes = &payload[12..12 + meta_len];
        let codes = entropy::decode(&payload[12 + meta_len..]);

        let groups = tokens.div_ceil(self.anchor_interval);
        let mut out = Matrix::zeros(tokens, channels);
        let mut meta_idx = 0usize;
        let mut code_idx = 0usize;
        for g in 0..groups {
            let start = g * self.anchor_interval;
            let end = (start + self.anchor_interval).min(tokens);
            for ch in 0..channels {
                let anchor_meta = read_meta(meta_bytes, meta_idx);
                let delta_meta = read_meta(meta_bytes, meta_idx + 1);
                meta_idx += 2;
                let anchor = dequantize_value(codes[code_idx], &anchor_meta);
                code_idx += 1;
                out.set(start, ch, anchor);
                let mut prev = anchor;
                for t in start + 1..end {
                    let delta = dequantize_value(codes[code_idx], &delta_meta);
                    code_idx += 1;
                    prev += delta;
                    out.set(t, ch, prev);
                }
            }
        }
        out.to_f16_precision()
    }
}

fn push_meta(buf: &mut Vec<u8>, meta: &PartitionMeta) {
    buf.extend_from_slice(&hack_tensor::half::f32_to_f16_bits(meta.min).to_le_bytes());
    buf.extend_from_slice(&hack_tensor::half::f32_to_f16_bits(meta.scale).to_le_bytes());
}

fn read_meta(buf: &[u8], index: usize) -> PartitionMeta {
    let off = index * 4;
    assert!(buf.len() >= off + 4, "CacheGen metadata truncated");
    PartitionMeta {
        min: hack_tensor::half::f16_bits_to_f32(u16::from_le_bytes(
            buf[off..off + 2].try_into().unwrap(),
        )),
        scale: hack_tensor::half::f16_bits_to_f32(u16::from_le_bytes(
            buf[off + 2..off + 4].try_into().unwrap(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    /// KV-like data with strong token-to-token correlation (what CacheGen exploits).
    fn correlated_kv(tokens: usize, channels: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        let mut m = Matrix::zeros(tokens, channels);
        for ch in 0..channels {
            let mut value = rng.normal_f32(0.0, 1.0);
            for t in 0..tokens {
                value += rng.normal_f32(0.0, 0.05);
                m.set(t, ch, value + ((ch % 5) as f32 - 2.0) * 0.3);
            }
        }
        m
    }

    #[test]
    fn compresses_correlated_kv_beyond_80_percent() {
        let mut rng = DetRng::new(1);
        let m = correlated_kv(1024, 128, 2);
        let c = CacheGenLike::default().compress(&m, &mut rng);
        let ratio = c.compression_ratio();
        assert!(ratio > 0.80, "compression ratio {ratio}");
    }

    #[test]
    fn round_trip_is_accurate_on_correlated_data() {
        let mut rng = DetRng::new(3);
        let m = correlated_kv(512, 64, 4);
        let cg = CacheGenLike::default();
        let back = cg.decompress(&cg.compress(&m, &mut rng));
        assert_eq!(back.shape(), m.shape());
        let cos = cosine_similarity(&m, &back);
        assert!(cos > 0.97, "cosine {cos}");
        assert!(relative_frobenius_error(&m, &back) < 0.25);
    }

    #[test]
    fn short_sequences_round_trip() {
        let mut rng = DetRng::new(5);
        let m = correlated_kv(3, 16, 6);
        let cg = CacheGenLike::default();
        let back = cg.decompress(&cg.compress(&m, &mut rng));
        assert_eq!(back.shape(), (3, 16));
        assert!(cosine_similarity(&m, &back) > 0.9);
    }

    #[test]
    fn sequence_longer_than_anchor_interval_round_trips() {
        let mut rng = DetRng::new(7);
        let m = correlated_kv(200, 32, 8);
        let cg = CacheGenLike {
            anchor_bits: QuantBits::Int8,
            delta_bits: QuantBits::Int4,
            anchor_interval: 50,
        };
        let back = cg.decompress(&cg.compress(&m, &mut rng));
        assert!(cosine_similarity(&m, &back) > 0.95);
    }

    #[test]
    fn empty_matrix_round_trips() {
        let mut rng = DetRng::new(9);
        let m = Matrix::zeros(0, 8);
        let cg = CacheGenLike::default();
        let c = cg.compress(&m, &mut rng);
        let back = cg.decompress(&c);
        assert_eq!(back.shape(), (0, 8));
    }

    #[test]
    fn delta_coding_beats_direct_quantization_on_smooth_data() {
        // On strongly correlated data the delta stream has lower entropy than the raw
        // values, so CacheGen should compress better than plain 4-bit packing (0.75).
        let mut rng = DetRng::new(11);
        let m = correlated_kv(2048, 64, 12);
        let c = CacheGenLike::default().compress(&m, &mut rng);
        assert!(
            c.compression_ratio() > 0.78,
            "ratio {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn name_and_flags() {
        assert_eq!(CacheGenLike::default().name(), "cachegen");
        assert!(!CacheGenLike::default().compute_on_compressed());
    }
}
