//! Canonical Huffman entropy coding over byte symbols.
//!
//! CacheGen encodes quantized KV deltas with an arithmetic coder; this reproduction
//! uses a canonical Huffman coder — the same class of order-0 entropy coder, easier to
//! verify, and within a few percent of the same compressed size on the low-entropy
//! delta streams CacheGen produces (the substitution is documented in DESIGN.md).
//!
//! The format written by [`encode`] is self-describing:
//! `[u32 symbol count][256 bytes of code lengths][packed bitstream]`.

/// Maximum allowed code length. 32 bits is far more than needed for 256 symbols but
/// keeps the canonical-code arithmetic in `u64` comfortably.
const MAX_CODE_LEN: usize = 32;

/// Encodes a byte slice with a canonical Huffman code built from its own histogram.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    if data.is_empty() {
        out.extend_from_slice(&[0u8; 256]);
        return out;
    }

    let lengths = code_lengths(data);
    out.extend_from_slice(&lengths);

    let codes = canonical_codes(&lengths);
    let mut writer = BitWriter::new();
    for &b in data {
        let (code, len) = codes[b as usize];
        writer.write_bits(code, len);
    }
    out.extend_from_slice(&writer.finish());
    out
}

/// Decodes a buffer produced by [`encode`].
///
/// # Panics
/// Panics if the buffer is malformed.
pub fn decode(buf: &[u8]) -> Vec<u8> {
    assert!(buf.len() >= 4 + 256, "entropy buffer too short");
    let n = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let lengths: [u8; 256] = buf[4..260].try_into().unwrap();
    if n == 0 {
        return Vec::new();
    }
    let codes = canonical_codes(&lengths);

    // Build a decoding table: sorted (length, code) -> symbol.
    let mut by_code: Vec<(u32, u64, u8)> = Vec::new();
    for (sym, &(code, len)) in codes.iter().enumerate() {
        if len > 0 {
            by_code.push((len, code, sym as u8));
        }
    }
    by_code.sort_unstable();

    let mut reader = BitReader::new(&buf[260..]);
    let mut out = Vec::with_capacity(n);
    // Special case: a single distinct symbol gets code length 1 (code 0).
    while out.len() < n {
        let mut code: u64 = 0;
        let mut len: u32 = 0;
        let mut found = false;
        while (len as usize) < MAX_CODE_LEN {
            code = (code << 1) | reader.read_bit() as u64;
            len += 1;
            // Binary search would work, but the table is tiny; scan entries of this length.
            if let Ok(idx) = by_code.binary_search(&(len, code, 0)) {
                // Exact symbol 0 match.
                out.push(by_code[idx].2);
                found = true;
                break;
            }
            // binary_search with symbol 0 may miss entries with the same (len, code)
            // but a different symbol byte; look at the insertion point instead.
            let idx = by_code.partition_point(|&(l, c, _)| (l, c) < (len, code));
            if idx < by_code.len() && by_code[idx].0 == len && by_code[idx].1 == code {
                out.push(by_code[idx].2);
                found = true;
                break;
            }
        }
        assert!(found, "corrupt Huffman stream");
    }
    out
}

/// Computes Huffman code lengths for every byte symbol (0 for unused symbols).
fn code_lengths(data: &[u8]) -> [u8; 256] {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }

    // Build the Huffman tree with a simple two-queue / heap approach.
    #[derive(Debug)]
    struct Node {
        weight: u64,
        symbol: Option<u8>,
        left: Option<Box<Node>>,
        right: Option<Box<Node>>,
    }

    let mut heap: Vec<Node> = freq
        .iter()
        .enumerate()
        .filter(|(_, &w)| w > 0)
        .map(|(s, &w)| Node {
            weight: w,
            symbol: Some(s as u8),
            left: None,
            right: None,
        })
        .collect();

    let mut lengths = [0u8; 256];
    if heap.is_empty() {
        return lengths;
    }
    if heap.len() == 1 {
        lengths[heap[0].symbol.unwrap() as usize] = 1;
        return lengths;
    }

    while heap.len() > 1 {
        // Pop the two lightest nodes (linear scan: at most 256 leaves, negligible).
        heap.sort_by_key(|n| std::cmp::Reverse(n.weight));
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        heap.push(Node {
            weight: a.weight + b.weight,
            symbol: None,
            left: Some(Box::new(a)),
            right: Some(Box::new(b)),
        });
    }

    fn walk(node: &Node, depth: u8, lengths: &mut [u8; 256]) {
        if let Some(sym) = node.symbol {
            lengths[sym as usize] = depth.max(1);
            return;
        }
        if let Some(l) = &node.left {
            walk(l, depth + 1, lengths);
        }
        if let Some(r) = &node.right {
            walk(r, depth + 1, lengths);
        }
    }
    walk(&heap[0], 0, &mut lengths);
    lengths
}

/// Assigns canonical codes from code lengths. Returns `(code, length)` per symbol.
fn canonical_codes(lengths: &[u8; 256]) -> [(u64, u32); 256] {
    let mut codes = [(0u64, 0u32); 256];
    // Symbols sorted by (length, symbol value).
    let mut symbols: Vec<(u8, u8)> = lengths
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > 0)
        .map(|(s, &l)| (l, s as u8))
        .collect();
    symbols.sort_unstable();
    let mut code: u64 = 0;
    let mut prev_len = 0u8;
    for (len, sym) in symbols {
        if prev_len != 0 {
            code = (code + 1) << (len - prev_len);
        }
        codes[sym as usize] = (code, len as u32);
        prev_len = len;
    }
    codes
}

struct BitWriter {
    bytes: Vec<u8>,
    current: u8,
    filled: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self {
            bytes: Vec::new(),
            current: 0,
            filled: 0,
        }
    }

    fn write_bits(&mut self, code: u64, len: u32) {
        // Most-significant bit of the code first.
        for i in (0..len).rev() {
            let bit = ((code >> i) & 1) as u8;
            self.current = (self.current << 1) | bit;
            self.filled += 1;
            if self.filled == 8 {
                self.bytes.push(self.current);
                self.current = 0;
                self.filled = 0;
            }
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.current <<= 8 - self.filled;
            self.bytes.push(self.current);
        }
        self.bytes
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            bit: 0,
        }
    }

    fn read_bit(&mut self) -> u8 {
        assert!(self.pos < self.bytes.len(), "bit stream exhausted");
        let b = (self.bytes[self.pos] >> (7 - self.bit)) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.pos += 1;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::DetRng;

    #[test]
    fn round_trip_simple() {
        let data = b"hello huffman huffman hello".to_vec();
        let enc = encode(&data);
        assert_eq!(decode(&enc), data);
    }

    #[test]
    fn round_trip_empty() {
        let enc = encode(&[]);
        assert_eq!(decode(&enc), Vec::<u8>::new());
    }

    #[test]
    fn round_trip_single_symbol() {
        let data = vec![42u8; 1000];
        let enc = encode(&data);
        assert_eq!(decode(&enc), data);
        // 1000 identical bytes compress to ~1 bit each plus the header.
        assert!(enc.len() < 4 + 256 + 150);
    }

    #[test]
    fn round_trip_two_symbols() {
        let data: Vec<u8> = (0..500).map(|i| if i % 3 == 0 { 7 } else { 9 }).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc), data);
    }

    #[test]
    fn round_trip_random_bytes() {
        let mut rng = DetRng::new(1);
        let data: Vec<u8> = (0..10_000).map(|_| rng.range_usize(0, 256) as u8).collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc), data);
    }

    #[test]
    fn skewed_distribution_compresses_well() {
        // Geometric-ish distribution over a few symbols, like quantized KV deltas.
        let mut rng = DetRng::new(2);
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                let u = rng.next_f64();
                if u < 0.7 {
                    0
                } else if u < 0.9 {
                    1
                } else if u < 0.97 {
                    2
                } else {
                    rng.range_usize(3, 16) as u8
                }
            })
            .collect();
        let enc = encode(&data);
        assert_eq!(decode(&enc), data);
        let payload = enc.len() - 260;
        // Entropy of this source is ~1.3 bits/symbol; Huffman should get below 2 bits.
        assert!(
            (payload as f64) < data.len() as f64 * 2.0 / 8.0 * 1.15,
            "payload {payload} bytes for {} symbols",
            data.len()
        );
    }

    #[test]
    fn uniform_bytes_do_not_compress() {
        let mut rng = DetRng::new(3);
        let data: Vec<u8> = (0..8192).map(|_| rng.range_usize(0, 256) as u8).collect();
        let enc = encode(&data);
        // Header + ~8 bits per symbol.
        assert!(enc.len() >= data.len());
        assert!(enc.len() < data.len() + 600);
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        assert_eq!(decode(&encode(&data)), data);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn truncated_buffer_panics() {
        decode(&[1, 2, 3]);
    }
}
