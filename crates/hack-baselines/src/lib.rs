//! # hack-baselines
//!
//! Comparator KV-compression methods evaluated against HACK in the paper:
//!
//! * [`kvquant`] — **KVQuant-like**: low-precision (2-bit) partitioned asymmetric
//!   quantization of K and V, dequantized to FP16 before every attention computation.
//! * [`cachegen`] — **CacheGen-like**: exploits the KV data's distributional properties
//!   (adjacent tokens have similar values) by delta-encoding along the token axis,
//!   quantizing the deltas and entropy-coding the result into a compact bitstream.
//!   The paper's CacheGen uses an arithmetic coder; this reproduction uses a canonical
//!   Huffman coder ([`entropy`]) — the same class of order-0 entropy coder with within
//!   a few percent of the same compression, documented in DESIGN.md.
//! * [`minifloat`] — **FP8 / FP6 / FP4** casts (E5M2/E4M3, E3M2, E2M1): the
//!   low-precision floating-point baselines of §3, which compress less than 2-bit
//!   quantization and require conversion to FP16 on GPUs without native support.
//! * [`traits`] — the common [`KvCompressor`] interface (compress → bytes,
//!   decompress → matrix) used by the fidelity harness and the transport demo.

pub mod cachegen;
pub mod entropy;
pub mod kvquant;
pub mod minifloat;
pub mod traits;

pub use cachegen::CacheGenLike;
pub use kvquant::KvQuantLike;
pub use minifloat::{Fp4, Fp6, Fp8Format, MinifloatCast};
pub use traits::{CompressedKv, Fp16Identity, KvCompressor};
