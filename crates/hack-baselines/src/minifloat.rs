//! Low-precision floating-point (FP8 / FP6 / FP4) baselines (§3 of the paper).
//!
//! These formats compress the KV cache by 2–4× (well short of the ~86% achieved by
//! 2-bit quantization) and, on GPUs without native support (every pre-H100 part in the
//! paper's testbed), must be converted back to FP16 before computation — so they save
//! transfer bytes but not compute, and add a conversion step.
//!
//! Implemented formats:
//!
//! * FP8 **E4M3** and **E5M2** (the two OCP FP8 variants),
//! * FP6 **E3M2**,
//! * FP4 **E2M1**.
//!
//! Encoding uses round-to-nearest-even with saturation to the largest finite value
//! (the usual ML convention; infinities are not representable in E4M3/E2M1 payloads).

use crate::traits::{CompressedKv, KvCompressor};
use hack_tensor::{DetRng, Matrix};

/// FP8 format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fp8Format {
    /// 4 exponent bits, 3 mantissa bits (higher precision, smaller range).
    E4M3,
    /// 5 exponent bits, 2 mantissa bits (lower precision, larger range).
    E5M2,
}

/// Generic minifloat parameterisation: `1 + exp_bits + man_bits` total bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinifloatSpec {
    /// Exponent field width in bits.
    pub exp_bits: u32,
    /// Mantissa field width in bits.
    pub man_bits: u32,
}

impl MinifloatSpec {
    /// Total storage bits (including the sign bit).
    pub fn total_bits(&self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent bias.
    pub fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f32 {
        let max_exp = ((1 << self.exp_bits) - 1) - self.bias();
        let man_max = 2.0 - 2.0f32.powi(-(self.man_bits as i32));
        man_max * 2.0f32.powi(max_exp)
    }

    /// Encodes an `f32` into the minifloat bit pattern (in the low bits of the `u8`).
    pub fn encode(&self, value: f32) -> u8 {
        let sign = if value.is_sign_negative() { 1u8 } else { 0u8 };
        let sign_bits = sign << (self.exp_bits + self.man_bits);
        let v = value.abs();
        if v.is_nan() {
            // All-ones exponent + non-zero mantissa.
            return sign_bits | (((1 << self.exp_bits) - 1) << self.man_bits) as u8 | 1;
        }
        let max = self.max_value();
        if v >= max {
            // Saturate to the largest finite value.
            let exp_field = ((1 << self.exp_bits) - 1) as u8;
            let man_field = ((1 << self.man_bits) - 1) as u8;
            return sign_bits | (exp_field << self.man_bits) | man_field;
        }
        if v == 0.0 {
            return sign_bits;
        }
        // Decompose into exponent/mantissa in this format's terms.
        let exp = v.log2().floor() as i32;
        let exp_clamped = exp.max(1 - self.bias()); // subnormal threshold
        let biased = exp_clamped + self.bias();
        if biased <= 0 {
            // Subnormal: value = mantissa * 2^(1 - bias - man_bits)
            let step = 2.0f32.powi(1 - self.bias() - self.man_bits as i32);
            let q = (v / step).round() as u32;
            if q == 0 {
                return sign_bits;
            }
            if q >= (1 << self.man_bits) {
                // Rounded up into the normal range.
                return sign_bits | (1 << self.man_bits);
            }
            return sign_bits | q as u8;
        }
        // Normal: mantissa in [1, 2).
        let mant = v / 2.0f32.powi(exp_clamped);
        let man_scaled = ((mant - 1.0) * (1 << self.man_bits) as f32).round() as u32;
        let (mut exp_field, mut man_field) = (biased as u32, man_scaled);
        if man_field >= (1 << self.man_bits) {
            man_field = 0;
            exp_field += 1;
            if exp_field >= (1 << self.exp_bits) {
                // Overflowed past the top exponent: saturate.
                exp_field = (1 << self.exp_bits) - 1;
                man_field = (1 << self.man_bits) - 1;
            }
        }
        sign_bits | ((exp_field as u8) << self.man_bits) | man_field as u8
    }

    /// Decodes a minifloat bit pattern back to `f32`.
    pub fn decode(&self, bits: u8) -> f32 {
        let sign = if (bits >> (self.exp_bits + self.man_bits)) & 1 == 1 {
            -1.0f32
        } else {
            1.0
        };
        let exp_field = ((bits >> self.man_bits) & ((1 << self.exp_bits) - 1) as u8) as i32;
        let man_field = (bits & ((1 << self.man_bits) - 1) as u8) as f32;
        if exp_field == 0 {
            // Subnormal (or zero).
            let step = 2.0f32.powi(1 - self.bias() - self.man_bits as i32);
            return sign * man_field * step;
        }
        let mant = 1.0 + man_field / (1 << self.man_bits) as f32;
        sign * mant * 2.0f32.powi(exp_field - self.bias())
    }
}

/// FP8 spec lookup.
pub fn fp8_spec(format: Fp8Format) -> MinifloatSpec {
    match format {
        Fp8Format::E4M3 => MinifloatSpec {
            exp_bits: 4,
            man_bits: 3,
        },
        Fp8Format::E5M2 => MinifloatSpec {
            exp_bits: 5,
            man_bits: 2,
        },
    }
}

/// FP6 E3M2 spec.
pub const FP6_E3M2: MinifloatSpec = MinifloatSpec {
    exp_bits: 3,
    man_bits: 2,
};
/// FP4 E2M1 spec.
pub const FP4_E2M1: MinifloatSpec = MinifloatSpec {
    exp_bits: 2,
    man_bits: 1,
};

/// FP4 cast baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp4;
/// FP6 cast baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp6;

/// Generic minifloat cast compressor.
#[derive(Debug, Clone, Copy)]
pub struct MinifloatCast {
    /// The minifloat format used for storage.
    pub spec: MinifloatSpec,
    name: &'static str,
}

impl MinifloatCast {
    /// FP8 cast compressor.
    pub fn fp8(format: Fp8Format) -> Self {
        Self {
            spec: fp8_spec(format),
            name: "fp8",
        }
    }

    /// FP6 (E3M2) cast compressor.
    pub fn fp6() -> Self {
        Self {
            spec: FP6_E3M2,
            name: "fp6",
        }
    }

    /// FP4 (E2M1) cast compressor.
    pub fn fp4() -> Self {
        Self {
            spec: FP4_E2M1,
            name: "fp4",
        }
    }

    /// Storage bytes for `elements` values, with sub-byte formats densely packed per
    /// row of `row_len` values (rows are byte-aligned).
    pub fn storage_bytes(&self, rows: usize, row_len: usize) -> usize {
        let bits = self.spec.total_bits() as usize;
        rows * (row_len * bits).div_ceil(8)
    }
}

impl KvCompressor for MinifloatCast {
    fn name(&self) -> &'static str {
        self.name
    }

    fn compress(&self, m: &Matrix, _rng: &mut DetRng) -> CompressedKv {
        // Encode row-by-row as a packed bitstream (rows are byte-aligned).
        let bits = self.spec.total_bits();
        let mut payload = Vec::with_capacity(self.storage_bytes(m.rows(), m.cols()));
        for r in 0..m.rows() {
            let mut acc: u32 = 0;
            let mut filled: u32 = 0;
            for &v in m.row(r) {
                acc |= (self.spec.encode(v) as u32) << filled;
                filled += bits;
                while filled >= 8 {
                    payload.push((acc & 0xFF) as u8);
                    acc >>= 8;
                    filled -= 8;
                }
            }
            if filled > 0 {
                payload.push((acc & 0xFF) as u8);
            }
        }
        CompressedKv {
            payload,
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    fn decompress(&self, c: &CompressedKv) -> Matrix {
        let bits = self.spec.total_bits();
        let row_bytes = (c.cols * bits as usize).div_ceil(8);
        assert_eq!(
            c.payload.len(),
            c.rows * row_bytes,
            "corrupt minifloat payload"
        );
        let mask = (1u32 << bits) - 1;
        let mut out = Matrix::zeros(c.rows, c.cols);
        for r in 0..c.rows {
            let row = &c.payload[r * row_bytes..(r + 1) * row_bytes];
            let mut acc: u32 = 0;
            let mut filled: u32 = 0;
            let mut byte_idx = 0usize;
            for col in 0..c.cols {
                while filled < bits {
                    acc |= (row[byte_idx] as u32) << filled;
                    byte_idx += 1;
                    filled += 8;
                }
                let code = (acc & mask) as u8;
                acc >>= bits;
                filled -= bits;
                out.set(r, col, self.spec.decode(code));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    #[test]
    fn e4m3_known_values() {
        let spec = fp8_spec(Fp8Format::E4M3);
        assert_eq!(spec.total_bits(), 8);
        assert_eq!(spec.bias(), 7);
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 3.5, -0.25] {
            let got = spec.decode(spec.encode(v));
            assert_eq!(got, v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn e5m2_has_larger_range_than_e4m3() {
        let e4m3 = fp8_spec(Fp8Format::E4M3);
        let e5m2 = fp8_spec(Fp8Format::E5M2);
        assert!(e5m2.max_value() > e4m3.max_value());
        assert!(e4m3.max_value() > 400.0);
    }

    #[test]
    fn saturation_beyond_max() {
        let spec = FP4_E2M1;
        let max = spec.max_value();
        assert_eq!(spec.decode(spec.encode(1e6)), max);
        assert_eq!(spec.decode(spec.encode(-1e6)), -max);
    }

    #[test]
    fn fp4_grid_is_tiny() {
        // E2M1 represents only 0, 0.5, 1, 1.5, 2, 3, 4, 6 (and negatives).
        let spec = FP4_E2M1;
        let mut values: Vec<f32> = (0..16).map(|b| spec.decode(b as u8)).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(spec.max_value(), 6.0);
        assert!(values.contains(&1.5));
        assert!(values.contains(&-6.0));
    }

    #[test]
    fn zero_round_trips_for_all_formats() {
        for spec in [
            fp8_spec(Fp8Format::E4M3),
            fp8_spec(Fp8Format::E5M2),
            FP6_E3M2,
            FP4_E2M1,
        ] {
            assert_eq!(spec.decode(spec.encode(0.0)), 0.0);
        }
    }

    #[test]
    fn relative_error_shrinks_with_more_mantissa_bits() {
        let mut rng = DetRng::new(1);
        let values: Vec<f32> = (0..4000).map(|_| rng.normal_f32(0.0, 1.0)).collect();
        let err = |spec: MinifloatSpec| {
            values
                .iter()
                .map(|&v| (spec.decode(spec.encode(v)) - v).abs() as f64)
                .sum::<f64>()
                / values.len() as f64
        };
        let e_fp8 = err(fp8_spec(Fp8Format::E4M3));
        let e_fp6 = err(FP6_E3M2);
        let e_fp4 = err(FP4_E2M1);
        assert!(
            e_fp8 < e_fp6 && e_fp6 < e_fp4,
            "fp8 {e_fp8} fp6 {e_fp6} fp4 {e_fp4}"
        );
    }

    #[test]
    fn compressor_round_trip_and_sizes() {
        let mut rng = DetRng::new(2);
        let m = Matrix::random_normal(64, 128, 0.0, 1.0, &mut rng);
        for (cast, expected_ratio) in [
            (MinifloatCast::fp8(Fp8Format::E4M3), 0.5),
            (MinifloatCast::fp6(), 0.625),
            (MinifloatCast::fp4(), 0.75),
        ] {
            let c = cast.compress(&m, &mut rng);
            assert_eq!(c.bytes(), cast.storage_bytes(64, 128));
            assert!((c.compression_ratio() - expected_ratio).abs() < 1e-6);
            let back = cast.decompress(&c);
            assert_eq!(back.shape(), m.shape());
            assert!(cosine_similarity(&m, &back) > 0.85, "{}", cast.name());
        }
    }

    #[test]
    fn fp8_reconstruction_is_reasonably_accurate() {
        let mut rng = DetRng::new(3);
        let m = Matrix::random_normal(32, 64, 0.0, 1.0, &mut rng);
        let cast = MinifloatCast::fp8(Fp8Format::E4M3);
        let back = cast.decompress(&cast.compress(&m, &mut rng));
        assert!(relative_frobenius_error(&m, &back) < 0.05);
    }

    #[test]
    fn odd_column_counts_pack_correctly() {
        let mut rng = DetRng::new(4);
        let m = Matrix::random_normal(5, 13, 0.0, 1.0, &mut rng);
        let cast = MinifloatCast::fp4();
        let back = cast.decompress(&cast.compress(&m, &mut rng));
        assert_eq!(back.shape(), (5, 13));
    }

    #[test]
    fn nan_decodes_to_something_finite_or_nan_without_panicking() {
        let spec = fp8_spec(Fp8Format::E4M3);
        let bits = spec.encode(f32::NAN);
        let _ = spec.decode(bits);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(MinifloatCast::fp8(Fp8Format::E5M2).name(), "fp8");
        assert_eq!(MinifloatCast::fp6().name(), "fp6");
        assert_eq!(MinifloatCast::fp4().name(), "fp4");
    }
}
