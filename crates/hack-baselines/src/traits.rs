//! Common interface of KV compressors.

use hack_tensor::{DetRng, Matrix};

/// A compressed K or V tensor, as it would travel from the prefill instance to the
/// decode instance or sit in the KV cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedKv {
    /// Opaque, self-describing payload (codes + whatever metadata the method needs).
    pub payload: Vec<u8>,
    /// Number of token rows of the original matrix.
    pub rows: usize,
    /// Head dimension of the original matrix.
    pub cols: usize,
}

impl CompressedKv {
    /// Compressed size in bytes.
    pub fn bytes(&self) -> usize {
        self.payload.len()
    }

    /// Size of the original FP16 tensor in bytes.
    pub fn fp16_bytes(&self) -> usize {
        2 * self.rows * self.cols
    }

    /// Compression ratio versus FP16 (`1 - compressed/fp16`).
    pub fn compression_ratio(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        1.0 - self.bytes() as f64 / self.fp16_bytes() as f64
    }
}

/// A KV compression method: turns a `tokens × head_dim` K or V matrix into bytes and
/// back. Lossy methods return an approximation from `decompress`.
pub trait KvCompressor {
    /// Human-readable method name (used in reports).
    fn name(&self) -> &'static str;

    /// Compresses a K or V matrix.
    fn compress(&self, m: &Matrix, rng: &mut DetRng) -> CompressedKv;

    /// Reconstructs the (approximate) matrix from its compressed form.
    fn decompress(&self, c: &CompressedKv) -> Matrix;

    /// Whether attention can compute directly on the compressed representation without
    /// dequantization (true only for HACK's homomorphic quantization).
    fn compute_on_compressed(&self) -> bool {
        false
    }
}

/// The no-compression baseline: FP16 KV data shipped as raw little-endian bytes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fp16Identity;

impl KvCompressor for Fp16Identity {
    fn name(&self) -> &'static str {
        "baseline-fp16"
    }

    fn compress(&self, m: &Matrix, _rng: &mut DetRng) -> CompressedKv {
        let mut payload = Vec::with_capacity(2 * m.len());
        for &v in m.as_slice() {
            payload.extend_from_slice(&hack_tensor::half::f32_to_f16_bits(v).to_le_bytes());
        }
        CompressedKv {
            payload,
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    fn decompress(&self, c: &CompressedKv) -> Matrix {
        assert_eq!(c.payload.len(), 2 * c.rows * c.cols, "corrupt FP16 payload");
        let data: Vec<f32> = c
            .payload
            .chunks_exact(2)
            .map(|b| hack_tensor::half::f16_bits_to_f32(u16::from_le_bytes([b[0], b[1]])))
            .collect();
        Matrix::from_vec(c.rows, c.cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::relative_frobenius_error;

    #[test]
    fn fp16_identity_round_trips_with_half_precision() {
        let mut rng = DetRng::new(1);
        let m = Matrix::random_normal(10, 16, 0.0, 2.0, &mut rng);
        let c = Fp16Identity.compress(&m, &mut rng);
        assert_eq!(c.bytes(), c.fp16_bytes());
        assert!(c.compression_ratio().abs() < 1e-9);
        let back = Fp16Identity.decompress(&c);
        assert!(relative_frobenius_error(&m, &back) < 1e-3);
        assert!(!Fp16Identity.compute_on_compressed());
    }

    #[test]
    fn compression_ratio_of_empty_matrix_is_zero() {
        let c = CompressedKv {
            payload: vec![],
            rows: 0,
            cols: 0,
        };
        assert_eq!(c.compression_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "corrupt FP16 payload")]
    fn truncated_payload_is_rejected() {
        let c = CompressedKv {
            payload: vec![0u8; 3],
            rows: 1,
            cols: 2,
        };
        Fp16Identity.decompress(&c);
    }
}
