//! KVQuant-like baseline: low-precision partitioned asymmetric quantization with
//! dequantize-before-compute semantics.
//!
//! KVQuant quantizes keys per-channel and values per-token at 2-bit precision,
//! achieving ≈86% KV compression with ≈98% of baseline accuracy (§2.2). This
//! reproduction quantizes along the channel axis in partitions (the same partitioned
//! asymmetric scheme HACK uses, so the compression rate matches), serialises codes +
//! metadata into a payload, and always dequantizes before compute
//! ([`KvCompressor::compute_on_compressed`] is false).

use crate::traits::{CompressedKv, KvCompressor};
use hack_quant::packing::{pack_codes, unpack_codes};
use hack_quant::params::{QuantBits, RoundingMode};
use hack_quant::stochastic::PartitionMeta;
use hack_quant::QuantizedTensor;
use hack_tensor::{DetRng, Matrix};

/// KVQuant-like 2-bit (configurable) quantizer.
#[derive(Debug, Clone, Copy)]
pub struct KvQuantLike {
    /// Code precision (2-bit in the paper's configuration).
    pub bits: QuantBits,
    /// Partition size along the quantized dimension.
    pub partition: usize,
}

impl Default for KvQuantLike {
    fn default() -> Self {
        Self {
            bits: QuantBits::Int2,
            partition: 64,
        }
    }
}

impl KvQuantLike {
    /// Serialises a quantized tensor into a self-describing payload:
    /// `[u32 rows][u32 cols][packed codes][metadata as f32 pairs]`.
    fn serialize(q: &QuantizedTensor) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(q.rows() as u32).to_le_bytes());
        payload.extend_from_slice(&(q.cols() as u32).to_le_bytes());
        // Pack row by row so each vector starts byte-aligned (matches deserialization).
        for r in 0..q.rows() {
            payload.extend_from_slice(&pack_codes(q.codes_row(r), q.bits()));
        }
        for meta in q.metas() {
            payload.extend_from_slice(&hack_tensor::half::f32_to_f16_bits(meta.min).to_le_bytes());
            payload
                .extend_from_slice(&hack_tensor::half::f32_to_f16_bits(meta.scale).to_le_bytes());
        }
        payload
    }

    fn deserialize(&self, payload: &[u8]) -> QuantizedTensor {
        assert!(payload.len() >= 8, "KVQuant payload too short");
        let rows = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        let cols = u32::from_le_bytes(payload[4..8].try_into().unwrap()) as usize;
        let code_bytes = rows * self.bits.packed_bytes(cols);
        let codes_end = 8 + code_bytes;
        assert!(
            payload.len() >= codes_end,
            "KVQuant payload truncated (codes)"
        );
        let mut codes = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row_bytes = &payload
                [8 + r * self.bits.packed_bytes(cols)..8 + (r + 1) * self.bits.packed_bytes(cols)];
            codes.extend(unpack_codes(row_bytes, self.bits, cols));
        }
        let n_parts = if cols == 0 {
            0
        } else {
            cols.div_ceil(self.partition)
        };
        let mut metas = Vec::with_capacity(rows * n_parts);
        let meta_bytes = &payload[codes_end..];
        assert!(
            meta_bytes.len() >= rows * n_parts * 4,
            "KVQuant payload truncated (metadata)"
        );
        for i in 0..rows * n_parts {
            let min = hack_tensor::half::f16_bits_to_f32(u16::from_le_bytes(
                meta_bytes[i * 4..i * 4 + 2].try_into().unwrap(),
            ));
            let scale = hack_tensor::half::f16_bits_to_f32(u16::from_le_bytes(
                meta_bytes[i * 4 + 2..i * 4 + 4].try_into().unwrap(),
            ));
            metas.push(PartitionMeta { min, scale });
        }
        let sums = (0..rows * n_parts).map(|_| 0).collect();
        let mut q =
            QuantizedTensor::from_parts(rows, cols, self.bits, self.partition, codes, metas, sums);
        // Stored sums are not transferred by KVQuant; recompute for internal consistency.
        let recomputed: Vec<i32> = (0..rows)
            .flat_map(|r| (0..n_parts).map(move |p| (r, p)))
            .map(|(r, p)| q.recompute_sum(r, p))
            .collect();
        q = QuantizedTensor::from_parts(
            rows,
            cols,
            self.bits,
            self.partition,
            q.codes().to_vec(),
            q.metas().to_vec(),
            recomputed,
        );
        q
    }
}

impl KvCompressor for KvQuantLike {
    fn name(&self) -> &'static str {
        "kvquant"
    }

    fn compress(&self, m: &Matrix, rng: &mut DetRng) -> CompressedKv {
        // Per-channel quantization along the token dimension (KVQuant quantizes keys
        // per channel because channel magnitudes are far more consistent than token
        // magnitudes): each channel's token sequence is partitioned into Π-token groups.
        let q = QuantizedTensor::quantize_cols(
            m,
            self.bits,
            self.partition,
            RoundingMode::Stochastic,
            rng,
        );
        CompressedKv {
            payload: Self::serialize(&q),
            rows: m.rows(),
            cols: m.cols(),
        }
    }

    fn decompress(&self, c: &CompressedKv) -> Matrix {
        let q = self.deserialize(&c.payload);
        assert_eq!(q.rows(), c.cols, "channel count mismatch in payload");
        assert_eq!(q.cols(), c.rows, "token count mismatch in payload");
        q.dequantize_transposed().to_f16_precision()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    fn structured(tokens: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        Matrix::from_fn(tokens, d, |t, c| {
            ((c % 8) as f32 - 3.5) * 0.5 + 0.2 * rng.normal_f32(0.0, 1.0) + 0.01 * t as f32 % 0.7
        })
    }

    #[test]
    fn compression_rate_is_around_85_percent() {
        let mut rng = DetRng::new(1);
        let m = structured(2048, 128, 2);
        let c = KvQuantLike::default().compress(&m, &mut rng);
        let ratio = c.compression_ratio();
        assert!(ratio > 0.82 && ratio < 0.9, "compression ratio {ratio}");
    }

    #[test]
    fn round_trip_preserves_structure() {
        let mut rng = DetRng::new(3);
        let m = structured(256, 128, 4);
        let kq = KvQuantLike::default();
        let c = kq.compress(&m, &mut rng);
        let back = kq.decompress(&c);
        assert_eq!(back.shape(), m.shape());
        assert!(
            cosine_similarity(&m, &back) > 0.97,
            "cos {}",
            cosine_similarity(&m, &back)
        );
    }

    #[test]
    fn int8_variant_is_nearly_lossless() {
        let mut rng = DetRng::new(5);
        let m = structured(64, 128, 6);
        let kq = KvQuantLike {
            bits: QuantBits::Int8,
            partition: 64,
        };
        let back = kq.decompress(&kq.compress(&m, &mut rng));
        assert!(relative_frobenius_error(&m, &back) < 0.01);
    }

    #[test]
    fn does_not_claim_compute_on_compressed() {
        assert!(!KvQuantLike::default().compute_on_compressed());
        assert_eq!(KvQuantLike::default().name(), "kvquant");
    }

    #[test]
    fn odd_dimensions_round_trip() {
        let mut rng = DetRng::new(7);
        let m = structured(37, 100, 8);
        let kq = KvQuantLike::default();
        let back = kq.decompress(&kq.compress(&m, &mut rng));
        assert_eq!(back.shape(), (37, 100));
        assert!(cosine_similarity(&m, &back) > 0.95);
    }

    #[test]
    #[should_panic(expected = "payload too short")]
    fn corrupt_payload_panics() {
        let kq = KvQuantLike::default();
        kq.decompress(&CompressedKv {
            payload: vec![1, 2],
            rows: 1,
            cols: 1,
        });
    }
}
