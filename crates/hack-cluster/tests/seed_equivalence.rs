//! Equivalence of the engine-based simulator with the seed's monolithic one.
//!
//! The module below is the original single-file discrete-event simulator this
//! crate shipped with (verbatim, renamed `LegacySimulator`), kept as a
//! regression oracle: `Simulator::run()` on the `hack-sim` engine must
//! reproduce its per-request JCT breakdowns within 1e-9 on every configuration
//! exercised here.

#[allow(clippy::too_many_arguments)]
mod legacy {
    //! The discrete-event simulation engine.

    use hack_cluster::SimulationConfig;
    use hack_cluster::{RequestRecord, SimulationResult};
    use hack_metrics::jct::JctBreakdown;
    use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
    use hack_workload::trace::{Request, TraceGenerator};
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, VecDeque};

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum EventKind {
        /// A request arrives at the cluster.
        Arrival { req: usize },
        /// A prefill replica finishes prefill (+ quantization) of a request.
        PrefillDone { replica: usize, req: usize },
        /// A request's KV data has fully arrived at its decode replica.
        TransferDone { req: usize },
        /// A request has generated its last token.
        DecodeDone { replica: usize, req: usize },
    }

    #[derive(Debug, Clone, Copy)]
    struct Event {
        time: f64,
        seq: u64,
        kind: EventKind,
    }

    impl PartialEq for Event {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl Eq for Event {}
    impl PartialOrd for Event {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Event {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reverse ordering: BinaryHeap is a max-heap, we need the earliest event first.
            other
                .time
                .partial_cmp(&self.time)
                .unwrap_or(Ordering::Equal)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    #[derive(Debug, Default, Clone)]
    struct PrefillReplica {
        queue: VecDeque<usize>,
        queued_tokens: usize,
        busy: bool,
        nic_free_at: f64,
    }

    #[derive(Debug, Clone)]
    struct DecodeReplica {
        kv_capacity: f64,
        kv_used: f64,
        peak_kv: f64,
        active: usize,
        resident_tokens: usize,
    }

    #[derive(Debug, Clone, Default)]
    struct ReqState {
        prefill_replica: usize,
        decode_replica: usize,
        prefill_wait: f64,
        prefill_time: f64,
        quant_time: f64,
        comm_time: f64,
        memory_wait: f64,
        dequant_time: f64,
        decode_time: f64,
        /// Pipelined transfer completion time (if a transfer was started during prefill).
        pipelined_transfer_end: Option<f64>,
        /// When the request started waiting for decode memory.
        memory_wait_start: Option<f64>,
        kv_reserve_bytes: f64,
        finish_time: f64,
        done: bool,
        swapped: bool,
    }

    /// Discrete-event simulator of one configuration (cluster × trace × method).
    pub struct LegacySimulator {
        config: SimulationConfig,
        prefill_model: ReplicaCostModel,
        decode_model: ReplicaCostModel,
    }

    impl LegacySimulator {
        /// Creates a simulator from a configuration.
        pub fn new(config: SimulationConfig) -> Self {
            let model = config.cluster.model.spec();
            let prefill_model = ReplicaCostModel {
                model,
                gpu: config.cluster.prefill_gpu().spec(),
                parallel: config.cluster.prefill_parallelism(),
                params: config.cluster.cost_params,
            };
            let decode_model = ReplicaCostModel {
                model,
                gpu: config.cluster.decode_gpu().spec(),
                parallel: config.cluster.decode_parallelism(),
                params: config.cluster.cost_params,
            };
            Self {
                config,
                prefill_model,
                decode_model,
            }
        }

        fn profile(&self) -> &KvMethodProfile {
            &self.config.profile
        }

        fn kv_reserve_bytes(&self, request: &Request) -> f64 {
            self.decode_model.kv_fp16_bytes(request.total_tokens()) * self.profile().kv_size_factor
        }

        fn decode_durations(&self, request: &Request) -> (f64, f64) {
            let profile = self.profile();
            let batch = self.config.cluster.cost_params.decode_batch;
            let mut decode = 0.0;
            let mut dequant = 0.0;
            for i in 0..request.output_len {
                let kv_len = request.input_len + i + 1;
                decode += self.decode_model.decode_iter_time(kv_len, profile, batch);
                dequant += self
                    .decode_model
                    .dequant_or_approx_iter_time(kv_len, profile);
            }
            (decode, dequant)
        }

        /// Runs the simulation to completion and returns the aggregated result.
        pub fn run(&self) -> SimulationResult {
            let requests = TraceGenerator::new(self.config.trace).generate();
            let profile = *self.profile();
            let cluster = &self.config.cluster;

            let mut prefill: Vec<PrefillReplica> =
                vec![PrefillReplica::default(); cluster.prefill_replicas()];
            let kv_capacity = cluster.decode_kv_budget_bytes();
            let mut decode: Vec<DecodeReplica> = vec![
                DecodeReplica {
                    kv_capacity,
                    kv_used: 0.0,
                    peak_kv: 0.0,
                    active: 0,
                    resident_tokens: 0,
                };
                cluster.decode_replicas()
            ];
            let mut states: Vec<ReqState> = vec![ReqState::default(); requests.len()];
            let mut waiting_for_memory: VecDeque<usize> = VecDeque::new();

            let mut heap: BinaryHeap<Event> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut push =
                |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
                    *seq += 1;
                    heap.push(Event {
                        time,
                        seq: *seq,
                        kind,
                    });
                };

            for (i, r) in requests.iter().enumerate() {
                push(
                    &mut heap,
                    &mut seq,
                    r.arrival,
                    EventKind::Arrival { req: i },
                );
            }

            let mut completed = 0usize;
            let mut swapped = 0usize;
            let mut makespan = 0.0f64;

            while let Some(event) = heap.pop() {
                let now = event.time;
                makespan = makespan.max(now);
                match event.kind {
                    EventKind::Arrival { req } => {
                        // Shortest-queue dispatch by queued tokens (§7.1).
                        let replica = (0..prefill.len())
                            .min_by_key(|&r| {
                                prefill[r].queued_tokens
                                    + if prefill[r].busy {
                                        requests[req].input_len
                                    } else {
                                        0
                                    }
                            })
                            .unwrap();
                        states[req].prefill_replica = replica;
                        prefill[replica].queue.push_back(req);
                        prefill[replica].queued_tokens += requests[req].input_len;
                        if !prefill[replica].busy {
                            self.start_prefill(
                                replica,
                                now,
                                &requests,
                                &mut prefill,
                                &mut decode,
                                &mut states,
                                &mut heap,
                                &mut seq,
                                &mut push,
                            );
                        }
                    }
                    EventKind::PrefillDone { replica, req } => {
                        prefill[replica].busy = false;
                        prefill[replica].queued_tokens = prefill[replica]
                            .queued_tokens
                            .saturating_sub(requests[req].input_len);

                        // Hand the request to the transfer/decode pipeline.
                        if let Some(transfer_end) = states[req].pipelined_transfer_end {
                            // Pipelined: the transfer has been running during prefill; only
                            // the non-overlapped part counts as communication time.
                            let ready = transfer_end.max(now);
                            states[req].comm_time = (transfer_end - now).max(0.0);
                            push(&mut heap, &mut seq, ready, EventKind::TransferDone { req });
                        } else {
                            self.try_dispatch_to_decode(
                                req,
                                now,
                                &requests,
                                &mut prefill,
                                &mut decode,
                                &mut states,
                                &mut waiting_for_memory,
                                &mut swapped,
                                &mut heap,
                                &mut seq,
                                &mut push,
                            );
                        }

                        // Start the next queued prefill, if any.
                        if !prefill[replica].queue.is_empty() {
                            self.start_prefill(
                                replica,
                                now,
                                &requests,
                                &mut prefill,
                                &mut decode,
                                &mut states,
                                &mut heap,
                                &mut seq,
                                &mut push,
                            );
                        }
                    }
                    EventKind::TransferDone { req } => {
                        let d = states[req].decode_replica;
                        decode[d].active += 1;
                        decode[d].resident_tokens += requests[req].total_tokens();
                        let (decode_t, dequant_t) = self.decode_durations(&requests[req]);
                        // Congestion: when more sequences are resident than the nominal
                        // batch, every iteration takes proportionally longer.
                        let nominal = self.config.cluster.cost_params.decode_batch;
                        let congestion = (decode[d].active as f64 / nominal).max(1.0);
                        let decode_t = decode_t * congestion;
                        let dequant_t = dequant_t * congestion;
                        states[req].decode_time = decode_t;
                        states[req].dequant_time = dequant_t;
                        push(
                            &mut heap,
                            &mut seq,
                            now + decode_t + dequant_t,
                            EventKind::DecodeDone { replica: d, req },
                        );
                    }
                    EventKind::DecodeDone { replica, req } => {
                        decode[replica].kv_used -= states[req].kv_reserve_bytes;
                        decode[replica].active -= 1;
                        decode[replica].resident_tokens = decode[replica]
                            .resident_tokens
                            .saturating_sub(requests[req].total_tokens());
                        states[req].finish_time = now;
                        states[req].done = true;
                        completed += 1;

                        // Freed memory: admit waiting requests in FIFO order while they fit.
                        while let Some(&head) = waiting_for_memory.front() {
                            let bytes = self.kv_reserve_bytes(&requests[head]);
                            if let Some(target) = best_decode_replica(&decode, bytes) {
                                waiting_for_memory.pop_front();
                                let wait_start =
                                    states[head].memory_wait_start.take().unwrap_or(now);
                                states[head].memory_wait += now - wait_start;
                                self.reserve_and_transfer(
                                    head,
                                    target,
                                    now,
                                    &requests,
                                    &mut prefill,
                                    &mut decode,
                                    &mut states,
                                    &mut heap,
                                    &mut seq,
                                    &mut push,
                                );
                            } else {
                                break;
                            }
                        }
                    }
                }
                if completed == requests.len() {
                    break;
                }
            }

            // Assemble records.
            let kv_capacity_total = cluster.decode_replica_mem_bytes();
            let params_bytes = cluster.model.spec().param_bytes_fp16();
            let act_bytes = cluster.activation_reserve * kv_capacity_total;
            let peak_kv = decode.iter().map(|d| d.peak_kv).fold(0.0, f64::max);
            let peak_fraction = ((params_bytes + act_bytes + peak_kv) / kv_capacity_total).min(1.0);

            let mut records: Vec<RequestRecord> = requests
                .iter()
                .enumerate()
                .filter(|(i, _)| states[*i].done)
                .map(|(i, r)| {
                    let s = &states[i];
                    RequestRecord {
                        request: *r,
                        prefill_replica: s.prefill_replica,
                        decode_replica: s.decode_replica,
                        finish_time: s.finish_time,
                        breakdown: JctBreakdown {
                            prefill: s.prefill_time,
                            quantization: s.quant_time,
                            // Waiting for decode memory keeps the KV transfer pending on
                            // the prefill side (Fig. 1(d), case ii), so it is charged to
                            // communication, as in the paper's measurements.
                            communication: s.comm_time + s.memory_wait,
                            dequant_or_approx: s.dequant_time,
                            decode: s.decode_time,
                            queueing: s.prefill_wait,
                        },
                    }
                })
                .collect();
            records.sort_by(|a, b| a.finish_time.partial_cmp(&b.finish_time).unwrap());

            SimulationResult {
                method: profile.name.to_string(),
                records,
                peak_decode_memory_fraction: peak_fraction,
                peak_decode_kv_bytes: peak_kv,
                swapped_requests: swapped,
                rejected_requests: 0,
                rejected_by_tenant: Vec::new(),
                requeued_requests: 0,
                injected_failures: 0,
                transfer_retries: 0,
                retry_histogram: Vec::new(),
                aborted_requests: 0,
                abandoned_requests: 0,
                faults: Vec::new(),
                degraded_secs: 0.0,
                degraded_goodput: 0.0,
                degraded_link_secs: 0.0,
                throughput_loss_gbps_s: 0.0,
                rerouted_flows: 0,
                scale_ups: 0,
                scale_downs: 0,
                gpu_dollars: 0.0,
                dollars_per_1k_tokens: 0.0,
                prefix_hits: 0,
                prefix_misses: 0,
                prefix_evictions: 0,
                prefix_hit_rate: 0.0,
                prefix_bytes_saved: 0.0,
                prefill_seconds_saved: 0.0,
                prefix_cache_peak_fraction: Vec::new(),
                prefill_groups: Vec::new(),
                decode_groups: Vec::new(),
                makespan,
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn start_prefill(
            &self,
            replica: usize,
            now: f64,
            requests: &[Request],
            prefill: &mut [PrefillReplica],
            decode: &mut [DecodeReplica],
            states: &mut [ReqState],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
            push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
        ) {
            let Some(req) = prefill[replica].queue.pop_front() else {
                return;
            };
            prefill[replica].busy = true;
            let request = &requests[req];
            let profile = self.profile();

            states[req].prefill_wait = (now - request.arrival).max(0.0);
            let prefill_t = self.prefill_model.prefill_time(request.input_len, profile);
            let quant_t = self
                .prefill_model
                .quantization_time(request.input_len, profile);
            states[req].prefill_time = prefill_t;
            states[req].quant_time = quant_t;

            // Pipelining: start the KV transfer concurrently with prefill when a decode
            // replica can take the request right now (Fig. 1(d): this hides communication
            // only while the transfer is shorter than prefill and memory is available).
            if self.config.cluster.pipelining {
                let bytes = self.kv_reserve_bytes(request);
                if let Some(target) = best_decode_replica(decode, bytes) {
                    decode[target].kv_used += bytes;
                    decode[target].peak_kv = decode[target].peak_kv.max(decode[target].kv_used);
                    states[req].decode_replica = target;
                    states[req].kv_reserve_bytes = bytes;
                    let duration = self.transfer_duration(request);
                    let start = prefill[replica].nic_free_at.max(now);
                    let end = start + duration;
                    prefill[replica].nic_free_at = end;
                    states[req].pipelined_transfer_end = Some(end);
                }
            }

            push(
                heap,
                seq,
                now + prefill_t + quant_t,
                EventKind::PrefillDone { replica, req },
            );
        }

        fn transfer_duration(&self, request: &Request) -> f64 {
            let gbps = self
                .config
                .cluster
                .prefill_network_gbps()
                .min(self.config.cluster.decode_network_gbps());
            self.prefill_model
                .transfer_time(request.input_len, self.profile(), gbps)
        }

        #[allow(clippy::too_many_arguments)]
        fn try_dispatch_to_decode(
            &self,
            req: usize,
            now: f64,
            requests: &[Request],
            prefill: &mut [PrefillReplica],
            decode: &mut [DecodeReplica],
            states: &mut [ReqState],
            waiting: &mut VecDeque<usize>,
            swapped: &mut usize,
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
            push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
        ) {
            let bytes = self.kv_reserve_bytes(&requests[req]);
            if let Some(target) = best_decode_replica(decode, bytes) {
                self.reserve_and_transfer(
                    req, target, now, requests, prefill, decode, states, heap, seq, push,
                );
            } else {
                // No decode replica has room: the prefill instance spills the (quantized)
                // KV data to its CPU memory and waits (§4).
                states[req].memory_wait_start = Some(now);
                states[req].swapped = true;
                *swapped += 1;
                waiting.push_back(req);
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn reserve_and_transfer(
            &self,
            req: usize,
            target: usize,
            now: f64,
            requests: &[Request],
            prefill: &mut [PrefillReplica],
            decode: &mut [DecodeReplica],
            states: &mut [ReqState],
            heap: &mut BinaryHeap<Event>,
            seq: &mut u64,
            push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
        ) {
            let bytes = self.kv_reserve_bytes(&requests[req]);
            decode[target].kv_used += bytes;
            decode[target].peak_kv = decode[target].peak_kv.max(decode[target].kv_used);
            states[req].decode_replica = target;
            states[req].kv_reserve_bytes = bytes;

            let replica = states[req].prefill_replica;
            let duration = self.transfer_duration(&requests[req]);
            let start = prefill[replica].nic_free_at.max(now);
            let end = start + duration;
            prefill[replica].nic_free_at = end;
            // Communication time as experienced by the request: waiting for the NIC plus
            // the wire time.
            states[req].comm_time += end - now;
            push(heap, seq, end, EventKind::TransferDone { req });
        }
    }

    /// Picks the decode replica with the fewest resident tokens among those that can fit
    /// `bytes` of new KV data. A request too large to ever fit an *empty* replica is
    /// force-admitted to the emptiest one (modelling partial host offload) so the
    /// simulation always terminates.
    fn best_decode_replica(decode: &[DecodeReplica], bytes: f64) -> Option<usize> {
        let fit = decode
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kv_used + bytes <= d.kv_capacity)
            .min_by_key(|(_, d)| d.resident_tokens)
            .map(|(i, _)| i);
        if fit.is_some() {
            return fit;
        }
        if decode.iter().all(|d| bytes > d.kv_capacity) {
            // Oversized even for an empty replica: admit to the one with the most free
            // space once it is idle.
            return decode
                .iter()
                .enumerate()
                .filter(|(_, d)| d.active == 0)
                .min_by_key(|(_, d)| d.resident_tokens)
                .map(|(i, _)| i);
        }
        None
    }
}

use hack_cluster::{
    CacheConfig, ClusterConfig, FaultPlan, PolicyConfig, SimulationConfig, Simulator,
    TelemetryConfig,
};
use hack_model::cost::KvMethodProfile;
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_workload::dataset::Dataset;
use hack_workload::trace::TraceConfig;

fn assert_equivalent(config: SimulationConfig, label: &str) {
    let new = Simulator::new(config).run();
    let old = legacy::LegacySimulator::new(config).run();

    assert_eq!(
        new.records.len(),
        old.records.len(),
        "{label}: record count"
    );
    assert_eq!(
        new.swapped_requests, old.swapped_requests,
        "{label}: swapped"
    );
    assert!(
        (new.makespan - old.makespan).abs() <= 1e-9,
        "{label}: makespan {} vs {}",
        new.makespan,
        old.makespan
    );
    assert!(
        (new.peak_decode_kv_bytes - old.peak_decode_kv_bytes).abs()
            <= 1e-9 * old.peak_decode_kv_bytes.max(1.0),
        "{label}: peak kv"
    );
    assert!(
        (new.peak_decode_memory_fraction - old.peak_decode_memory_fraction).abs() <= 1e-12,
        "{label}: peak fraction"
    );
    for (a, b) in new.records.iter().zip(old.records.iter()) {
        assert_eq!(a.request, b.request, "{label}: request identity");
        assert_eq!(
            a.prefill_replica, b.prefill_replica,
            "{label}: prefill replica"
        );
        assert_eq!(
            a.decode_replica, b.decode_replica,
            "{label}: decode replica"
        );
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9;
        assert!(
            close(a.finish_time, b.finish_time),
            "{label}: finish {} vs {}",
            a.finish_time,
            b.finish_time
        );
        assert!(
            close(a.breakdown.prefill, b.breakdown.prefill),
            "{label}: prefill stage"
        );
        assert!(
            close(a.breakdown.quantization, b.breakdown.quantization),
            "{label}: quant stage"
        );
        assert!(
            close(a.breakdown.communication, b.breakdown.communication),
            "{label}: comm stage"
        );
        assert!(
            close(a.breakdown.dequant_or_approx, b.breakdown.dequant_or_approx),
            "{label}: dequant stage"
        );
        assert!(
            close(a.breakdown.decode, b.breakdown.decode),
            "{label}: decode stage"
        );
        assert!(
            close(a.breakdown.queueing, b.breakdown.queueing),
            "{label}: queueing stage"
        );
    }
}

fn config(
    profile: KvMethodProfile,
    dataset: Dataset,
    rps: f64,
    n: usize,
    seed: u64,
) -> SimulationConfig {
    SimulationConfig {
        cluster: ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
        trace: TraceConfig {
            dataset,
            rps,
            num_requests: n,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed,
        },
        profile,
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

#[test]
fn default_config_matches_seed_simulator_exactly() {
    assert_equivalent(
        config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 60, 7),
        "baseline/cocktail",
    );
}

#[test]
fn explicit_fcfs_policy_is_bit_identical_to_the_default_and_the_seed() {
    // The pluggable-policy frontend under explicit FCFS must reproduce the
    // default-policy simulator bit-for-bit (PartialEq compares every f64
    // exactly) and hence, transitively with the tests above, the seed
    // simulator. An admission policy generous enough to admit everything
    // (huge token buckets) must not perturb the run either.
    let base = config(KvMethodProfile::hack(), Dataset::Cocktail, 0.08, 50, 9);
    let default_run = Simulator::new(base).run();

    let mut fcfs = base;
    fcfs.policy.scheduling = hack_cluster::SchedulingPolicyKind::Fcfs;
    assert_eq!(Simulator::new(fcfs).run(), default_run, "explicit FCFS");

    let mut buckets = base;
    buckets.policy.admission = hack_cluster::AdmissionPolicyKind::TokenBucket {
        rate_per_weight: 1e6,
        burst: 1e6,
    };
    let bucket_run = Simulator::new(buckets).run();
    assert_eq!(bucket_run.rejected_requests, 0);
    assert_eq!(bucket_run, default_run, "non-binding admission");

    // Legacy oracle on the same configuration, for direct coverage.
    assert_equivalent(fcfs, "explicit fcfs vs seed");
}

#[test]
fn every_method_matches_on_the_default_config() {
    for (name, profile) in [
        ("baseline", KvMethodProfile::baseline()),
        ("cachegen", KvMethodProfile::cachegen()),
        ("kvquant", KvMethodProfile::kvquant()),
        ("hack", KvMethodProfile::hack()),
    ] {
        assert_equivalent(config(profile, Dataset::Cocktail, 0.08, 40, 42), name);
    }
}

#[test]
fn pipelining_matches_seed_simulator() {
    let mut cfg = config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 40, 11);
    cfg.cluster.pipelining = true;
    assert_equivalent(cfg, "pipelined baseline");
}

#[test]
fn memory_pressure_and_swap_path_match_seed_simulator() {
    let mut cluster = ClusterConfig::scalability(6);
    cluster.cost_params.decode_batch = 8.0;
    cluster.activation_reserve = 0.55;
    let cfg = SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.5,
            num_requests: 80,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 13,
        },
        profile: KvMethodProfile::baseline(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    };
    assert_equivalent(cfg, "overload/swap");
}

#[test]
fn datasets_gpus_and_seeds_match_seed_simulator() {
    for (dataset, rps) in [
        (Dataset::Imdb, 0.5),
        (Dataset::Arxiv, 0.1),
        (Dataset::HumanEval, 0.8),
    ] {
        assert_equivalent(
            config(KvMethodProfile::hack(), dataset, rps, 30, 5),
            dataset.name(),
        );
    }
    let mut cfg = config(KvMethodProfile::kvquant(), Dataset::Cocktail, 0.05, 30, 23);
    cfg.cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::V100);
    assert_equivalent(cfg, "v100 fleet");
}

#[test]
fn armed_idle_prefix_cache_is_bit_identical_to_cache_off_and_the_seed() {
    // An armed cache over a sessionless trace never hits, never inserts and
    // never evicts: every hot-path probe must collapse to the exact arithmetic
    // of the cache-off run (`kv_capacity + 0.0` included), so the result is
    // bit-identical to Off — and, via the oracle, to the seed simulator.
    let off = config(KvMethodProfile::hack(), Dataset::Cocktail, 0.08, 50, 31);
    let mut armed = off;
    armed.cache = CacheConfig::on();
    let mut armed_run = Simulator::new(armed).run();
    assert_eq!(armed_run.prefix_hits + armed_run.prefix_misses, 0);
    // The armed run reports a (all-zero) per-group occupancy vector where the
    // off run reports none; every timing, record and cost field must agree
    // bit-for-bit once that sensor shape is normalized away.
    assert!(armed_run
        .prefix_cache_peak_fraction
        .iter()
        .all(|&f| f == 0.0));
    armed_run.prefix_cache_peak_fraction = Vec::new();
    assert_eq!(armed_run, Simulator::new(off).run(), "armed-idle vs off");
    assert_equivalent(armed, "armed-idle cache vs seed");
}
