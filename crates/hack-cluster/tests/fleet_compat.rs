//! Backward-compatibility contract of the fleet-topology API.
//!
//! A single-group [`FleetSpec`] **is** the legacy flat configuration: every
//! test here pins that a hand-built single-group fleet reproduces the legacy
//! constructors bit-for-bit (`PartialEq` on [`SimulationResult`] compares
//! every f64 exactly) across engine modes, cost modes and frontend policies,
//! and that pre-fleet serialized config snapshots decode through
//! [`ClusterConfig::from_value`].

use hack_cluster::{
    AdmissionPolicyKind, CacheConfig, ClusterConfig, CostMode, DispatchPolicyKind, FaultPlan,
    FleetSpec, GroupSet, PolicyConfig, ReplicaGroup, RetryPolicy, SchedulingPolicyKind,
    SimulationConfig, SimulationResult, Simulator, TelemetryConfig, TenantClass, TenantClasses,
    TopologySpec,
};
use hack_model::cost::{CostParams, KvMethodProfile};
use hack_model::gpu::GpuKind;
use hack_model::parallelism::Parallelism;
use hack_model::spec::ModelKind;
use hack_sim::EngineMode;
use hack_workload::dataset::Dataset;
use hack_workload::tenant::{MultiTenantTrace, TenantSpec};
use hack_workload::trace::{TenantId, TraceConfig};
use std::sync::Arc;

/// The paper-default cluster rebuilt by hand as an explicit single-group
/// fleet, bypassing every legacy constructor.
fn hand_built_default() -> ClusterConfig {
    let model = ModelKind::Llama31_70B;
    ClusterConfig {
        model,
        fleet: FleetSpec {
            prefill: GroupSet::single(ReplicaGroup {
                gpu: GpuKind::A10G,
                replicas: 5,
                parallel: Parallelism::table3(model, GpuKind::A10G),
                network_gbps: 40.0,
                cost_params: None,
                dollars_per_gpu_hour: ReplicaGroup::default_dollars_per_gpu_hour(GpuKind::A10G),
                provision_delay_s: ReplicaGroup::default_provision_delay_s(GpuKind::A10G),
            }),
            decode: GroupSet::single(ReplicaGroup {
                gpu: GpuKind::A100,
                replicas: 4,
                parallel: Parallelism::table3(model, GpuKind::A100),
                network_gbps: 200.0,
                cost_params: None,
                dollars_per_gpu_hour: ReplicaGroup::default_dollars_per_gpu_hour(GpuKind::A100),
                provision_delay_s: ReplicaGroup::default_provision_delay_s(GpuKind::A100),
            }),
        },
        pipelining: false,
        cost_params: CostParams::default(),
        activation_reserve: 0.10,
        topology: TopologySpec::Flat,
    }
}

fn sim_config(cluster: ClusterConfig, seed: u64, n: usize) -> SimulationConfig {
    SimulationConfig {
        cluster,
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps: 0.08,
            num_requests: n,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed,
        },
        profile: KvMethodProfile::hack(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

#[test]
fn hand_built_single_group_fleet_equals_the_legacy_constructor() {
    assert_eq!(
        hand_built_default(),
        ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
        "the hand-built fleet must equal the lowered legacy constructor"
    );
}

#[test]
fn single_group_results_are_bit_identical_across_engine_and_cost_modes() {
    let legacy = Simulator::new(sim_config(
        ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
        7,
        45,
    ));
    let fleet = Simulator::new(sim_config(hand_built_default(), 7, 45));
    for mode in [EngineMode::Slab, EngineMode::Boxed] {
        assert_eq!(
            fleet.run_with_mode(mode),
            legacy.run_with_mode(mode),
            "{mode:?}: single-group fleet diverged from legacy"
        );
    }
    assert_eq!(
        fleet.run_with_costs(CostMode::Reference),
        legacy.run_with_costs(CostMode::Reference),
        "Reference costs: single-group fleet diverged from legacy"
    );
}

#[test]
fn single_group_results_are_bit_identical_under_every_policy() {
    // A two-tenant trace so WRR/EDF actually reorder; the same merged trace
    // feeds both simulators.
    let specs: Vec<TenantSpec> = [(Dataset::Imdb, 0.4, 12u64), (Dataset::Cocktail, 1.2, 13)]
        .iter()
        .enumerate()
        .map(|(i, &(dataset, rps, seed))| TenantSpec {
            tenant: TenantId(i as u32),
            trace: TraceConfig {
                dataset,
                rps,
                num_requests: 30,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed,
            },
        })
        .collect();
    let requests = Arc::new(MultiTenantTrace::new(specs).generate());
    let classes = [
        TenantClass {
            weight: 2.0,
            slo_jct: 90.0,
        },
        TenantClass {
            weight: 1.0,
            slo_jct: 2_000.0,
        },
    ];

    let mut outcomes: Vec<SimulationResult> = Vec::new();
    for scheduling in SchedulingPolicyKind::all() {
        for dispatch in DispatchPolicyKind::all() {
            let run = |cluster: ClusterConfig| {
                let mut config = sim_config(cluster, 5, requests.len());
                config.policy = PolicyConfig {
                    tenants: TenantClasses::new(&classes),
                    dispatch,
                    admission: AdmissionPolicyKind::TokenBucket {
                        rate_per_weight: 0.6,
                        burst: 10.0,
                    },
                    scheduling,
                    retry: RetryPolicy::default(),
                    scaling: hack_cluster::ScalingPolicyKind::Off,
                };
                Simulator::with_requests(config, requests.clone()).run()
            };
            let legacy = run(ClusterConfig::paper_default(
                ModelKind::Llama31_70B,
                GpuKind::A10G,
            ));
            let fleet = run(hand_built_default());
            assert_eq!(
                fleet,
                legacy,
                "{}/{}: single-group fleet diverged from legacy",
                scheduling.name(),
                dispatch.name()
            );
            outcomes.push(fleet);
        }
    }
    // Sanity: the sweep actually exercised distinct behaviours (WRR/EDF
    // reorder service relative to FCFS on this contended two-tenant trace).
    let fcfs = &outcomes[0];
    assert!(
        outcomes.iter().any(|o| o != fcfs),
        "the policy sweep must produce at least one distinct outcome"
    );
}

#[test]
fn group_affinity_on_a_single_group_coincides_with_least_loaded() {
    // With one prefill group, every tenant's preferred group is group 0 and
    // affinity degrades to least-loaded exactly.
    let base = sim_config(hand_built_default(), 11, 40);
    let mut affinity = base;
    affinity.policy.dispatch = DispatchPolicyKind::GroupAffinity;
    assert_eq!(
        Simulator::new(affinity).run(),
        Simulator::new(base).run(),
        "group-affinity must coincide with least-loaded on one group"
    );
}

#[test]
fn pre_fleet_config_snapshot_decodes_and_reproduces_the_legacy_run() {
    // A flat (pre-fleet) ClusterConfig snapshot, as PR 4 would have written
    // it: no `fleet` key, no parallelism (implied by Table 3).
    let json = r#"{
        "model": "Llama31_70B",
        "prefill_gpu": "A10G",
        "prefill_replicas": 5,
        "prefill_network_gbps": 40.0,
        "decode_gpu": "A100",
        "decode_replicas": 4,
        "decode_network_gbps": 200.0,
        "pipelining": false,
        "cost_params": {
            "compute_efficiency": 0.5, "attention_efficiency": 0.22,
            "elementwise_efficiency": 0.005, "memory_efficiency": 0.8,
            "kv_access_efficiency": 0.05, "dequant_efficiency": 0.0003,
            "decode_iter_overhead_s": 0.03, "network_efficiency": 0.9,
            "pp_bubble": 0.1, "decode_batch": 8.0
        },
        "activation_reserve": 0.1
    }"#;
    let value = serde_json::from_str(json).expect("snapshot parses");
    let decoded = ClusterConfig::from_value(&value).expect("pre-fleet snapshot decodes");
    assert_eq!(
        decoded,
        ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G)
    );
    // And the decoded config drives the simulator to the identical result.
    assert_eq!(
        Simulator::new(sim_config(decoded, 3, 25)).run(),
        Simulator::new(sim_config(
            ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
            3,
            25
        ))
        .run()
    );
}

#[test]
fn fleet_format_config_round_trips_through_serde() {
    // A genuinely heterogeneous config: two prefill groups, one with its own
    // cost params, survives serialize -> parse -> from_value exactly.
    let mut config = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
    let mut l4 = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::L4, 4);
    l4.cost_params = Some(CostParams {
        decode_batch: 4.0,
        ..CostParams::default()
    });
    config.fleet.prefill = GroupSet::new(&[*config.fleet.prefill.get(0), l4]);
    let json = serde_json::to_string(&config).unwrap();
    let value = serde_json::from_str(&json).unwrap();
    let back = ClusterConfig::from_value(&value).expect("fleet config decodes");
    assert_eq!(back, config);
}

#[test]
fn paper_nic_sharing_is_unchanged_by_the_integer_fix() {
    // The integer replica-per-instance assignment reproduces the old
    // fractional arithmetic on every paper deployment (each divides evenly or
    // grants whole NICs).
    for model in ModelKind::all() {
        for gpu in GpuKind::all() {
            let c = ClusterConfig::paper_default(model, gpu);
            let prefill = c.fleet.prefill.get(0);
            let decode = c.fleet.decode.get(0);
            let old = |replicas: usize, instances: usize, line_rate: f64| {
                line_rate / (replicas as f64 / instances as f64).max(1.0)
            };
            let prefill_instances = match gpu {
                GpuKind::A10G | GpuKind::L4 => 10,
                GpuKind::V100 | GpuKind::T4 => 16,
                GpuKind::A100 => 2,
            };
            assert_eq!(
                prefill.network_gbps,
                old(
                    prefill.replicas,
                    prefill_instances,
                    gpu.instance().network_gbps
                ),
                "{model:?}/{gpu:?}: prefill NIC sharing changed"
            );
            assert_eq!(
                decode.network_gbps,
                old(decode.replicas, 2, GpuKind::A100.instance().network_gbps),
                "{model:?}/{gpu:?}: decode NIC sharing changed"
            );
        }
    }
}
