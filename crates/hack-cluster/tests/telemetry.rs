//! Telemetry determinism pins (ROADMAP: observability).
//!
//! Three guarantees, each pinned here:
//!
//! 1. **Off is off**: the default [`TelemetryConfig::Off`] returns no
//!    telemetry, and a telemetry-on run's [`SimulationResult`] is
//!    **bit-identical** to the off run of the same seed — recording observes
//!    the simulation, it never perturbs it (no extra RNG draws, no time
//!    perturbation, makespan included).
//! 2. **Engine-representation independence**: the same seed produces the
//!    *identical* span/instant/series streams on [`EngineMode::Slab`] and
//!    [`EngineMode::Boxed`].
//! 3. **Cost-mode independence**: [`CostMode::Table`] and
//!    [`CostMode::Reference`] produce structurally identical streams whose
//!    timestamps agree to ~1e-9 (the cost layers agree to ~1e-15 relative).

use hack_cluster::{
    CacheConfig, ClusterConfig, CostMode, FailureSpec, FaultPlan, PolicyConfig, SimulationConfig,
    Simulator, TelemetryConfig,
};
use hack_metrics::telemetry::Telemetry;
use hack_model::cost::KvMethodProfile;
use hack_model::gpu::GpuKind;
use hack_model::spec::ModelKind;
use hack_sim::EngineMode;
use hack_workload::dataset::Dataset;
use hack_workload::trace::TraceConfig;

fn base_config(n: usize, rps: f64) -> SimulationConfig {
    let model = ModelKind::Llama31_70B;
    SimulationConfig {
        cluster: ClusterConfig::paper_default(model, GpuKind::A10G),
        trace: TraceConfig {
            dataset: Dataset::Cocktail,
            rps,
            num_requests: n,
            max_context: model.spec().max_context,
            seed: 77,
        },
        profile: KvMethodProfile::hack(),
        policy: PolicyConfig::default(),
        faults: FaultPlan::none(),
        telemetry: TelemetryConfig::Off,
        cache: CacheConfig::Off,
    }
}

fn with_telemetry(mut config: SimulationConfig, interval: f64) -> SimulationConfig {
    config.telemetry = TelemetryConfig::with_interval(interval);
    config
}

fn failure_config(n: usize) -> SimulationConfig {
    SimulationConfig {
        faults: FailureSpec::transient(0, 40.0, 400.0).into(),
        ..base_config(n, 0.08)
    }
}

#[test]
fn telemetry_off_returns_none_and_matches_the_plain_run() {
    let sim = Simulator::new(base_config(40, 0.08));
    let (result, telemetry) = sim.run_with_telemetry();
    assert!(telemetry.is_none(), "Off must not allocate telemetry");
    assert_eq!(result, sim.run(), "run_with_telemetry is the same run");
}

#[test]
fn telemetry_on_leaves_the_result_bit_identical() {
    for (label, config) in [
        ("plain", base_config(50, 0.08)),
        ("overloaded", base_config(50, 3.0)),
        ("failure-injected", failure_config(60)),
    ] {
        let off = Simulator::new(config).run();
        // Deliberately awkward intervals: ticks that collide with event times
        // and ticks that fire thousands of times must both be invisible.
        for interval in [0.5, 10.0, 1000.0] {
            let (on, telemetry) =
                Simulator::new(with_telemetry(config, interval)).run_with_telemetry();
            let telemetry = telemetry.expect("On returns telemetry");
            assert_eq!(
                off, on,
                "{label}: telemetry (interval {interval}) must not perturb the result"
            );
            assert!(!telemetry.is_empty(), "{label}: something was recorded");
        }
    }
}

/// Structural + exact-timestamp equality of two telemetry captures.
fn assert_streams_identical(a: &Telemetry, b: &Telemetry, label: &str) {
    assert_eq!(a.tracks(), b.tracks(), "{label}: track registry");
    assert_eq!(a.spans(), b.spans(), "{label}: span stream");
    assert_eq!(a.instants(), b.instants(), "{label}: instant stream");
    assert_eq!(a.series(), b.series(), "{label}: time series");
    assert_eq!(
        a.counter("completed"),
        b.counter("completed"),
        "{label}: completion counter"
    );
    assert_eq!(
        a.counter("sampler_ticks"),
        b.counter("sampler_ticks"),
        "{label}: tick counter"
    );
}

#[test]
fn span_streams_are_identical_across_engine_modes() {
    for config in [with_telemetry(base_config(50, 0.08), 5.0), {
        with_telemetry(failure_config(50), 5.0)
    }] {
        let sim = Simulator::new(config);
        let (slab_result, slab) = sim.run_with_telemetry_modes(EngineMode::Slab, CostMode::Table);
        let (boxed_result, boxed) =
            sim.run_with_telemetry_modes(EngineMode::Boxed, CostMode::Table);
        assert_eq!(slab_result, boxed_result);
        assert_streams_identical(
            &slab.expect("slab telemetry"),
            &boxed.expect("boxed telemetry"),
            "slab vs boxed",
        );
    }
}

#[test]
fn span_streams_match_across_cost_modes_within_tolerance() {
    let sim = Simulator::new(with_telemetry(base_config(50, 0.08), 5.0));
    let (_, table) = sim.run_with_telemetry_modes(EngineMode::Slab, CostMode::Table);
    let (_, reference) = sim.run_with_telemetry_modes(EngineMode::Slab, CostMode::Reference);
    let (table, reference) = (table.unwrap(), reference.unwrap());

    // Structure is exactly equal; the cost layers differ only in float
    // summation order, so timestamps agree to ~1e-9 absolute.
    assert_eq!(table.tracks(), reference.tracks());
    assert_eq!(table.spans().len(), reference.spans().len());
    for (a, b) in table.spans().iter().zip(reference.spans()) {
        assert_eq!(
            (a.name, a.cat, a.track, a.req),
            (b.name, b.cat, b.track, b.req)
        );
        assert!(
            (a.start - b.start).abs() < 1e-9 && (a.end - b.end).abs() < 1e-9,
            "span {} drifted: [{}, {}] vs [{}, {}]",
            a.name,
            a.start,
            a.end,
            b.start,
            b.end
        );
    }
    assert_eq!(table.instants().len(), reference.instants().len());
    assert_eq!(table.counter("completed"), reference.counter("completed"));
}

#[test]
fn captured_streams_are_sane() {
    let config = with_telemetry(failure_config(60), 5.0);
    let (result, telemetry) = Simulator::new(config).run_with_telemetry();
    let tel = telemetry.unwrap();

    // Every component kind produced at least one complete span.
    for cat in ["frontend", "prefill", "fabric", "decode"] {
        assert!(tel.span_count_in(cat) > 0, "no spans in category {cat}");
    }
    // One completion event and histogram entry per completed request.
    assert_eq!(tel.counter("completed") as usize, result.records.len());
    let jct = tel.histogram("jct_seconds").expect("JCT histogram");
    assert_eq!(jct.count() as usize, result.records.len());
    // The failure was observed.
    assert!(tel
        .instants()
        .iter()
        .any(|i| i.name == "replica_failed" && i.time == 40.0));
    // Spans are well-formed and inside the run.
    for s in tel.spans() {
        assert!(s.end >= s.start && s.start >= 0.0, "malformed span {s:?}");
        assert!(s.end <= result.makespan + 1e-9, "span outruns the makespan");
    }
    // Sampled series: every sampler tick sampled every series, occupancy is a
    // fraction, and every series starts at t=0.
    let ticks = tel.counter("sampler_ticks");
    assert!(ticks > 0, "sampler never ticked");
    for series in tel.series() {
        assert_eq!(series.points.len() as u64, ticks, "{}", series.name);
        assert_eq!(series.points[0].0, 0.0, "{} misses the origin", series.name);
        if series.name.contains("kv_occupancy") {
            assert!(series.points.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
        }
    }
}
