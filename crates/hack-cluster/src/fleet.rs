//! Fleet topology: heterogeneous replica groups with per-group cost models.
//!
//! The paper's fleet model (§7.1) is homogeneous — one GPU kind, one NIC
//! bandwidth and one cost parameterisation per side. A [`FleetSpec`] lifts
//! that restriction: each side (prefill, decode) is a [`GroupSet`] of up to
//! [`MAX_GROUPS`] [`ReplicaGroup`]s, and each group carries its own GPU kind,
//! replica count, TP/PP parallelism, NIC bandwidth and (optionally) its own
//! cost-model efficiency constants. A mixed A10G + L4 prefill fleet is two
//! groups; the paper's homogeneous fleets are single-group specs, and every
//! legacy constructor lowers to one (pinned bit-identical to the pre-fleet
//! simulator by the seed-equivalence and fleet-compat suites).
//!
//! Replica indexing is global and group-major: the simulator flattens the
//! groups in order, so group 0's replicas come first. Single-group specs
//! therefore keep exactly the replica indices the flat configuration had.
//!
//! The fixed-capacity [`GroupSet`] (same pattern as
//! [`crate::policy::TenantClasses`]) keeps [`FleetSpec`] — and with it
//! [`crate::config::ClusterConfig`] and the whole
//! [`crate::config::SimulationConfig`] — `Copy`.

use hack_model::cost::{CostParams, ReplicaCostModel};
use hack_model::gpu::GpuKind;
use hack_model::parallelism::Parallelism;
use hack_model::spec::ModelKind;
use serde::{Serialize, Value};

/// Upper bound on replica groups per fleet side (sizes the fixed storage so
/// [`FleetSpec`] stays `Copy`).
pub const MAX_GROUPS: usize = 4;

/// One homogeneous group of replicas on one side of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplicaGroup {
    /// GPU family of every replica in the group.
    pub gpu: GpuKind,
    /// Number of model replicas.
    pub replicas: usize,
    /// TP/PP configuration of each replica.
    pub parallel: Parallelism,
    /// NIC bandwidth available to each replica, in Gbps.
    pub network_gbps: f64,
    /// Group-specific cost-model efficiency constants; `None` inherits the
    /// fleet-wide [`crate::config::ClusterConfig::cost_params`].
    pub cost_params: Option<CostParams>,
    /// On-demand price of one GPU of this group, in $/GPU-hour (defaults to
    /// the instance family's list price per GPU). One replica costs
    /// `dollars_per_gpu_hour * gpus_per_replica` per hour of uptime; the
    /// simulator turns replica uptime into the `gpu_dollars` cost sensors.
    pub dollars_per_gpu_hour: f64,
    /// Seconds between a scale-up decision and the new replica becoming
    /// dispatchable (instance launch + model load). Defaults per GPU kind;
    /// only the autoscaling controller reads it.
    pub provision_delay_s: f64,
}

impl ReplicaGroup {
    /// A group with the paper's Table 3 parallelism for `(model, gpu)`, one
    /// replica and the instance's full NIC bandwidth.
    pub fn new(model: ModelKind, gpu: GpuKind) -> Self {
        Self {
            gpu,
            replicas: 1,
            parallel: Parallelism::table3(model, gpu),
            network_gbps: gpu.instance().network_gbps,
            cost_params: None,
            dollars_per_gpu_hour: Self::default_dollars_per_gpu_hour(gpu),
            provision_delay_s: Self::default_provision_delay_s(gpu),
        }
    }

    /// On-demand list price of one GPU of `gpu`'s instance family, in
    /// $/GPU-hour (the §7.1 instance families: g5, p3, g4dn, g6, p4de).
    pub fn default_dollars_per_gpu_hour(gpu: GpuKind) -> f64 {
        match gpu {
            GpuKind::A10G => 1.21,
            GpuKind::V100 => 3.06,
            GpuKind::T4 => 0.53,
            GpuKind::L4 => 0.80,
            GpuKind::A100 => 4.10,
        }
    }

    /// Default scale-up provisioning delay of `gpu` in seconds (instance
    /// launch plus loading the model shards; bigger GPUs ship bigger shards).
    pub fn default_provision_delay_s(gpu: GpuKind) -> f64 {
        match gpu {
            GpuKind::A10G => 30.0,
            GpuKind::V100 => 45.0,
            GpuKind::T4 => 20.0,
            GpuKind::L4 => 25.0,
            GpuKind::A100 => 90.0,
        }
    }

    /// Dollars one replica of this group costs per second of uptime.
    pub fn replica_dollars_per_s(&self) -> f64 {
        self.dollars_per_gpu_hour * self.parallel.gpus_per_replica() as f64 / 3600.0
    }

    /// The paper's fleet sizing (§7.1) for `instances` instances of `gpu`:
    /// as many replicas as the GPUs allow under Table 3 parallelism, each
    /// sourcing its KV transfers from one instance NIC.
    ///
    /// NIC sharing uses *integer* replica-per-instance assignment: the NIC of
    /// an instance is split among `ceil(replicas / instances)` replicas (a
    /// replica spanning several instances still transfers from one NIC, and a
    /// NIC is never split fractionally). Every Table 2/3 combination divides
    /// evenly or leaves each replica a whole NIC, so this reproduces the
    /// pre-fleet fractional arithmetic bit-for-bit on the paper's defaults;
    /// configurations with a remainder (e.g. 5 replicas on 2 instances) now
    /// round the sharing up to the worst-loaded NIC instead of averaging.
    pub fn paper_sized(model: ModelKind, gpu: GpuKind, instances: usize) -> Self {
        assert!(instances >= 1, "a group needs at least one instance");
        let parallel = Parallelism::table3(model, gpu);
        let gpus = instances * gpu.instance().gpus;
        let replicas = (gpus / parallel.gpus_per_replica()).max(1);
        Self {
            gpu,
            replicas,
            parallel,
            network_gbps: Self::shared_nic_gbps(gpu.instance().network_gbps, replicas, instances),
            cost_params: None,
            dollars_per_gpu_hour: Self::default_dollars_per_gpu_hour(gpu),
            provision_delay_s: Self::default_provision_delay_s(gpu),
        }
    }

    /// NIC bandwidth left to each replica when `replicas` replicas source
    /// their KV transfers from `instances` instance NICs: *integer*
    /// assignment — `ceil(replicas / instances)` replicas share the
    /// worst-loaded NIC (a replica spanning several instances still transfers
    /// from one NIC, and a NIC is never split fractionally). The pre-fleet
    /// arithmetic divided by the fractional average `replicas / instances`;
    /// under Table 2/3 sizing the two coincide (the replica count is always
    /// a multiple of the instance count, or small enough for whole NICs), so
    /// the paper defaults are bit-preserved, while remainder configurations
    /// (e.g. 5 replicas on 3 instances) now see the worst NIC's share.
    pub fn shared_nic_gbps(line_rate_gbps: f64, replicas: usize, instances: usize) -> f64 {
        assert!(replicas >= 1 && instances >= 1);
        line_rate_gbps / replicas.div_ceil(instances) as f64
    }

    /// GPU memory (bytes) available to one replica of this group.
    pub fn replica_mem_bytes(&self) -> f64 {
        self.parallel.gpus_per_replica() as f64 * self.gpu.spec().mem_gib * (1u64 << 30) as f64
    }

    /// The group's cost model: its GPU/parallelism with its own efficiency
    /// constants, or the supplied fleet-wide `default_params`.
    pub fn cost_model(&self, model: ModelKind, default_params: CostParams) -> ReplicaCostModel {
        ReplicaCostModel::with_params(
            model.spec(),
            self.gpu.spec(),
            self.parallel,
            self.cost_params.unwrap_or(default_params),
        )
    }

    /// Decodes a group from its serialized [`Value`] tree. Snapshots from
    /// before the cost model carry no price/provisioning keys; those fall
    /// back to the GPU kind's defaults.
    pub fn from_value(value: &Value) -> Option<ReplicaGroup> {
        let gpu = GpuKind::from_name(value.get_key("gpu")?.as_str()?)?;
        Some(ReplicaGroup {
            gpu,
            replicas: value.get_key("replicas")?.as_f64()? as usize,
            parallel: Parallelism::from_value(value.get_key("parallel")?)?,
            network_gbps: value.get_key("network_gbps")?.as_f64()?,
            cost_params: match value.get_key("cost_params") {
                None | Some(Value::Null) => None,
                Some(params) => Some(CostParams::from_value(params)?),
            },
            dollars_per_gpu_hour: value
                .get_key("dollars_per_gpu_hour")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| Self::default_dollars_per_gpu_hour(gpu)),
            provision_delay_s: value
                .get_key("provision_delay_s")
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| Self::default_provision_delay_s(gpu)),
        })
    }
}

/// The replica groups of one fleet side, in group order. Fixed capacity
/// ([`MAX_GROUPS`]) so the containing configuration stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSet {
    groups: [ReplicaGroup; MAX_GROUPS],
    len: usize,
}

impl GroupSet {
    /// A single-group side (the homogeneous fleets of the paper).
    pub fn single(group: ReplicaGroup) -> Self {
        Self::new(&[group])
    }

    /// A side made of the given groups, in order.
    ///
    /// # Panics
    /// Panics on an empty set, more than [`MAX_GROUPS`] groups, a group with
    /// zero replicas, or a non-positive NIC bandwidth.
    pub fn new(groups: &[ReplicaGroup]) -> Self {
        assert!(
            !groups.is_empty(),
            "a fleet side needs at least one replica group"
        );
        assert!(
            groups.len() <= MAX_GROUPS,
            "at most {MAX_GROUPS} replica groups per side, got {}",
            groups.len()
        );
        for (i, g) in groups.iter().enumerate() {
            assert!(g.replicas >= 1, "group {i} has no replicas");
            assert!(
                g.network_gbps > 0.0,
                "group {i} has non-positive NIC bandwidth {}",
                g.network_gbps
            );
        }
        let mut fixed = [groups[0]; MAX_GROUPS];
        fixed[..groups.len()].copy_from_slice(groups);
        Self {
            groups: fixed,
            len: groups.len(),
        }
    }

    /// Number of groups on this side.
    pub fn len(&self) -> usize {
        self.len
    }

    /// A fleet side always has at least one group.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The groups, in group order.
    pub fn iter(&self) -> impl Iterator<Item = &ReplicaGroup> + '_ {
        self.groups[..self.len].iter()
    }

    /// The group at `index`.
    ///
    /// # Panics
    /// Panics when `index` is out of range.
    pub fn get(&self, index: usize) -> &ReplicaGroup {
        assert!(index < self.len, "group {index} of {}", self.len);
        &self.groups[index]
    }

    /// Mutable access to the group at `index` (fleet-shaping overrides).
    pub fn get_mut(&mut self, index: usize) -> &mut ReplicaGroup {
        assert!(index < self.len, "group {index} of {}", self.len);
        &mut self.groups[index]
    }

    /// Total replicas across all groups of this side.
    pub fn total_replicas(&self) -> usize {
        self.iter().map(|g| g.replicas).sum()
    }

    /// The group of the `replica`-th replica under group-major global
    /// indexing, or `None` past the fleet.
    pub fn group_of_replica(&self, replica: usize) -> Option<usize> {
        let mut offset = 0;
        for (i, g) in self.iter().enumerate() {
            offset += g.replicas;
            if replica < offset {
                return Some(i);
            }
        }
        None
    }

    /// Per-replica group indices, flattened group-major (the simulator's
    /// global replica order).
    pub fn flatten_groups(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.total_replicas());
        for (i, g) in self.iter().enumerate() {
            out.extend(std::iter::repeat_n(i, g.replicas));
        }
        out
    }

    /// Decodes a side from its serialized [`Value`] tree (an array of
    /// groups). Semantically invalid snapshots (no groups, too many, a
    /// zero-replica group, a non-positive NIC bandwidth) return `None` like
    /// any other malformed input — the decoder never panics.
    pub fn from_value(value: &Value) -> Option<GroupSet> {
        let Value::Array(items) = value else {
            return None;
        };
        if items.is_empty() || items.len() > MAX_GROUPS {
            return None;
        }
        let groups: Option<Vec<ReplicaGroup>> =
            items.iter().map(ReplicaGroup::from_value).collect();
        let groups = groups?;
        if groups
            .iter()
            .any(|g| g.replicas == 0 || g.network_gbps <= 0.0 || g.network_gbps.is_nan())
        {
            return None;
        }
        Some(GroupSet::new(&groups))
    }
}

// Serialize only the live prefix (the derive would emit all MAX_GROUPS slots).
impl Serialize for GroupSet {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.groups[..self.len]
                .iter()
                .map(Serialize::serialize_value)
                .collect(),
        )
    }
}

/// The full fleet topology: the prefill-side and decode-side replica groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetSpec {
    /// Prefill-side replica groups.
    pub prefill: GroupSet,
    /// Decode-side replica groups.
    pub decode: GroupSet,
}

impl FleetSpec {
    /// The homogeneous fleet: one prefill group, one decode group (every
    /// legacy constructor lowers to this shape).
    pub fn homogeneous(prefill: ReplicaGroup, decode: ReplicaGroup) -> Self {
        Self {
            prefill: GroupSet::single(prefill),
            decode: GroupSet::single(decode),
        }
    }

    /// Decodes a fleet from its serialized [`Value`] tree.
    pub fn from_value(value: &Value) -> Option<FleetSpec> {
        Some(FleetSpec {
            prefill: GroupSet::from_value(value.get_key("prefill")?)?,
            decode: GroupSet::from_value(value.get_key("decode")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a10g(replicas: usize) -> ReplicaGroup {
        ReplicaGroup {
            replicas,
            ..ReplicaGroup::new(ModelKind::Llama31_70B, GpuKind::A10G)
        }
    }

    #[test]
    fn paper_sizing_matches_table2_and_3() {
        // 10 g5 instances x 4 GPUs / (TP4*PP2 = 8) = 5 replicas, one whole
        // 40 Gbps NIC each (replicas < instances).
        let g = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::A10G, 10);
        assert_eq!(g.replicas, 5);
        assert_eq!(g.network_gbps, 40.0);
        // 2 p4de x 8 GPUs / TP4 = 4 decode replicas, two per 400 Gbps NIC.
        let d = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::A100, 2);
        assert_eq!(d.replicas, 4);
        assert_eq!(d.network_gbps, 200.0);
    }

    #[test]
    fn nic_sharing_rounds_to_the_worst_loaded_nic() {
        // 2 instances x 8 A100s / (TP1 = 1 GPU) on Mistral = 16 replicas:
        // integer assignment packs 8 per NIC (divides evenly, same as the old
        // fractional average).
        let even = ReplicaGroup::paper_sized(ModelKind::Mistral7B, GpuKind::A100, 2);
        assert_eq!(even.replicas, 16);
        assert_eq!(even.network_gbps, 400.0 / 8.0);
        // Fewer replicas than instances: a whole NIC each.
        let sparse = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::A10G, 10);
        assert_eq!(sparse.replicas, 5);
        assert_eq!(sparse.network_gbps, 40.0);
        // Table 2/3 sizing always lands on one of those two shapes (an exact
        // multiple or whole NICs), which is why the paper defaults are
        // bit-preserved; the sharing rule itself — exercised directly, since
        // `paper_sized` cannot reach a remainder with Table 3 parallelism —
        // rounds a remainder *up* to the worst-loaded NIC: 5 replicas on 3
        // instances share ceil(5/3) = 2, where the old arithmetic averaged
        // 5/3 ≈ 1.67.
        assert_eq!(ReplicaGroup::shared_nic_gbps(40.0, 5, 3), 20.0);
        assert_eq!(ReplicaGroup::shared_nic_gbps(40.0, 6, 3), 20.0);
        assert_eq!(ReplicaGroup::shared_nic_gbps(40.0, 7, 3), 40.0 / 3.0);
        assert_eq!(ReplicaGroup::shared_nic_gbps(40.0, 2, 3), 40.0);
    }

    #[test]
    fn from_value_rejects_invalid_snapshots_without_panicking() {
        // The decoder is fallible end to end: structurally valid JSON with
        // semantically invalid content (zero replicas, non-positive NIC)
        // yields None, never a panic.
        for json in [
            r#"[{"gpu":"A10G","replicas":0,"parallel":{"tp":4,"pp":2},"network_gbps":40.0,"cost_params":null}]"#,
            r#"[{"gpu":"A10G","replicas":2,"parallel":{"tp":4,"pp":2},"network_gbps":0.0,"cost_params":null}]"#,
            r#"[{"gpu":"A10G","replicas":-3,"parallel":{"tp":4,"pp":2},"network_gbps":40.0,"cost_params":null}]"#,
            r#"[]"#,
            r#"{"not":"an array"}"#,
        ] {
            let value = serde_json::from_str(json).expect("valid JSON");
            assert!(GroupSet::from_value(&value).is_none(), "{json}");
        }
    }

    #[test]
    fn group_set_flattens_group_major() {
        let set = GroupSet::new(&[a10g(2), a10g(3)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_replicas(), 5);
        assert_eq!(set.flatten_groups(), vec![0, 0, 1, 1, 1]);
        assert_eq!(set.group_of_replica(0), Some(0));
        assert_eq!(set.group_of_replica(1), Some(0));
        assert_eq!(set.group_of_replica(2), Some(1));
        assert_eq!(set.group_of_replica(4), Some(1));
        assert_eq!(set.group_of_replica(5), None);
    }

    #[test]
    fn serde_round_trips_mixed_sets() {
        let mut l4 = ReplicaGroup::new(ModelKind::Llama31_70B, GpuKind::L4);
        l4.replicas = 2;
        l4.cost_params = Some(CostParams {
            decode_batch: 4.0,
            ..CostParams::default()
        });
        let fleet = FleetSpec {
            prefill: GroupSet::new(&[a10g(3), l4]),
            decode: GroupSet::single(ReplicaGroup::paper_sized(
                ModelKind::Llama31_70B,
                GpuKind::A100,
                2,
            )),
        };
        let json = serde_json::to_string(&fleet).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let back = FleetSpec::from_value(&value).expect("fleet decodes");
        assert_eq!(back, fleet);
        assert_eq!(back.prefill.get(1).cost_params.unwrap().decode_batch, 4.0);
        assert!(back.decode.get(0).cost_params.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one replica group")]
    fn empty_side_is_rejected() {
        GroupSet::new(&[]);
    }

    #[test]
    #[should_panic(expected = "has no replicas")]
    fn zero_replica_group_is_rejected() {
        GroupSet::new(&[a10g(0)]);
    }
}
