//! The cluster simulator: components assembled on the [`hack_sim`] engine.
//!
//! [`Simulator::run`] builds a [`hack_sim::Simulation`], registers the
//! component fleet (frontend, prefill replicas, network fabric, decode
//! replicas — see [`crate::components`]), seeds it with the request trace's
//! arrival events (plus any fault-injection events), and drives the engine
//! until every request completes.
//!
//! [`Simulator::new`] also materialises the run's *cost layer* once: the trace
//! itself, the decode-side prefix-sum table
//! ([`hack_model::cost_table::DecodeCostTable`], shared process-wide across
//! simulators with the same parameterisation) and the prefill-side
//! per-prompt-length memo, so every per-request cost during the event loop is
//! O(1). [`CostMode::Reference`] re-runs the original per-token summation
//! loops instead — kept for benchmarking and as the equivalence oracle.

use crate::components::decode::DecodeReplica;
use crate::components::frontend::Frontend;
use crate::components::network::NetworkFabric;
use crate::components::prefill::PrefillReplica;
use crate::components::{
    ClusterState, DecodeReplicaState, PrefillReplicaState, ReqState, SimCosts,
};
use crate::config::SimulationConfig;
use crate::events::{ReplicaFailed, ReplicaRecovered, RequestArrived};
use crate::result::{RequestRecord, SimulationResult};
use hack_metrics::jct::JctBreakdown;
use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
use hack_model::cost_table::{DecodeCostTable, PrefillCostTable};
use hack_sim::{EngineMode, EventRecord, Simulation};
use hack_workload::trace::{Request, TraceGenerator};
use std::cell::{OnceCell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// How the simulator evaluates per-request analytic costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMode {
    /// Memoized cost tables: decode durations are prefix subtractions,
    /// prefill/quantization/transfer times are per-prompt-length memos.
    #[default]
    Table,
    /// The pre-table paths: O(output tokens) summation per request and direct
    /// formula evaluation per call. Kept for benchmarking and equivalence
    /// testing; results agree with [`CostMode::Table`] to ~1e-15 relative.
    Reference,
}

#[cfg(test)]
thread_local! {
    /// Test-only switch forcing the boxed trait-object policy path even for
    /// the FCFS/AdmitAll defaults (see
    /// [`Simulator::run_with_boxed_default_policies`]).
    static FORCE_BOXED_POLICIES: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Discrete-event simulator of one configuration (cluster × trace × method).
pub struct Simulator {
    config: SimulationConfig,
    prefill_model: ReplicaCostModel,
    decode_model: ReplicaCostModel,
    requests: Arc<Vec<Request>>,
    /// Cost tables, built on the first [`CostMode::Table`] run and reused by
    /// every subsequent one. Lazy so that pure [`CostMode::Reference`] runs —
    /// the benchmarked "pre-table" baseline — never pay table construction.
    tables: OnceCell<(Arc<DecodeCostTable>, Arc<PrefillCostTable>)>,
}

impl Simulator {
    /// Creates a simulator from a configuration, generating its trace once
    /// (reused across `run*` calls, as are the lazily built cost tables).
    pub fn new(config: SimulationConfig) -> Self {
        let requests = Arc::new(TraceGenerator::new(config.trace).generate());
        Self::with_requests(config, requests)
    }

    /// Creates a simulator over an externally supplied trace (which must match
    /// `config.trace.num_requests`). This is how the capacity bisection in
    /// `hack-core` reuses one trace template across its probe runs instead of
    /// re-synthesising the trace per probe.
    pub fn with_requests(config: SimulationConfig, requests: Arc<Vec<Request>>) -> Self {
        assert_eq!(
            requests.len(),
            config.trace.num_requests,
            "supplied trace length must match config.trace.num_requests"
        );
        let model = config.cluster.model.spec();
        let prefill_model = ReplicaCostModel {
            model,
            gpu: config.cluster.prefill_gpu.spec(),
            parallel: config.cluster.prefill_parallelism(),
            params: config.cluster.cost_params,
        };
        let decode_model = ReplicaCostModel {
            model,
            gpu: config.cluster.decode_gpu.spec(),
            parallel: config.cluster.decode_parallelism(),
            params: config.cluster.cost_params,
        };
        Self {
            config,
            prefill_model,
            decode_model,
            requests,
            tables: OnceCell::new(),
        }
    }

    /// The memoized cost layer of this simulator: the decode prefix-sum table
    /// (shared process-wide across equal parameterisations) and the prefill
    /// per-prompt-length memo, built on first use.
    fn tables(&self) -> &(Arc<DecodeCostTable>, Arc<PrefillCostTable>) {
        self.tables.get_or_init(|| {
            let max_kv_len = self
                .requests
                .iter()
                .map(Request::total_tokens)
                .max()
                .unwrap_or(1);
            let decode_table = DecodeCostTable::shared(
                &self.decode_model,
                &self.config.profile,
                self.config.cluster.cost_params.decode_batch,
                max_kv_len,
            );
            let network_gbps = self
                .config
                .cluster
                .prefill_network_gbps
                .min(self.config.cluster.decode_network_gbps);
            let prefill_table = Arc::new(PrefillCostTable::build(
                &self.prefill_model,
                &self.config.profile,
                network_gbps,
                self.requests.iter().map(|r| r.input_len),
            ));
            (decode_table, prefill_table)
        })
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    fn profile(&self) -> &KvMethodProfile {
        &self.config.profile
    }

    /// Runs the simulation to completion and returns the aggregated result.
    pub fn run(&self) -> SimulationResult {
        self.run_with_mode(EngineMode::Slab)
    }

    /// Runs on an explicit engine representation ([`EngineMode::Boxed`] is the
    /// pre-slab engine, kept for benchmarking and equivalence testing; results
    /// are bit-identical across modes).
    pub fn run_with_mode(&self, mode: EngineMode) -> SimulationResult {
        self.run_impl(mode, CostMode::Table, false).0
    }

    /// Runs with an explicit cost-evaluation mode ([`CostMode::Reference`] is
    /// the pre-table summation path, kept for benchmarking and equivalence
    /// testing; results agree to ~1e-15 relative).
    pub fn run_with_costs(&self, costs: CostMode) -> SimulationResult {
        self.run_impl(EngineMode::Slab, costs, false).0
    }

    /// Runs with structured event logging enabled, returning the full engine
    /// event trace alongside the result (used by the trace-equivalence tests).
    pub fn run_traced(&self, mode: EngineMode) -> (SimulationResult, Vec<EventRecord>) {
        let (result, trace, _) = self.run_impl(mode, CostMode::Table, true);
        (result, trace)
    }

    /// Test hook: run with the configured policies forced through the boxed
    /// trait-object path, even for the FCFS/AdmitAll defaults that normally
    /// instantiate to `None`. Pins the `Some`-branch mechanics (virtual
    /// `select` + `VecDeque::remove(pos)`, per-arrival `admit`) bit-identical
    /// to the built-in fast path.
    #[cfg(test)]
    pub(crate) fn run_with_boxed_default_policies(&self) -> SimulationResult {
        self.run_boxed_impl().0
    }

    #[cfg(test)]
    fn run_boxed_impl(&self) -> (SimulationResult, Vec<EventRecord>, u64) {
        let prev = FORCE_BOXED_POLICIES.with(|f| f.replace(true));
        let out = self.run_impl(EngineMode::Slab, CostMode::Table, false);
        FORCE_BOXED_POLICIES.with(|f| f.set(prev));
        out
    }

    /// Runs and also reports the number of engine events processed (used by the
    /// bench harness to size its workloads honestly).
    pub fn run_counted(&self, mode: EngineMode) -> (SimulationResult, u64) {
        let (result, _, events) = self.run_impl(mode, CostMode::Table, false);
        (result, events)
    }

    fn run_impl(
        &self,
        mode: EngineMode,
        costs: CostMode,
        capture_log: bool,
    ) -> (SimulationResult, Vec<EventRecord>, u64) {
        let requests = self.requests.clone();
        let sim_costs = match costs {
            CostMode::Table => {
                let (decode, prefill) = self.tables();
                SimCosts {
                    mode: costs,
                    decode: Some(decode.clone()),
                    prefill: Some(prefill.clone()),
                }
            }
            CostMode::Reference => SimCosts {
                mode: costs,
                decode: None,
                prefill: None,
            },
        };
        let profile = *self.profile();
        let cluster_cfg = &self.config.cluster;

        assert!(
            requests
                .iter()
                .all(|r| r.tenant.index() < crate::policy::MAX_TENANTS),
            "trace tags a tenant beyond MAX_TENANTS ({})",
            crate::policy::MAX_TENANTS
        );

        if let Some(f) = self.config.failure {
            assert!(
                f.decode_replica < cluster_cfg.decode_replicas,
                "failure targets decode replica {} but the cluster has {}",
                f.decode_replica,
                cluster_cfg.decode_replicas
            );
            assert!(
                f.at.is_finite() && f.at >= 0.0,
                "failure time must be finite and non-negative, got {}",
                f.at
            );
            if let Some(recover) = f.recover_at {
                assert!(
                    recover.is_finite() && recover > f.at,
                    "recovery time {recover} must come after the failure at {}",
                    f.at
                );
            }
        }

        // --- Assemble the engine and the component fleet. ---
        let mut sim = Simulation::with_mode(self.config.trace.seed, mode);
        sim.set_log_enabled(capture_log);
        let driver = sim.create_context("driver");
        let frontend_ctx = sim.create_context("frontend");
        let fabric_ctx = sim.create_context("fabric");
        let prefill_ctxs: Vec<_> = (0..cluster_cfg.prefill_replicas)
            .map(|i| sim.create_context(format!("prefill-{i}")))
            .collect();
        let decode_ctxs: Vec<_> = (0..cluster_cfg.decode_replicas)
            .map(|i| sim.create_context(format!("decode-{i}")))
            .collect();

        let frontend_id = frontend_ctx.id();
        let decode_ids: Vec<_> = decode_ctxs.iter().map(|c| c.id()).collect();

        // Seed the queue: one arrival event per request, plus fault injection.
        for (i, r) in requests.iter().enumerate() {
            driver.emit_at(RequestArrived { req: i }, frontend_id, r.arrival);
        }
        if let Some(f) = self.config.failure {
            driver.emit_at(ReplicaFailed, decode_ids[f.decode_replica], f.at);
            if let Some(recover) = f.recover_at {
                driver.emit_at(ReplicaRecovered, decode_ids[f.decode_replica], recover);
            }
        }

        let num_requests = requests.len();
        let kv_capacity = cluster_cfg.decode_kv_budget_bytes();
        let policy = self.config.policy;
        #[cfg(test)]
        let force_boxed = FORCE_BOXED_POLICIES.with(std::cell::Cell::get);
        #[cfg(not(test))]
        let force_boxed = false;
        let (admission, scheduling) = if force_boxed {
            (
                Some(policy.admission.build(&policy.tenants)),
                Some(policy.scheduling.build()),
            )
        } else {
            (
                policy.admission.instantiate(&policy.tenants),
                policy.scheduling.instantiate(),
            )
        };
        let state = ClusterState {
            config: self.config,
            prefill_model: self.prefill_model,
            decode_model: self.decode_model,
            costs: sim_costs,
            admission,
            scheduling,
            states: vec![ReqState::default(); requests.len()],
            requests,
            prefill: vec![PrefillReplicaState::default(); cluster_cfg.prefill_replicas],
            decode: vec![
                DecodeReplicaState {
                    kv_capacity,
                    kv_used: 0.0,
                    peak_kv: 0.0,
                    active: 0,
                    resident_tokens: 0,
                    failed: false,
                };
                cluster_cfg.decode_replicas
            ],
            waiting_for_memory: VecDeque::new(),
            fabric: NetworkFabric::new(fabric_ctx, cluster_cfg.prefill_replicas),
            completed: 0,
            rejected: 0,
            rejected_per_tenant: [0; crate::policy::MAX_TENANTS],
            swapped: 0,
            requeued: 0,
            injected_failures: 0,
            prefill_ctxs,
            decode_ctxs,
        };
        let cluster = Rc::new(RefCell::new(state));

        sim.add_handler(
            "frontend",
            Rc::new(RefCell::new(Frontend {
                cluster: cluster.clone(),
            })),
        );
        for i in 0..cluster_cfg.prefill_replicas {
            sim.add_handler(
                &format!("prefill-{i}"),
                Rc::new(RefCell::new(PrefillReplica {
                    index: i,
                    cluster: cluster.clone(),
                })),
            );
        }
        for i in 0..cluster_cfg.decode_replicas {
            sim.add_handler(
                &format!("decode-{i}"),
                Rc::new(RefCell::new(DecodeReplica {
                    index: i,
                    cluster: cluster.clone(),
                })),
            );
        }

        // --- Drive the engine until every request is resolved — completed or
        // rejected by admission — (or the queue runs dry, e.g. under a
        // permanent failure of the whole decode fleet). ---
        let mut makespan = 0.0f64;
        while {
            let cs = cluster.borrow();
            cs.completed + cs.rejected < num_requests
        } {
            if !sim.step() {
                break;
            }
            makespan = makespan.max(sim.time());
        }

        // --- Assemble records. ---
        let cs = cluster.borrow();
        let kv_capacity_total = cluster_cfg.decode_replica_mem_bytes();
        let params_bytes = cluster_cfg.model.spec().param_bytes_fp16();
        let act_bytes = cluster_cfg.activation_reserve * kv_capacity_total;
        let peak_kv = cs.decode.iter().map(|d| d.peak_kv).fold(0.0, f64::max);
        let peak_fraction = ((params_bytes + act_bytes + peak_kv) / kv_capacity_total).min(1.0);

        let mut records: Vec<RequestRecord> = cs
            .requests
            .iter()
            .enumerate()
            .filter(|(i, _)| cs.states[*i].done)
            .map(|(i, r)| {
                let s = &cs.states[i];
                RequestRecord {
                    request: *r,
                    prefill_replica: s.prefill_replica,
                    decode_replica: s.decode_replica,
                    finish_time: s.finish_time,
                    breakdown: JctBreakdown {
                        prefill: s.prefill_time,
                        quantization: s.quant_time,
                        // Waiting for decode memory keeps the KV transfer pending on
                        // the prefill side (Fig. 1(d), case ii), so it is charged to
                        // communication, as in the paper's measurements.
                        communication: s.comm_time + s.memory_wait,
                        dequant_or_approx: s.dequant_time,
                        // Decode attempts aborted by a replica failure are wasted
                        // decode-side time; charge them to the decode stage so the
                        // breakdown still sums to the JCT.
                        decode: s.decode_time + s.aborted_decode,
                        queueing: s.prefill_wait,
                    },
                }
            })
            .collect();
        records.sort_by(|a, b| a.finish_time.partial_cmp(&b.finish_time).unwrap());

        let result = SimulationResult {
            method: profile.name.to_string(),
            records,
            peak_decode_memory_fraction: peak_fraction,
            peak_decode_kv_bytes: peak_kv,
            swapped_requests: cs.swapped,
            rejected_requests: cs.rejected,
            rejected_by_tenant: {
                let counts = &cs.rejected_per_tenant;
                let live = counts.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
                counts[..live].to_vec()
            },
            requeued_requests: cs.requeued,
            injected_failures: cs.injected_failures,
            makespan,
        };
        drop(cs);
        let events = sim.processed_count();
        (result, sim.take_log(), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, FailureSpec};
    use crate::policy::PolicyConfig;
    use hack_model::gpu::GpuKind;
    use hack_model::spec::ModelKind;
    use hack_workload::dataset::Dataset;
    use hack_workload::trace::TraceConfig;

    fn sim_config(
        profile: KvMethodProfile,
        dataset: Dataset,
        rps: f64,
        n: usize,
    ) -> SimulationConfig {
        let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset,
                rps,
                num_requests: n,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 7,
            },
            profile,
            policy: PolicyConfig::default(),
            failure: None,
        }
    }

    fn run(profile: KvMethodProfile, dataset: Dataset, rps: f64, n: usize) -> SimulationResult {
        Simulator::new(sim_config(profile, dataset, rps, n)).run()
    }

    #[test]
    fn all_requests_complete_and_breakdowns_are_consistent() {
        let result = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 40);
        assert_eq!(result.records.len(), 40);
        for r in &result.records {
            let jct = r.jct();
            assert!(jct > 0.0);
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown total {total} vs jct {jct}"
            );
        }
        assert!(result.makespan > 0.0);
        assert_eq!(result.requeued_requests, 0);
        assert_eq!(result.injected_failures, 0);
    }

    #[test]
    fn hack_reduces_average_jct_vs_baseline_and_quant_baselines() {
        let n = 60;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        assert!(
            hack.average_jct() < kvq.average_jct(),
            "hack {} vs kvquant {}",
            hack.average_jct(),
            kvq.average_jct()
        );
        assert!(
            hack.average_jct() < base.average_jct(),
            "hack {} vs baseline {}",
            hack.average_jct(),
            base.average_jct()
        );
        assert!(kvq.average_jct() < base.average_jct());
    }

    #[test]
    fn stage_ratio_structure_matches_method_semantics() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);

        let rb = base.average_ratios();
        let rk = kvq.average_ratios();
        let rh = hack.average_ratios();

        // Baseline: no quantization, no dequantization; communication is significant on
        // a 40 Gbps NIC with long prompts.
        assert_eq!(rb.quantization, 0.0);
        assert_eq!(rb.dequant_or_approx, 0.0);
        assert!(
            rb.communication > 0.03,
            "baseline comm ratio {}",
            rb.communication
        );

        // KV quantization slashes communication but pays dequantization every decode
        // iteration.
        assert!(rk.communication < rb.communication);
        assert!(
            rk.dequant_or_approx > 0.08,
            "kvquant dequant ratio {}",
            rk.dequant_or_approx
        );

        // HACK: tiny approximation overhead instead of dequantization.
        assert!(
            rh.dequant_or_approx < 0.05,
            "hack approx ratio {}",
            rh.dequant_or_approx
        );
        assert!(rh.dequant_or_approx < rk.dequant_or_approx / 3.0);
        assert!(rh.communication < rb.communication);
    }

    #[test]
    fn quantized_methods_reduce_peak_decode_memory() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        assert!(
            hack.peak_decode_memory_fraction < base.peak_decode_memory_fraction,
            "hack {} vs baseline {}",
            hack.peak_decode_memory_fraction,
            base.peak_decode_memory_fraction
        );
        // HACK stores sums + FP16 tail, so it sits at or slightly above KVQuant.
        assert!(hack.peak_decode_memory_fraction >= kvq.peak_decode_memory_fraction - 1e-9);
        assert!(hack.peak_decode_memory_fraction - kvq.peak_decode_memory_fraction < 0.05);
    }

    #[test]
    fn higher_load_increases_jct() {
        let low = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 40);
        let high = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.45, 40);
        assert!(
            high.average_jct() > low.average_jct(),
            "high-load JCT {} should exceed low-load JCT {}",
            high.average_jct(),
            low.average_jct()
        );
    }

    #[test]
    fn pipelining_hides_communication_at_low_load() {
        let mut cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 30);
        let without = Simulator::new(cfg).run();
        cfg.cluster.pipelining = true;
        let with = Simulator::new(cfg).run();
        assert!(
            with.average_ratios().communication < without.average_ratios().communication,
            "pipelined comm {} vs plain {}",
            with.average_ratios().communication,
            without.average_ratios().communication
        );
        assert!(with.average_ratios().communication < 0.05);
    }

    #[test]
    fn short_datasets_have_smaller_comm_ratios_than_long_ones() {
        let imdb = run(KvMethodProfile::baseline(), Dataset::Imdb, 0.5, 60);
        let cocktail = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 60);
        assert!(imdb.average_ratios().communication < cocktail.average_ratios().communication);
        assert!(imdb.average_jct() < cocktail.average_jct());
    }

    #[test]
    fn v100_low_bandwidth_inflates_comm_ratio() {
        let mk = |gpu: GpuKind| {
            let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, gpu);
            let cfg = SimulationConfig {
                cluster,
                trace: TraceConfig {
                    dataset: Dataset::Cocktail,
                    rps: 0.05,
                    num_requests: 40,
                    max_context: ModelKind::Llama31_70B.spec().max_context,
                    seed: 11,
                },
                profile: KvMethodProfile::baseline(),
                policy: PolicyConfig::default(),
                failure: None,
            };
            Simulator::new(cfg).run().average_ratios().communication
        };
        let v100 = mk(GpuKind::V100);
        let a100 = mk(GpuKind::A100);
        assert!(v100 > a100, "V100 comm ratio {v100} vs A100 {a100}");
        assert!(a100 < 0.1, "A100 (400 Gbps) comm ratio {a100}");
    }

    #[test]
    fn slab_engine_reproduces_boxed_engine_trace_and_result() {
        // The slab/inline-payload engine must reproduce the pre-change boxed
        // engine on a seeded cluster run: identical event trace (every emission
        // and delivery, in order) and identical SimulationResult (PartialEq on
        // the result compares every f64 exactly).
        for profile in [KvMethodProfile::baseline(), KvMethodProfile::hack()] {
            let cfg = sim_config(profile, Dataset::Cocktail, 0.08, 40);
            let (slab_result, slab_trace) = Simulator::new(cfg).run_traced(EngineMode::Slab);
            let (boxed_result, boxed_trace) = Simulator::new(cfg).run_traced(EngineMode::Boxed);
            assert!(!slab_trace.is_empty());
            assert_eq!(slab_trace, boxed_trace, "{}: event traces", profile.name);
            assert_eq!(slab_result, boxed_result, "{}: results", profile.name);
        }
    }

    #[test]
    fn cost_tables_reproduce_reference_summation_end_to_end() {
        // The prefix-sum/memoized cost layer changes only f64 summation order,
        // so a seeded run must agree with the reference per-token loops on
        // every record to within 1e-9 relative (and exactly on the discrete
        // outcomes: completion order, replica placement, swap counts).
        for profile in [
            KvMethodProfile::baseline(),
            KvMethodProfile::cachegen(),
            KvMethodProfile::hack(),
        ] {
            let sim = Simulator::new(sim_config(profile, Dataset::Cocktail, 0.08, 50));
            let table = sim.run_with_costs(CostMode::Table);
            let reference = sim.run_with_costs(CostMode::Reference);
            assert_eq!(table.records.len(), reference.records.len());
            assert_eq!(table.swapped_requests, reference.swapped_requests);
            assert_eq!(table.requeued_requests, reference.requeued_requests);
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            for (t, r) in table.records.iter().zip(&reference.records) {
                assert_eq!(
                    t.request.id, r.request.id,
                    "{}: completion order",
                    profile.name
                );
                assert_eq!(t.prefill_replica, r.prefill_replica);
                assert_eq!(t.decode_replica, r.decode_replica);
                assert!(
                    close(t.jct(), r.jct()),
                    "{}: request {} jct {} vs {}",
                    profile.name,
                    t.request.id,
                    t.jct(),
                    r.jct()
                );
            }
            assert!(close(table.average_jct(), reference.average_jct()));
            assert!(close(table.makespan, reference.makespan));
        }
    }

    #[test]
    fn slab_engine_matches_boxed_under_fault_injection() {
        let spec = FailureSpec::transient(0, 50.0, 400.0);
        let cfg = failure_config(30, spec);
        let (slab_result, slab_trace) = Simulator::new(cfg).run_traced(EngineMode::Slab);
        let (boxed_result, boxed_trace) = Simulator::new(cfg).run_traced(EngineMode::Boxed);
        assert_eq!(slab_trace, boxed_trace);
        assert_eq!(slab_result, boxed_result);
    }

    #[test]
    fn deterministic_given_identical_configuration() {
        let a = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        let b = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        assert_eq!(a.records.len(), b.records.len());
        assert!((a.average_jct() - b.average_jct()).abs() < 1e-12);
        assert_eq!(a.swapped_requests, b.swapped_requests);
    }

    #[test]
    fn overload_triggers_memory_swapping_for_baseline() {
        // Drive the baseline hard with long prompts on a single decode replica whose
        // KV budget has been squeezed (a large activation reserve), so memory runs out;
        // the swap path must engage and still complete all requests.
        let mut cluster = ClusterConfig::scalability(6);
        cluster.cost_params.decode_batch = 8.0;
        cluster.activation_reserve = 0.55;
        let cfg = SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset: Dataset::Cocktail,
                rps: 0.5,
                num_requests: 80,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 13,
            },
            profile: KvMethodProfile::baseline(),
            policy: PolicyConfig::default(),
            failure: None,
        };
        let result = Simulator::new(cfg).run();
        assert_eq!(result.records.len(), 80);
        assert!(
            result.swapped_requests > 0,
            "expected memory pressure to trigger CPU swap"
        );
        assert!(result.peak_decode_memory_fraction > 0.6);
    }

    // --- Fault injection: scenarios the monolithic simulator could not express. ---

    /// A failure window covering the middle of the run on the default config.
    fn failure_config(n: usize, failure: FailureSpec) -> SimulationConfig {
        SimulationConfig {
            failure: Some(failure),
            ..sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, n)
        }
    }

    /// A failure spec guaranteed to abort at least one in-flight decode: from a
    /// healthy run, pick a completed request and fail its decode replica just
    /// before it finishes (decoding is the last stage, so it is in flight then).
    fn mid_decode_failure(n: usize) -> FailureSpec {
        let healthy = Simulator::new(sim_config(
            KvMethodProfile::baseline(),
            Dataset::Cocktail,
            0.08,
            n,
        ))
        .run();
        let victim = healthy
            .records
            .iter()
            .find(|r| r.breakdown.decode > 1.0)
            .expect("some request decodes for more than a second");
        FailureSpec::transient(
            victim.decode_replica,
            victim.finish_time - 0.5,
            healthy.makespan + 100.0,
        )
    }

    #[test]
    fn transient_decode_failure_requeues_and_still_completes_everything() {
        let result = Simulator::new(failure_config(40, mid_decode_failure(40))).run();
        assert_eq!(
            result.records.len(),
            40,
            "all requests must complete despite the failure"
        );
        assert_eq!(result.injected_failures, 1);
        assert!(
            result.requeued_requests > 0,
            "a mid-run failure must abort and re-queue in-flight requests"
        );
        for r in &result.records {
            let jct = r.jct();
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown must still sum to JCT under failures: {total} vs {jct}"
            );
        }
    }

    #[test]
    fn failure_increases_average_jct() {
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 40);
        let failed = Simulator::new(failure_config(40, mid_decode_failure(40))).run();
        assert_eq!(failed.records.len(), 40);
        assert!(
            failed.average_jct() > base.average_jct(),
            "losing a decode replica mid-run must hurt JCT: {} vs {}",
            failed.average_jct(),
            base.average_jct()
        );
    }

    #[test]
    fn permanent_failure_leaves_survivors_serving() {
        let result = Simulator::new(failure_config(40, FailureSpec::permanent(0, 100.0))).run();
        // The paper-default fleet has 4 decode replicas; the other three finish the work.
        assert_eq!(result.records.len(), 40);
        assert!(result
            .records
            .iter()
            .all(|r| r.decode_replica != 0 || r.finish_time < 100.0));
    }

    #[test]
    fn failure_runs_are_deterministic_too() {
        let spec = mid_decode_failure(35);
        let a = Simulator::new(failure_config(35, spec)).run();
        let b = Simulator::new(failure_config(35, spec)).run();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.requeued_requests, b.requeued_requests);
        assert!((a.average_jct() - b.average_jct()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "failure targets decode replica")]
    fn failure_on_nonexistent_replica_is_rejected() {
        let _ = Simulator::new(failure_config(10, FailureSpec::permanent(99, 1.0))).run();
    }

    #[test]
    fn boxed_default_policies_reproduce_the_fast_path_bit_for_bit() {
        // FCFS/AdmitAll normally instantiate to `None` (the pre-policy
        // pop_front hot path). Forcing them through the boxed trait-object
        // path (`Fcfs::select` + `VecDeque::remove(pos)`, per-arrival
        // `AdmitAll::admit`) must change nothing: PartialEq compares every
        // f64 exactly.
        for (dataset, rps) in [(Dataset::Cocktail, 0.08), (Dataset::Imdb, 0.6)] {
            let sim = Simulator::new(sim_config(KvMethodProfile::hack(), dataset, rps, 50));
            assert_eq!(
                sim.run_with_boxed_default_policies(),
                sim.run(),
                "{}: boxed Fcfs/AdmitAll must match the built-in fast path",
                dataset.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "beyond MAX_TENANTS")]
    fn out_of_range_tenant_tags_are_rejected() {
        use hack_workload::trace::TenantId;
        let cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 5);
        let mut requests = hack_workload::trace::TraceGenerator::new(cfg.trace).generate();
        requests[3].tenant = TenantId(crate::policy::MAX_TENANTS as u32);
        let _ = Simulator::with_requests(cfg, std::sync::Arc::new(requests)).run();
    }
}
