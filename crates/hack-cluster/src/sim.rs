//! The discrete-event simulation engine.

use crate::config::SimulationConfig;
use crate::result::{RequestRecord, SimulationResult};
use hack_metrics::jct::JctBreakdown;
use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
use hack_workload::trace::{Request, TraceGenerator};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A request arrives at the cluster.
    Arrival { req: usize },
    /// A prefill replica finishes prefill (+ quantization) of a request.
    PrefillDone { replica: usize, req: usize },
    /// A request's KV data has fully arrived at its decode replica.
    TransferDone { req: usize },
    /// A request has generated its last token.
    DecodeDone { replica: usize, req: usize },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need the earliest event first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug, Default, Clone)]
struct PrefillReplica {
    queue: VecDeque<usize>,
    queued_tokens: usize,
    busy: bool,
    nic_free_at: f64,
}

#[derive(Debug, Clone)]
struct DecodeReplica {
    kv_capacity: f64,
    kv_used: f64,
    peak_kv: f64,
    active: usize,
    resident_tokens: usize,
}

#[derive(Debug, Clone, Default)]
struct ReqState {
    prefill_replica: usize,
    decode_replica: usize,
    prefill_wait: f64,
    prefill_time: f64,
    quant_time: f64,
    comm_time: f64,
    memory_wait: f64,
    dequant_time: f64,
    decode_time: f64,
    /// Pipelined transfer completion time (if a transfer was started during prefill).
    pipelined_transfer_end: Option<f64>,
    /// When the request started waiting for decode memory.
    memory_wait_start: Option<f64>,
    kv_reserve_bytes: f64,
    finish_time: f64,
    done: bool,
    swapped: bool,
}

/// Discrete-event simulator of one configuration (cluster × trace × method).
pub struct Simulator {
    config: SimulationConfig,
    prefill_model: ReplicaCostModel,
    decode_model: ReplicaCostModel,
}

impl Simulator {
    /// Creates a simulator from a configuration.
    pub fn new(config: SimulationConfig) -> Self {
        let model = config.cluster.model.spec();
        let prefill_model = ReplicaCostModel {
            model,
            gpu: config.cluster.prefill_gpu.spec(),
            parallel: config.cluster.prefill_parallelism(),
            params: config.cluster.cost_params,
        };
        let decode_model = ReplicaCostModel {
            model,
            gpu: config.cluster.decode_gpu.spec(),
            parallel: config.cluster.decode_parallelism(),
            params: config.cluster.cost_params,
        };
        Self {
            config,
            prefill_model,
            decode_model,
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    fn profile(&self) -> &KvMethodProfile {
        &self.config.profile
    }

    fn kv_reserve_bytes(&self, request: &Request) -> f64 {
        self.decode_model
            .kv_fp16_bytes(request.total_tokens())
            * self.profile().kv_size_factor
    }

    fn decode_durations(&self, request: &Request) -> (f64, f64) {
        let profile = self.profile();
        let batch = self.config.cluster.cost_params.decode_batch;
        let mut decode = 0.0;
        let mut dequant = 0.0;
        for i in 0..request.output_len {
            let kv_len = request.input_len + i + 1;
            decode += self.decode_model.decode_iter_time(kv_len, profile, batch);
            dequant += self.decode_model.dequant_or_approx_iter_time(kv_len, profile);
        }
        (decode, dequant)
    }

    /// Runs the simulation to completion and returns the aggregated result.
    pub fn run(&self) -> SimulationResult {
        let requests = TraceGenerator::new(self.config.trace).generate();
        let profile = *self.profile();
        let cluster = &self.config.cluster;

        let mut prefill: Vec<PrefillReplica> =
            vec![PrefillReplica::default(); cluster.prefill_replicas];
        let kv_capacity = cluster.decode_kv_budget_bytes();
        let mut decode: Vec<DecodeReplica> = vec![
            DecodeReplica {
                kv_capacity,
                kv_used: 0.0,
                peak_kv: 0.0,
                active: 0,
                resident_tokens: 0,
            };
            cluster.decode_replicas
        ];
        let mut states: Vec<ReqState> = vec![ReqState::default(); requests.len()];
        let mut waiting_for_memory: VecDeque<usize> = VecDeque::new();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Event {
                time,
                seq: *seq,
                kind,
            });
        };

        for (i, r) in requests.iter().enumerate() {
            push(&mut heap, &mut seq, r.arrival, EventKind::Arrival { req: i });
        }

        let mut completed = 0usize;
        let mut swapped = 0usize;
        let mut makespan = 0.0f64;

        while let Some(event) = heap.pop() {
            let now = event.time;
            makespan = makespan.max(now);
            match event.kind {
                EventKind::Arrival { req } => {
                    // Shortest-queue dispatch by queued tokens (§7.1).
                    let replica = (0..prefill.len())
                        .min_by_key(|&r| {
                            prefill[r].queued_tokens
                                + if prefill[r].busy { requests[req].input_len } else { 0 }
                        })
                        .unwrap();
                    states[req].prefill_replica = replica;
                    prefill[replica].queue.push_back(req);
                    prefill[replica].queued_tokens += requests[req].input_len;
                    if !prefill[replica].busy {
                        self.start_prefill(
                            replica,
                            now,
                            &requests,
                            &mut prefill,
                            &mut decode,
                            &mut states,
                            &mut heap,
                            &mut seq,
                            &mut push,
                        );
                    }
                }
                EventKind::PrefillDone { replica, req } => {
                    prefill[replica].busy = false;
                    prefill[replica].queued_tokens =
                        prefill[replica].queued_tokens.saturating_sub(requests[req].input_len);

                    // Hand the request to the transfer/decode pipeline.
                    if let Some(transfer_end) = states[req].pipelined_transfer_end {
                        // Pipelined: the transfer has been running during prefill; only
                        // the non-overlapped part counts as communication time.
                        let ready = transfer_end.max(now);
                        states[req].comm_time = (transfer_end - now).max(0.0);
                        push(&mut heap, &mut seq, ready, EventKind::TransferDone { req });
                    } else {
                        self.try_dispatch_to_decode(
                            req,
                            now,
                            &requests,
                            &mut prefill,
                            &mut decode,
                            &mut states,
                            &mut waiting_for_memory,
                            &mut swapped,
                            &mut heap,
                            &mut seq,
                            &mut push,
                        );
                    }

                    // Start the next queued prefill, if any.
                    if !prefill[replica].queue.is_empty() {
                        self.start_prefill(
                            replica,
                            now,
                            &requests,
                            &mut prefill,
                            &mut decode,
                            &mut states,
                            &mut heap,
                            &mut seq,
                            &mut push,
                        );
                    }
                }
                EventKind::TransferDone { req } => {
                    let d = states[req].decode_replica;
                    decode[d].active += 1;
                    decode[d].resident_tokens += requests[req].total_tokens();
                    let (decode_t, dequant_t) = self.decode_durations(&requests[req]);
                    // Congestion: when more sequences are resident than the nominal
                    // batch, every iteration takes proportionally longer.
                    let nominal = self.config.cluster.cost_params.decode_batch;
                    let congestion = (decode[d].active as f64 / nominal).max(1.0);
                    let decode_t = decode_t * congestion;
                    let dequant_t = dequant_t * congestion;
                    states[req].decode_time = decode_t;
                    states[req].dequant_time = dequant_t;
                    push(
                        &mut heap,
                        &mut seq,
                        now + decode_t + dequant_t,
                        EventKind::DecodeDone { replica: d, req },
                    );
                }
                EventKind::DecodeDone { replica, req } => {
                    decode[replica].kv_used -= states[req].kv_reserve_bytes;
                    decode[replica].active -= 1;
                    decode[replica].resident_tokens = decode[replica]
                        .resident_tokens
                        .saturating_sub(requests[req].total_tokens());
                    states[req].finish_time = now;
                    states[req].done = true;
                    completed += 1;

                    // Freed memory: admit waiting requests in FIFO order while they fit.
                    while let Some(&head) = waiting_for_memory.front() {
                        let bytes = self.kv_reserve_bytes(&requests[head]);
                        if let Some(target) = best_decode_replica(&decode, bytes) {
                            waiting_for_memory.pop_front();
                            let wait_start = states[head].memory_wait_start.take().unwrap_or(now);
                            states[head].memory_wait += now - wait_start;
                            self.reserve_and_transfer(
                                head,
                                target,
                                now,
                                &requests,
                                &mut prefill,
                                &mut decode,
                                &mut states,
                                &mut heap,
                                &mut seq,
                                &mut push,
                            );
                        } else {
                            break;
                        }
                    }
                }
            }
            if completed == requests.len() {
                break;
            }
        }

        // Assemble records.
        let kv_capacity_total = cluster.decode_replica_mem_bytes();
        let params_bytes = cluster.model.spec().param_bytes_fp16();
        let act_bytes = cluster.activation_reserve * kv_capacity_total;
        let peak_kv = decode.iter().map(|d| d.peak_kv).fold(0.0, f64::max);
        let peak_fraction =
            ((params_bytes + act_bytes + peak_kv) / kv_capacity_total).min(1.0);

        let mut records: Vec<RequestRecord> = requests
            .iter()
            .enumerate()
            .filter(|(i, _)| states[*i].done)
            .map(|(i, r)| {
                let s = &states[i];
                RequestRecord {
                    request: *r,
                    prefill_replica: s.prefill_replica,
                    decode_replica: s.decode_replica,
                    finish_time: s.finish_time,
                    breakdown: JctBreakdown {
                        prefill: s.prefill_time,
                        quantization: s.quant_time,
                        // Waiting for decode memory keeps the KV transfer pending on
                        // the prefill side (Fig. 1(d), case ii), so it is charged to
                        // communication, as in the paper's measurements.
                        communication: s.comm_time + s.memory_wait,
                        dequant_or_approx: s.dequant_time,
                        decode: s.decode_time,
                        queueing: s.prefill_wait,
                    },
                }
            })
            .collect();
        records.sort_by(|a, b| a.finish_time.partial_cmp(&b.finish_time).unwrap());

        SimulationResult {
            method: profile.name.to_string(),
            records,
            peak_decode_memory_fraction: peak_fraction,
            peak_decode_kv_bytes: peak_kv,
            swapped_requests: swapped,
            makespan,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn start_prefill(
        &self,
        replica: usize,
        now: f64,
        requests: &[Request],
        prefill: &mut [PrefillReplica],
        decode: &mut [DecodeReplica],
        states: &mut [ReqState],
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
    ) {
        let Some(req) = prefill[replica].queue.pop_front() else {
            return;
        };
        prefill[replica].busy = true;
        let request = &requests[req];
        let profile = self.profile();

        states[req].prefill_wait = (now - request.arrival).max(0.0);
        let prefill_t = self.prefill_model.prefill_time(request.input_len, profile);
        let quant_t = self.prefill_model.quantization_time(request.input_len, profile);
        states[req].prefill_time = prefill_t;
        states[req].quant_time = quant_t;

        // Pipelining: start the KV transfer concurrently with prefill when a decode
        // replica can take the request right now (Fig. 1(d): this hides communication
        // only while the transfer is shorter than prefill and memory is available).
        if self.config.cluster.pipelining {
            let bytes = self.kv_reserve_bytes(request);
            if let Some(target) = best_decode_replica(decode, bytes) {
                decode[target].kv_used += bytes;
                decode[target].peak_kv = decode[target].peak_kv.max(decode[target].kv_used);
                states[req].decode_replica = target;
                states[req].kv_reserve_bytes = bytes;
                let duration = self.transfer_duration(request);
                let start = prefill[replica].nic_free_at.max(now);
                let end = start + duration;
                prefill[replica].nic_free_at = end;
                states[req].pipelined_transfer_end = Some(end);
            }
        }

        push(
            heap,
            seq,
            now + prefill_t + quant_t,
            EventKind::PrefillDone { replica, req },
        );
    }

    fn transfer_duration(&self, request: &Request) -> f64 {
        let gbps = self
            .config
            .cluster
            .prefill_network_gbps
            .min(self.config.cluster.decode_network_gbps);
        self.prefill_model
            .transfer_time(request.input_len, self.profile(), gbps)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_dispatch_to_decode(
        &self,
        req: usize,
        now: f64,
        requests: &[Request],
        prefill: &mut [PrefillReplica],
        decode: &mut [DecodeReplica],
        states: &mut [ReqState],
        waiting: &mut VecDeque<usize>,
        swapped: &mut usize,
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
    ) {
        let bytes = self.kv_reserve_bytes(&requests[req]);
        if let Some(target) = best_decode_replica(decode, bytes) {
            self.reserve_and_transfer(
                req, target, now, requests, prefill, decode, states, heap, seq, push,
            );
        } else {
            // No decode replica has room: the prefill instance spills the (quantized)
            // KV data to its CPU memory and waits (§4).
            states[req].memory_wait_start = Some(now);
            states[req].swapped = true;
            *swapped += 1;
            waiting.push_back(req);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn reserve_and_transfer(
        &self,
        req: usize,
        target: usize,
        now: f64,
        requests: &[Request],
        prefill: &mut [PrefillReplica],
        decode: &mut [DecodeReplica],
        states: &mut [ReqState],
        heap: &mut BinaryHeap<Event>,
        seq: &mut u64,
        push: &mut impl FnMut(&mut BinaryHeap<Event>, &mut u64, f64, EventKind),
    ) {
        let bytes = self.kv_reserve_bytes(&requests[req]);
        decode[target].kv_used += bytes;
        decode[target].peak_kv = decode[target].peak_kv.max(decode[target].kv_used);
        states[req].decode_replica = target;
        states[req].kv_reserve_bytes = bytes;

        let replica = states[req].prefill_replica;
        let duration = self.transfer_duration(&requests[req]);
        let start = prefill[replica].nic_free_at.max(now);
        let end = start + duration;
        prefill[replica].nic_free_at = end;
        // Communication time as experienced by the request: waiting for the NIC plus
        // the wire time.
        states[req].comm_time += end - now;
        push(heap, seq, end, EventKind::TransferDone { req });
    }
}

/// Picks the decode replica with the fewest resident tokens among those that can fit
/// `bytes` of new KV data. A request too large to ever fit an *empty* replica is
/// force-admitted to the emptiest one (modelling partial host offload) so the
/// simulation always terminates.
fn best_decode_replica(decode: &[DecodeReplica], bytes: f64) -> Option<usize> {
    let fit = decode
        .iter()
        .enumerate()
        .filter(|(_, d)| d.kv_used + bytes <= d.kv_capacity)
        .min_by_key(|(_, d)| d.resident_tokens)
        .map(|(i, _)| i);
    if fit.is_some() {
        return fit;
    }
    if decode.iter().all(|d| bytes > d.kv_capacity) {
        // Oversized even for an empty replica: admit to the one with the most free
        // space once it is idle.
        return decode
            .iter()
            .enumerate()
            .filter(|(_, d)| d.active == 0)
            .min_by_key(|(_, d)| d.resident_tokens)
            .map(|(i, _)| i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use hack_model::gpu::GpuKind;
    use hack_model::spec::ModelKind;
    use hack_workload::dataset::Dataset;
    use hack_workload::trace::TraceConfig;

    fn sim_config(profile: KvMethodProfile, dataset: Dataset, rps: f64, n: usize) -> SimulationConfig {
        let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset,
                rps,
                num_requests: n,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 7,
            },
            profile,
        }
    }

    fn run(profile: KvMethodProfile, dataset: Dataset, rps: f64, n: usize) -> SimulationResult {
        Simulator::new(sim_config(profile, dataset, rps, n)).run()
    }

    #[test]
    fn all_requests_complete_and_breakdowns_are_consistent() {
        let result = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 40);
        assert_eq!(result.records.len(), 40);
        for r in &result.records {
            let jct = r.jct();
            assert!(jct > 0.0);
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown total {total} vs jct {jct}"
            );
        }
        assert!(result.makespan > 0.0);
    }

    #[test]
    fn hack_reduces_average_jct_vs_baseline_and_quant_baselines() {
        let n = 60;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        assert!(
            hack.average_jct() < kvq.average_jct(),
            "hack {} vs kvquant {}",
            hack.average_jct(),
            kvq.average_jct()
        );
        assert!(
            hack.average_jct() < base.average_jct(),
            "hack {} vs baseline {}",
            hack.average_jct(),
            base.average_jct()
        );
        assert!(kvq.average_jct() < base.average_jct());
    }

    #[test]
    fn stage_ratio_structure_matches_method_semantics() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);

        let rb = base.average_ratios();
        let rk = kvq.average_ratios();
        let rh = hack.average_ratios();

        // Baseline: no quantization, no dequantization; communication is significant on
        // a 40 Gbps NIC with long prompts.
        assert_eq!(rb.quantization, 0.0);
        assert_eq!(rb.dequant_or_approx, 0.0);
        assert!(rb.communication > 0.03, "baseline comm ratio {}", rb.communication);

        // KV quantization slashes communication but pays dequantization every decode
        // iteration.
        assert!(rk.communication < rb.communication);
        assert!(rk.dequant_or_approx > 0.08, "kvquant dequant ratio {}", rk.dequant_or_approx);

        // HACK: tiny approximation overhead instead of dequantization.
        assert!(rh.dequant_or_approx < 0.05, "hack approx ratio {}", rh.dequant_or_approx);
        assert!(rh.dequant_or_approx < rk.dequant_or_approx / 3.0);
        assert!(rh.communication < rb.communication);
    }

    #[test]
    fn quantized_methods_reduce_peak_decode_memory() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        assert!(
            hack.peak_decode_memory_fraction < base.peak_decode_memory_fraction,
            "hack {} vs baseline {}",
            hack.peak_decode_memory_fraction,
            base.peak_decode_memory_fraction
        );
        // HACK stores sums + FP16 tail, so it sits at or slightly above KVQuant.
        assert!(hack.peak_decode_memory_fraction >= kvq.peak_decode_memory_fraction - 1e-9);
        assert!(hack.peak_decode_memory_fraction - kvq.peak_decode_memory_fraction < 0.05);
    }

    #[test]
    fn higher_load_increases_jct() {
        let low = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 40);
        let high = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.45, 40);
        assert!(
            high.average_jct() > low.average_jct(),
            "high-load JCT {} should exceed low-load JCT {}",
            high.average_jct(),
            low.average_jct()
        );
    }

    #[test]
    fn pipelining_hides_communication_at_low_load() {
        let mut cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 30);
        let without = Simulator::new(cfg).run();
        cfg.cluster.pipelining = true;
        let with = Simulator::new(cfg).run();
        assert!(
            with.average_ratios().communication < without.average_ratios().communication,
            "pipelined comm {} vs plain {}",
            with.average_ratios().communication,
            without.average_ratios().communication
        );
        assert!(with.average_ratios().communication < 0.05);
    }

    #[test]
    fn short_datasets_have_smaller_comm_ratios_than_long_ones() {
        let imdb = run(KvMethodProfile::baseline(), Dataset::Imdb, 0.5, 60);
        let cocktail = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 60);
        assert!(imdb.average_ratios().communication < cocktail.average_ratios().communication);
        assert!(imdb.average_jct() < cocktail.average_jct());
    }

    #[test]
    fn v100_low_bandwidth_inflates_comm_ratio() {
        let mk = |gpu: GpuKind| {
            let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, gpu);
            let cfg = SimulationConfig {
                cluster,
                trace: TraceConfig {
                    dataset: Dataset::Cocktail,
                    rps: 0.05,
                    num_requests: 40,
                    max_context: ModelKind::Llama31_70B.spec().max_context,
                    seed: 11,
                },
                profile: KvMethodProfile::baseline(),
            };
            Simulator::new(cfg).run().average_ratios().communication
        };
        let v100 = mk(GpuKind::V100);
        let a100 = mk(GpuKind::A100);
        assert!(v100 > a100, "V100 comm ratio {v100} vs A100 {a100}");
        assert!(a100 < 0.1, "A100 (400 Gbps) comm ratio {a100}");
    }

    #[test]
    fn deterministic_given_identical_configuration() {
        let a = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        let b = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        assert_eq!(a.records.len(), b.records.len());
        assert!((a.average_jct() - b.average_jct()).abs() < 1e-12);
        assert_eq!(a.swapped_requests, b.swapped_requests);
    }

    #[test]
    fn overload_triggers_memory_swapping_for_baseline() {
        // Drive the baseline hard with long prompts on a single decode replica whose
        // KV budget has been squeezed (a large activation reserve), so memory runs out;
        // the swap path must engage and still complete all requests.
        let mut cluster = ClusterConfig::scalability(6);
        cluster.cost_params.decode_batch = 8.0;
        cluster.activation_reserve = 0.55;
        let cfg = SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset: Dataset::Cocktail,
                rps: 0.5,
                num_requests: 80,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 13,
            },
            profile: KvMethodProfile::baseline(),
        };
        let result = Simulator::new(cfg).run();
        assert_eq!(result.records.len(), 80);
        assert!(
            result.swapped_requests > 0,
            "expected memory pressure to trigger CPU swap"
        );
        assert!(result.peak_decode_memory_fraction > 0.6);
    }
}
