//! The cluster simulator: components assembled on the [`hack_sim`] engine.
//!
//! [`Simulator::run`] builds a [`hack_sim::Simulation`], registers the
//! component fleet (frontend, prefill replicas, network fabric, decode
//! replicas — see [`crate::components`]), seeds it with the request trace's
//! arrival events (plus any fault-injection events), and drives the engine
//! until every request completes.
//!
//! The fleet is a [`crate::fleet::FleetSpec`]: replicas are instantiated
//! group-major (group 0's replicas first), each carrying its group's cost
//! model and memory budget. [`Simulator::new`] materialises the run's *cost
//! layer* once: the trace itself, one decode-side prefix-sum table per decode
//! group ([`hack_model::cost_table::DecodeCostTable`], shared process-wide
//! across simulators with the same parameterisation) and one prefill-side
//! per-prompt-length memo per (prefill group × decode group) pair, so every
//! per-request cost during the event loop is O(1).
//! [`CostMode::Reference`] re-runs the original per-token summation loops
//! instead — kept for benchmarking and as the equivalence oracle.

use crate::components::decode::DecodeReplica;
use crate::components::frontend::Frontend;
use crate::components::network::NetworkFabric;
use crate::components::prefill::PrefillReplica;
use crate::components::scaling::ScalingController;
use crate::components::{
    ClusterState, DecodeReplicaState, FaultTally, PrefillReplicaState, ReqState, SimCosts,
};
use crate::config::{ClusterConfig, SimulationConfig};
use crate::events::{
    FabricFault, FabricRecovered, PrefillFailed, PrefillRecovered, ReplicaFailed, ReplicaRecovered,
    RequestArrived, SampleTick, ScaleTick,
};
use crate::policy::ScalingPolicyKind;
use crate::result::{FaultRecord, GroupStats, RequestRecord, SimulationResult};
use crate::telemetry::{TelemetrySampler, TelemetryState};
use crate::topology::{ConfigError, FaultDomain};
use hack_metrics::jct::JctBreakdown;
use hack_metrics::telemetry::Telemetry;
use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
use hack_model::cost_table::{DecodeCostTable, PrefillCostTable};
use hack_sim::{EngineMode, EventRecord, Simulation};
use hack_workload::trace::{Request, TraceGenerator};
use std::cell::{OnceCell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

/// How the simulator evaluates per-request analytic costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMode {
    /// Memoized cost tables: decode durations are prefix subtractions,
    /// prefill/quantization/transfer times are per-prompt-length memos.
    #[default]
    Table,
    /// The pre-table paths: O(output tokens) summation per request and direct
    /// formula evaluation per call. Kept for benchmarking and equivalence
    /// testing; results agree with [`CostMode::Table`] to ~1e-15 relative.
    Reference,
}

#[cfg(test)]
thread_local! {
    /// Test-only switch forcing the boxed trait-object policy path even for
    /// the LeastLoaded/FCFS/AdmitAll defaults (see
    /// [`Simulator::run_with_boxed_default_policies`]).
    static FORCE_BOXED_POLICIES: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Discrete-event simulator of one configuration (cluster × trace × method).
pub struct Simulator {
    config: SimulationConfig,
    /// Cost model of each prefill group.
    prefill_models: Vec<ReplicaCostModel>,
    /// Cost model of each decode group.
    decode_models: Vec<ReplicaCostModel>,
    requests: Arc<Vec<Request>>,
    /// Cost tables, built on the first [`CostMode::Table`] run and reused by
    /// every subsequent one. Lazy so that pure [`CostMode::Reference`] runs —
    /// the benchmarked "pre-table" baseline — never pay table construction.
    #[allow(clippy::type_complexity)]
    tables: OnceCell<(Vec<Arc<DecodeCostTable>>, Vec<Vec<Arc<PrefillCostTable>>>)>,
}

impl Simulator {
    /// Creates a simulator from a configuration, generating its trace once
    /// (reused across `run*` calls, as are the lazily built cost tables).
    /// Panics on an invalid fault/topology configuration; use
    /// [`Simulator::try_new`] for a typed error.
    pub fn new(config: SimulationConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::new`], but an invalid fault plan or topology returns a
    /// typed [`ConfigError`] instead of panicking — every check runs here,
    /// before any event is scheduled.
    pub fn try_new(config: SimulationConfig) -> Result<Self, ConfigError> {
        let requests = Arc::new(TraceGenerator::new(config.trace).generate());
        Self::try_with_requests(config, requests)
    }

    /// Creates a simulator over an externally supplied trace (which must match
    /// `config.trace.num_requests`). This is how the capacity bisection in
    /// `hack-core` reuses one trace template across its probe runs instead of
    /// re-synthesising the trace per probe. Panics on an invalid
    /// configuration; use [`Simulator::try_with_requests`] for a typed error.
    pub fn with_requests(config: SimulationConfig, requests: Arc<Vec<Request>>) -> Self {
        Self::try_with_requests(config, requests).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Simulator::with_requests`] with construction-time validation.
    pub fn try_with_requests(
        config: SimulationConfig,
        requests: Arc<Vec<Request>>,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        assert_eq!(
            requests.len(),
            config.trace.num_requests,
            "supplied trace length must match config.trace.num_requests"
        );
        // Session DAG validation: a child's parent must precede it in the
        // trace and must not arrive after it — gating releases children at
        // `max(child arrival, parent completion)`, which is only causal when
        // parents nominally arrive first.
        for (i, r) in requests.iter().enumerate() {
            if let Some(p) = r.parent {
                if (p as usize) >= i || requests[p as usize].arrival > r.arrival {
                    return Err(ConfigError::InvalidSessionParent {
                        child: r.id,
                        parent: p,
                    });
                }
            }
        }
        let cluster = &config.cluster;
        let prefill_models = (0..cluster.fleet.prefill.len())
            .map(|g| cluster.prefill_cost_model(g))
            .collect();
        let decode_models = (0..cluster.fleet.decode.len())
            .map(|g| cluster.decode_cost_model(g))
            .collect();
        Ok(Self {
            config,
            prefill_models,
            decode_models,
            requests,
            tables: OnceCell::new(),
        })
    }

    /// The memoized cost layer of this simulator: one decode prefix-sum table
    /// per decode group (shared process-wide across equal parameterisations)
    /// and one prefill per-prompt-length memo per (prefill × decode) group
    /// pair, built on first use.
    #[allow(clippy::type_complexity)]
    fn tables(&self) -> &(Vec<Arc<DecodeCostTable>>, Vec<Vec<Arc<PrefillCostTable>>>) {
        self.tables.get_or_init(|| {
            let max_kv_len = self
                .requests
                .iter()
                .map(Request::total_tokens)
                .max()
                .unwrap_or(1);
            let fleet = &self.config.cluster.fleet;
            let decode_tables: Vec<Arc<DecodeCostTable>> = self
                .decode_models
                .iter()
                .map(|model| {
                    DecodeCostTable::shared(
                        model,
                        &self.config.profile,
                        model.params.decode_batch,
                        max_kv_len,
                    )
                })
                .collect();
            // One full build per prefill group; further decode pairings only
            // re-evaluate the transfer column at their own min-NIC bandwidth
            // (prefill/quantization are bandwidth-independent), and pairings
            // with an equal bandwidth share one table.
            let prefill_tables: Vec<Vec<Arc<PrefillCostTable>>> = self
                .prefill_models
                .iter()
                .enumerate()
                .map(|(pg, model)| {
                    let prefill_gbps = fleet.prefill.get(pg).network_gbps;
                    let mut built: Vec<(f64, Arc<PrefillCostTable>)> = Vec::new();
                    fleet
                        .decode
                        .iter()
                        .map(|dg| {
                            let network_gbps = prefill_gbps.min(dg.network_gbps);
                            if let Some((_, table)) =
                                built.iter().find(|(gbps, _)| *gbps == network_gbps)
                            {
                                return table.clone();
                            }
                            let table = Arc::new(match built.first() {
                                None => PrefillCostTable::build(
                                    model,
                                    &self.config.profile,
                                    network_gbps,
                                    self.requests.iter().map(|r| r.input_len),
                                ),
                                Some((_, base)) => {
                                    base.with_network(model, &self.config.profile, network_gbps)
                                }
                            });
                            built.push((network_gbps, table.clone()));
                            table
                        })
                        .collect()
                })
                .collect();
            (decode_tables, prefill_tables)
        })
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    fn profile(&self) -> &KvMethodProfile {
        &self.config.profile
    }

    /// Runs the simulation to completion and returns the aggregated result.
    pub fn run(&self) -> SimulationResult {
        self.run_with_mode(EngineMode::Slab)
    }

    /// Runs on an explicit engine representation ([`EngineMode::Boxed`] is the
    /// pre-slab engine, kept for benchmarking and equivalence testing; results
    /// are bit-identical across modes).
    pub fn run_with_mode(&self, mode: EngineMode) -> SimulationResult {
        self.run_impl(mode, CostMode::Table, false).0
    }

    /// Runs and returns the recorded [`Telemetry`] alongside the result —
    /// `None` unless the configuration enables [`crate::TelemetryConfig`].
    /// The result itself is bit-identical to [`Simulator::run`]: telemetry
    /// records the simulation, it never perturbs it.
    pub fn run_with_telemetry(&self) -> (SimulationResult, Option<Telemetry>) {
        self.run_with_telemetry_modes(EngineMode::Slab, CostMode::Table)
    }

    /// [`Simulator::run_with_telemetry`] on explicit engine/cost modes (used
    /// by the telemetry determinism tests).
    pub fn run_with_telemetry_modes(
        &self,
        mode: EngineMode,
        costs: CostMode,
    ) -> (SimulationResult, Option<Telemetry>) {
        let (result, _, _, telemetry) = self.run_impl(mode, costs, false);
        (result, telemetry)
    }

    /// Runs with an explicit cost-evaluation mode ([`CostMode::Reference`] is
    /// the pre-table summation path, kept for benchmarking and equivalence
    /// testing; results agree to ~1e-15 relative).
    pub fn run_with_costs(&self, costs: CostMode) -> SimulationResult {
        self.run_impl(EngineMode::Slab, costs, false).0
    }

    /// Runs with structured event logging enabled, returning the full engine
    /// event trace alongside the result (used by the trace-equivalence tests).
    pub fn run_traced(&self, mode: EngineMode) -> (SimulationResult, Vec<EventRecord>) {
        let (result, trace, _, _) = self.run_impl(mode, CostMode::Table, true);
        (result, trace)
    }

    /// Test hook: run with the configured policies forced through the boxed
    /// trait-object path, even for the LeastLoaded/FCFS/AdmitAll defaults
    /// that normally instantiate to `None`. Pins the `Some`-branch mechanics
    /// (load-view assembly + virtual `route`, per-tenant sub-queues + virtual
    /// `select_tenant`, per-arrival `admit`) bit-identical to the built-in
    /// fast path.
    #[cfg(test)]
    pub(crate) fn run_with_boxed_default_policies(&self) -> SimulationResult {
        self.run_boxed_impl().0
    }

    #[cfg(test)]
    #[allow(clippy::type_complexity)]
    fn run_boxed_impl(&self) -> (SimulationResult, Vec<EventRecord>, u64, Option<Telemetry>) {
        let prev = FORCE_BOXED_POLICIES.with(|f| f.replace(true));
        let out = self.run_impl(EngineMode::Slab, CostMode::Table, false);
        FORCE_BOXED_POLICIES.with(|f| f.set(prev));
        out
    }

    /// Runs and also reports the number of engine events processed (used by the
    /// bench harness to size its workloads honestly).
    pub fn run_counted(&self, mode: EngineMode) -> (SimulationResult, u64) {
        let (result, _, events, _) = self.run_impl(mode, CostMode::Table, false);
        (result, events)
    }

    #[allow(clippy::type_complexity)]
    fn run_impl(
        &self,
        mode: EngineMode,
        costs: CostMode,
        capture_log: bool,
    ) -> (SimulationResult, Vec<EventRecord>, u64, Option<Telemetry>) {
        let requests = self.requests.clone();
        let sim_costs = match costs {
            CostMode::Table => {
                let (decode, prefill) = self.tables();
                SimCosts {
                    mode: costs,
                    decode: Some(decode.clone()),
                    prefill: Some(prefill.clone()),
                }
            }
            CostMode::Reference => SimCosts {
                mode: costs,
                decode: None,
                prefill: None,
            },
        };
        let profile = *self.profile();
        let cluster_cfg = &self.config.cluster;
        let prefill_replicas = cluster_cfg.fleet.prefill.total_replicas();
        let decode_replicas = cluster_cfg.fleet.decode.total_replicas();

        assert!(
            requests
                .iter()
                .all(|r| r.tenant.index() < crate::policy::MAX_TENANTS),
            "trace tags a tenant beyond MAX_TENANTS ({})",
            crate::policy::MAX_TENANTS
        );

        // --- Assemble the engine and the component fleet. (The fault plan and
        // topology were validated at construction time.) ---
        let mut sim = Simulation::with_mode(self.config.trace.seed, mode);
        sim.set_log_enabled(capture_log);
        let driver = sim.create_context("driver");
        let frontend_ctx = sim.create_context("frontend");
        let fabric_ctx = sim.create_context("fabric");
        let prefill_ctxs: Vec<_> = (0..prefill_replicas)
            .map(|i| sim.create_context(format!("prefill-{i}")))
            .collect();
        let decode_ctxs: Vec<_> = (0..decode_replicas)
            .map(|i| sim.create_context(format!("decode-{i}")))
            .collect();
        // The sampler and controller contexts are created *after* every
        // regular component (sampler first), so runs without them assign
        // exactly the component ids they always did.
        let telemetry_settings = self.config.telemetry.settings();
        let sampler_ctx = telemetry_settings
            .as_ref()
            .map(|_| sim.create_context("telemetry-sampler"));
        let scaling_on = self.config.policy.scaling != ScalingPolicyKind::Off;
        let scaler_ctx = scaling_on.then(|| sim.create_context("scaling-controller"));

        let frontend_id = frontend_ctx.id();
        let prefill_ids: Vec<_> = prefill_ctxs.iter().map(|c| c.id()).collect();
        let decode_ids: Vec<_> = decode_ctxs.iter().map(|c| c.id()).collect();

        // Seed the queue: one arrival event per independent request or
        // session root, plus fault injection. Session children are gated on
        // their parent's terminal state — `release_children` injects them at
        // `max(arrival, parent completion)`. `parent.is_none()` is always
        // true for legacy traces, so this is the exact pre-session seeding
        // for them.
        for (i, r) in requests.iter().enumerate() {
            if r.parent.is_none() {
                driver.emit_at(RequestArrived { req: i }, frontend_id, r.arrival);
            }
        }
        // Expand the fault plan: for each fault, its fabric cut (link-cutting
        // domains only, delivered to the frontend) precedes the correlated
        // replica failures (ascending replica index), and recovery events
        // mirror that order. A legacy single-decode-replica plan expands to
        // exactly the two events the pre-plan simulator seeded.
        for (k, f) in self.config.faults.iter().enumerate() {
            // A degradation slows links without failing anything behind them:
            // it expands to the fabric events only.
            let (pre, dec) = if f.degrade.is_some() {
                (Vec::new(), Vec::new())
            } else {
                fault_targets(f.domain, cluster_cfg)
            };
            if f.domain.needs_link_graph() {
                driver.emit_at(FabricFault { fault: k }, frontend_id, f.at);
            }
            for &i in &pre {
                driver.emit_at(PrefillFailed { fault: k }, prefill_ids[i], f.at);
            }
            for &i in &dec {
                driver.emit_at(ReplicaFailed { fault: k }, decode_ids[i], f.at);
            }
            if let Some(recover) = f.recover_at {
                if f.domain.needs_link_graph() {
                    driver.emit_at(FabricRecovered { fault: k }, frontend_id, recover);
                }
                for &i in &pre {
                    driver.emit_at(PrefillRecovered { fault: k }, prefill_ids[i], recover);
                }
                for &i in &dec {
                    driver.emit_at(ReplicaRecovered { fault: k }, decode_ids[i], recover);
                }
            }
        }

        let num_requests = requests.len();
        let policy = self.config.policy;
        #[cfg(test)]
        let force_boxed = FORCE_BOXED_POLICIES.with(std::cell::Cell::get);
        #[cfg(not(test))]
        let force_boxed = false;
        let (dispatch, admission, scheduling) = if force_boxed {
            (
                Some(policy.dispatch.build()),
                Some(policy.admission.build(&policy.tenants)),
                Some(policy.scheduling.build()),
            )
        } else {
            (
                policy.dispatch.instantiate(),
                policy.admission.instantiate(&policy.tenants),
                policy.scheduling.instantiate(),
            )
        };
        let per_tenant_queues = scheduling.is_some();

        // Replicas flatten group-major: group 0's replicas first, carrying
        // their group's memory budget.
        let prefill_group_of = cluster_cfg.fleet.prefill.flatten_groups();
        let decode_group_of = cluster_cfg.fleet.decode.flatten_groups();
        let decode_budgets: Vec<f64> = (0..cluster_cfg.fleet.decode.len())
            .map(|g| cluster_cfg.decode_group_kv_budget_bytes(g))
            .collect();

        // Telemetry recording state: registered tracks/series for this cluster
        // shape. The span/instant stores are pre-sized from the number of
        // trace-sampled requests (~7 spans and ~2 instants per traced request
        // lifecycle) so the recording hot path never reallocates.
        let tel_state = telemetry_settings.map(|settings| {
            let tenants = requests
                .iter()
                .map(|r| r.tenant.index())
                .max()
                .map_or(1, |m| m + 1);
            let span_every = settings.resolved_span_every(requests.len());
            let mut ts = TelemetryState::new(
                prefill_replicas,
                decode_replicas,
                cluster_cfg.fleet.decode.len(),
                tenants,
                span_every,
            );
            let traced = requests.len() / span_every as usize + 1;
            ts.tel.reserve_recording(8 * traced + 64, 3 * traced + 64);
            ts
        });
        // Child index for session gating: left empty when the trace has no
        // sessions, so every release site is a single `is_empty` check on the
        // legacy path.
        let mut session_children: Vec<Vec<usize>> = Vec::new();
        if requests.iter().any(|r| r.parent.is_some()) {
            session_children = vec![Vec::new(); requests.len()];
            for (i, r) in requests.iter().enumerate() {
                if let Some(p) = r.parent {
                    session_children[p as usize].push(i);
                }
            }
        }
        // Prefix caches: one per decode replica, sized as a fraction of that
        // replica's KV budget. `CacheConfig::Off` allocates nothing.
        let cache = self.config.cache.settings().map(|settings| {
            let kv_capacities: Vec<f64> =
                decode_group_of.iter().map(|&g| decode_budgets[g]).collect();
            crate::cache::SessionCacheState::new(settings, &kv_capacities)
        });
        let state = ClusterState {
            config: self.config,
            prefill_models: self.prefill_models.clone(),
            decode_models: self.decode_models.clone(),
            costs: sim_costs,
            dispatch,
            admission,
            scheduling,
            states: vec![ReqState::default(); requests.len()],
            requests,
            prefill: prefill_group_of
                .iter()
                .map(|&g| PrefillReplicaState::new(g, per_tenant_queues))
                .collect(),
            decode: decode_group_of
                .iter()
                .map(|&g| DecodeReplicaState {
                    group: g,
                    kv_capacity: decode_budgets[g],
                    kv_used: 0.0,
                    peak_kv: 0.0,
                    active: 0,
                    resident_tokens: 0,
                    failed: false,
                    reservations: 0,
                    scaled_out: false,
                    draining: false,
                })
                .collect(),
            waiting_for_memory: VecDeque::new(),
            waiting_for_prefill: VecDeque::new(),
            fabric: match cluster_cfg.topology.link_graph() {
                // The flat fabric is constructed exactly as before the
                // topology API existed (bit- and cost-identical default).
                None => NetworkFabric::new(fabric_ctx, prefill_replicas),
                Some(spec) => {
                    // Per-replica NIC capacities, flattened group-major like
                    // the replicas themselves.
                    let nic_gbps = |groups: &crate::fleet::GroupSet| -> Vec<f64> {
                        groups
                            .iter()
                            .flat_map(|g| std::iter::repeat_n(g.network_gbps, g.replicas))
                            .collect()
                    };
                    NetworkFabric::with_link_graph(
                        fabric_ctx,
                        nic_gbps(&cluster_cfg.fleet.prefill),
                        nic_gbps(&cluster_cfg.fleet.decode),
                        spec.prefill_per_tor,
                        spec.decode_per_tor,
                        spec.tor_uplink_gbps,
                        spec.spine_gbps,
                        spec.spines,
                    )
                }
            },
            completed: 0,
            rejected: 0,
            rejected_per_tenant: [0; crate::policy::MAX_TENANTS],
            swapped: 0,
            requeued: 0,
            injected_failures: 0,
            retries: 0,
            gave_up: 0,
            fault_tallies: self
                .config
                .faults
                .iter()
                .map(|f| {
                    let (pre, dec) = if f.degrade.is_some() {
                        (Vec::new(), Vec::new())
                    } else {
                        fault_targets(f.domain, cluster_cfg)
                    };
                    FaultTally {
                        replicas_affected: pre.len() + dec.len(),
                        requests_aborted: 0,
                        recovery_drain: 0.0,
                    }
                })
                .collect(),
            pending_drain: Vec::new(),
            frontend_id: Some(frontend_id),
            aborted_decode_by_group: vec![0.0; cluster_cfg.fleet.decode.len()],
            prefill_ctxs,
            decode_ctxs,
            tel: tel_state,
            // Every decode replica starts live: the configured count is the
            // fleet's *capacity*, and a scaling-off run bills all of it for
            // the whole makespan (the static fleet).
            decode_up_since: vec![Some(0.0); decode_replicas],
            decode_uptime: vec![0.0; decode_replicas],
            scale_ups: 0,
            scale_downs: 0,
            cache,
            session_children,
        };
        let cluster = Rc::new(RefCell::new(state));
        if telemetry_settings.is_some() || scaling_on {
            // The blackboard doubles as the engine probe: auxiliary components
            // (the sampler and the scaling controller) observe the simulation
            // through `SimulationContext::probe` instead of being wired in.
            sim.install_probe(cluster.clone());
        }

        sim.add_handler(
            "frontend",
            Rc::new(RefCell::new(Frontend {
                cluster: cluster.clone(),
            })),
        );
        for i in 0..prefill_replicas {
            sim.add_handler(
                &format!("prefill-{i}"),
                Rc::new(RefCell::new(PrefillReplica {
                    index: i,
                    cluster: cluster.clone(),
                })),
            );
        }
        for i in 0..decode_replicas {
            sim.add_handler(
                &format!("decode-{i}"),
                Rc::new(RefCell::new(DecodeReplica {
                    index: i,
                    cluster: cluster.clone(),
                })),
            );
        }
        let sampler_ticks = Rc::new(std::cell::Cell::new(0u64));
        if let (Some(ctx), Some(settings)) = (sampler_ctx, telemetry_settings) {
            // Seed the first tick at t=0 so every series starts at the origin;
            // the sampler re-arms itself each tick.
            ctx.emit_at(SampleTick, ctx.id(), 0.0);
            sim.add_handler(
                "telemetry-sampler",
                Rc::new(RefCell::new(TelemetrySampler {
                    ctx,
                    interval: settings.sample_interval_secs.max(f64::MIN_POSITIVE),
                    ticks: sampler_ticks.clone(),
                })),
            );
        }
        let scale_ticks = Rc::new(std::cell::Cell::new(0u64));
        if let Some(ctx) = scaler_ctx {
            // The first control decision fires at t=0 (observing the fleet's
            // configured full capacity); the controller re-arms itself.
            ctx.emit_at(ScaleTick, ctx.id(), 0.0);
            sim.add_handler(
                "scaling-controller",
                Rc::new(RefCell::new(ScalingController {
                    ctx,
                    policy: policy
                        .scaling
                        .instantiate()
                        .expect("scaling_on checked above"),
                    ordered: vec![false; decode_replicas],
                    arrivals_seen: 0,
                    ticks: scale_ticks.clone(),
                })),
            );
        }

        // --- Drive the engine until every request is resolved — completed or
        // rejected by admission — (or the queue runs dry, e.g. under a
        // permanent failure of the whole decode fleet). ---
        let mut makespan = 0.0f64;
        // Perpetual tickers: auxiliary components that always keep one
        // self-addressed event pending (the telemetry sampler's SampleTick,
        // the scaling controller's ScaleTick).
        let tickers = usize::from(telemetry_settings.is_some()) + usize::from(scaling_on);
        if tickers == 0 {
            // The exact pre-telemetry loop: nothing on this path even looks at
            // the ticker machinery.
            while {
                let cs = cluster.borrow();
                cs.completed + cs.rejected < num_requests
            } {
                if !sim.step() {
                    break;
                }
                makespan = makespan.max(sim.time());
            }
        } else {
            // Each ticker keeps exactly one tick pending at all times, so the
            // queue never runs dry on its own: when a delivered control event
            // leaves nothing but the tickers' own re-arms behind
            // (`queue_len() <= tickers`) the simulation proper is over — the
            // ticker-free loop would have seen `step()` return false. That
            // check only needs to run on control-delivering steps (between
            // control events the queue always holds the pending ticks plus at
            // least one live event), which keeps the per-step cost of this
            // loop at a few counter loads over the ticker-free loop. Steps
            // that deliver control-plane traffic (sampler ticks, scale ticks,
            // provisioning landings) are excluded from the makespan so it
            // stays a maximum over request-visible events only — bit-identical
            // to the ticker-free run when nothing scales, even when the run
            // ends with the queue dry (e.g. a permanent whole-fleet failure):
            // events are delivered in time order, so the surviving maximum is
            // over exactly the same event set.
            while {
                let cs = cluster.borrow();
                cs.completed + cs.rejected < num_requests
            } {
                let ticks_before = sampler_ticks.get() + scale_ticks.get();
                if !sim.step() {
                    break;
                }
                if sampler_ticks.get() + scale_ticks.get() == ticks_before {
                    makespan = makespan.max(sim.time());
                } else if sim.queue_len() <= tickers {
                    break;
                }
            }
        }

        // --- Assemble records. ---
        let cs = cluster.borrow();
        debug_assert_eq!(
            cs.fabric.active_flows(),
            0,
            "every link-graph flow must have landed or been aborted by run end"
        );
        let params_bytes = cluster_cfg.model.spec().param_bytes_fp16();
        let peak_kv = cs.decode.iter().map(|d| d.peak_kv).fold(0.0, f64::max);

        let mut records: Vec<RequestRecord> = cs
            .requests
            .iter()
            .enumerate()
            .filter(|(i, _)| cs.states[*i].done)
            .map(|(i, r)| {
                let s = &cs.states[i];
                RequestRecord {
                    request: *r,
                    prefill_replica: s.prefill_replica,
                    decode_replica: s.decode_replica,
                    finish_time: s.finish_time,
                    breakdown: JctBreakdown {
                        prefill: s.prefill_time,
                        quantization: s.quant_time,
                        // Waiting for decode memory keeps the KV transfer pending on
                        // the prefill side (Fig. 1(d), case ii), so it is charged to
                        // communication, as in the paper's measurements.
                        communication: s.comm_time + s.memory_wait,
                        dequant_or_approx: s.dequant_time,
                        // Decode attempts aborted by a replica failure are wasted
                        // decode-side time; charge them to the decode stage so the
                        // breakdown still sums to the JCT.
                        decode: s.decode_time + s.aborted_decode,
                        queueing: s.prefill_wait,
                    },
                }
            })
            .collect();
        records.sort_by(|a, b| a.finish_time.partial_cmp(&b.finish_time).unwrap());

        // --- Per-group usage summaries. ---
        let mut prefill_groups: Vec<GroupStats> = cluster_cfg
            .fleet
            .prefill
            .iter()
            .enumerate()
            .map(|(g, spec)| GroupStats {
                group: g,
                gpu: spec.gpu,
                replicas: spec.replicas,
                completed: 0,
                busy_secs: 0.0,
                utilization: 0.0,
                mean_jct: 0.0,
                peak_kv_bytes: 0.0,
                peak_memory_fraction: 0.0,
                gpu_dollars: 0.0,
            })
            .collect();
        let mut decode_groups: Vec<GroupStats> = cluster_cfg
            .fleet
            .decode
            .iter()
            .enumerate()
            .map(|(g, spec)| {
                let mem = cluster_cfg.decode_group_mem_bytes(g);
                let act_bytes = cluster_cfg.activation_reserve * mem;
                let group_peak = cs
                    .decode
                    .iter()
                    .filter(|d| d.group == g)
                    .map(|d| d.peak_kv)
                    .fold(0.0, f64::max);
                GroupStats {
                    group: g,
                    gpu: spec.gpu,
                    replicas: spec.replicas,
                    completed: 0,
                    busy_secs: 0.0,
                    utilization: 0.0,
                    mean_jct: 0.0,
                    peak_kv_bytes: group_peak,
                    peak_memory_fraction: ((params_bytes + act_bytes + group_peak) / mem).min(1.0),
                    gpu_dollars: 0.0,
                }
            })
            .collect();
        // Accumulate from the per-request states rather than the records: the
        // record's decode stage folds failure-aborted attempts into the
        // completing replica's column (it is a *request* decomposition),
        // while group utilization must charge wasted attempts to the group
        // that actually spent them (`aborted_decode_by_group`, below).
        for (i, s) in cs.states.iter().enumerate().filter(|(_, s)| s.done) {
            let pg = &mut prefill_groups[cs.prefill[s.prefill_replica].group];
            pg.completed += 1;
            pg.busy_secs += s.prefill_time + s.quant_time;
            let jct = s.finish_time - cs.requests[i].arrival;
            pg.mean_jct += jct;
            let dg = &mut decode_groups[cs.decode[s.decode_replica].group];
            dg.completed += 1;
            dg.busy_secs += s.dequant_time + s.decode_time;
            dg.mean_jct += jct;
        }
        for (g, aborted) in cs.aborted_decode_by_group.iter().enumerate() {
            decode_groups[g].busy_secs += aborted;
        }
        for g in prefill_groups.iter_mut().chain(decode_groups.iter_mut()) {
            if g.completed > 0 {
                g.mean_jct /= g.completed as f64;
            }
            if makespan > 0.0 {
                g.utilization = g.busy_secs / (g.replicas as f64 * makespan);
            }
        }
        // The headline memory figure is the worst group's (for single-group
        // fleets this is exactly the pre-fleet scalar).
        let peak_fraction = decode_groups
            .iter()
            .map(|g| g.peak_memory_fraction)
            .fold(0.0, f64::max);

        // --- Robustness sensors. All zero/empty without fault injection. ---
        // Requests neither completed nor rejected by admission when the run
        // ended: permanently aborted (exhausted retries + re-admissions) or
        // stranded by a permanent whole-fleet failure.
        let aborted_requests = cs.states.iter().filter(|s| !s.done && !s.rejected).count();
        // retry_histogram[k] = requests that made exactly k transfer attempts
        // (k >= 1; empty when no retries happened, so fault-free results stay
        // visibly clean).
        let retry_histogram = if cs.retries == 0 {
            Vec::new()
        } else {
            let max_attempts = cs
                .states
                .iter()
                .map(|s| s.transfer_attempts as usize)
                .max()
                .unwrap_or(0);
            let mut hist = vec![0usize; max_attempts + 1];
            for s in cs.states.iter().filter(|s| s.transfer_attempts > 0) {
                hist[s.transfer_attempts as usize] += 1;
            }
            hist
        };
        let faults: Vec<FaultRecord> = self
            .config
            .faults
            .iter()
            .zip(&cs.fault_tallies)
            .map(|(f, tally)| FaultRecord {
                domain: f.domain,
                at: f.at,
                recover_at: f.recover_at,
                replicas_affected: tally.replicas_affected,
                requests_aborted: tally.requests_aborted,
                downtime_secs: (f.recover_at.unwrap_or(makespan.max(f.at)) - f.at).max(0.0),
                recovery_drain_secs: tally.recovery_drain,
            })
            .collect();
        // Goodput while degraded: completions per second inside the union of
        // the fault windows (clipped to the run).
        let mut windows: Vec<(f64, f64)> = faults
            .iter()
            .map(|f| {
                (
                    f.at.min(makespan),
                    f.recover_at.unwrap_or(makespan).min(makespan),
                )
            })
            .filter(|(a, b)| b > a)
            .collect();
        windows.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for w in windows {
            match merged.last_mut() {
                Some(last) if w.0 <= last.1 => last.1 = last.1.max(w.1),
                _ => merged.push(w),
            }
        }
        let degraded_secs: f64 = merged.iter().map(|(a, b)| b - a).sum();
        let degraded_completions = records
            .iter()
            .filter(|r| {
                merged
                    .iter()
                    .any(|&(a, b)| r.finish_time >= a && r.finish_time <= b)
            })
            .count();
        let degraded_goodput = if degraded_secs > 0.0 {
            degraded_completions as f64 / degraded_secs
        } else {
            0.0
        };
        // Link-degradation sensors: link-seconds spent below nominal capacity
        // and the capacity removed from the fabric (Gbps-seconds), windows
        // clipped to the run. ECMP reroutes are counted by the fabric itself.
        let mut degraded_link_secs = 0.0;
        let mut throughput_loss_gbps_s = 0.0;
        for f in self.config.faults.iter() {
            let Some(factor) = f.degrade else { continue };
            let start = f.at.min(makespan);
            let end = f.recover_at.unwrap_or(makespan).min(makespan);
            let mut window = (end - start).max(0.0);
            // A binary outage of the same domain cuts the very links the
            // degradation slows: dead link time is not *degraded* time, so
            // each overlapping outage window's intersection is subtracted
            // (outage windows on one domain are validated disjoint, so no
            // intersection is subtracted twice).
            for o in self.config.faults.iter() {
                if o.degrade.is_some() || o.domain != f.domain {
                    continue;
                }
                let o_start = o.at.min(makespan);
                let o_end = o.recover_at.unwrap_or(makespan).min(makespan);
                window -= (end.min(o_end) - start.max(o_start)).max(0.0);
            }
            let links = cs.fabric.links_for_domain(f.domain);
            degraded_link_secs += links.len() as f64 * window;
            throughput_loss_gbps_s += cs.fabric.nominal_capacity(&links) * (1.0 - factor) * window;
        }
        let rerouted_flows = cs.fabric.rerouted_flows();

        // --- $/GPU-hour cost sensors. Prefill groups are static this PR and
        // bill every replica for the whole makespan. Decode replicas bill
        // their racked uptime: closed scale-down intervals accumulated in
        // `decode_uptime`, plus the still-open interval of every replica that
        // is live (or failed-but-racked) at run end. Without a scaling policy
        // every interval is `[0, makespan]`, so the cost collapses to
        // `replicas * makespan * rate` — the static fleet's bill. ---
        let mut gpu_dollars = 0.0;
        for (g, spec) in cluster_cfg.fleet.prefill.iter().enumerate() {
            let dollars = spec.replicas as f64 * makespan * spec.replica_dollars_per_s();
            prefill_groups[g].gpu_dollars = dollars;
            gpu_dollars += dollars;
        }
        let mut base = 0usize;
        for (g, spec) in cluster_cfg.fleet.decode.iter().enumerate() {
            let mut uptime = 0.0;
            for r in base..base + spec.replicas {
                uptime += cs.decode_uptime[r];
                if let Some(opened) = cs.decode_up_since[r] {
                    uptime += (makespan - opened).max(0.0);
                }
            }
            base += spec.replicas;
            let dollars = uptime * spec.replica_dollars_per_s();
            decode_groups[g].gpu_dollars = dollars;
            gpu_dollars += dollars;
        }
        // Generated (output) tokens across completed requests: the serving
        // industry's unit cost denominator.
        let generated_tokens: usize = records.iter().map(|r| r.request.output_len).sum();
        let dollars_per_1k_tokens = if generated_tokens > 0 {
            gpu_dollars / (generated_tokens as f64 / 1000.0)
        } else {
            0.0
        };

        // --- Prefix-cache sensors. All zero/empty when the cache is off. ---
        let (prefix_hits, prefix_misses, prefix_evictions) = match &cs.cache {
            Some(c) => (c.hits, c.misses, c.evictions),
            None => (0, 0, 0),
        };
        let (prefix_hit_rate, prefix_bytes_saved, prefill_seconds_saved) = match &cs.cache {
            Some(c) => (c.hit_rate(), c.bytes_saved, c.prefill_secs_saved),
            None => (0.0, 0.0, 0.0),
        };
        // Per decode group: the worst replica's peak cache occupancy as a
        // fraction of that replica's full KV budget.
        let prefix_cache_peak_fraction: Vec<f64> = match &cs.cache {
            None => Vec::new(),
            Some(c) => (0..cluster_cfg.fleet.decode.len())
                .map(|g| {
                    cs.decode
                        .iter()
                        .enumerate()
                        .filter(|(_, d)| d.group == g)
                        .map(|(i, d)| {
                            c.caches[i].peak_bytes() / d.kv_capacity.max(f64::MIN_POSITIVE)
                        })
                        .fold(0.0, f64::max)
                })
                .collect(),
        };

        let result = SimulationResult {
            method: profile.name.to_string(),
            records,
            peak_decode_memory_fraction: peak_fraction,
            peak_decode_kv_bytes: peak_kv,
            swapped_requests: cs.swapped,
            rejected_requests: cs.rejected,
            rejected_by_tenant: {
                let counts = &cs.rejected_per_tenant;
                let live = counts.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
                counts[..live].to_vec()
            },
            requeued_requests: cs.requeued,
            injected_failures: cs.injected_failures,
            transfer_retries: cs.retries,
            retry_histogram,
            aborted_requests,
            abandoned_requests: cs.gave_up,
            faults,
            degraded_secs,
            degraded_goodput,
            degraded_link_secs,
            throughput_loss_gbps_s,
            rerouted_flows,
            scale_ups: cs.scale_ups,
            scale_downs: cs.scale_downs,
            gpu_dollars,
            dollars_per_1k_tokens,
            prefix_hits,
            prefix_misses,
            prefix_evictions,
            prefix_hit_rate,
            prefix_bytes_saved,
            prefill_seconds_saved,
            prefix_cache_peak_fraction,
            prefill_groups,
            decode_groups,
            makespan,
        };
        drop(cs);
        let events = sim.processed_count();
        let telemetry = cluster.borrow_mut().tel.take().map(|ts| ts.tel);
        (result, sim.take_log(), events, telemetry)
    }
}

/// The replica indices (prefill side, decode side) a fault domain takes down.
///
/// Replica and NIC domains fail one replica (a dead NIC isolates its replica:
/// it fails and its queue re-routes, on top of the link cut). ToR domains
/// atomically fail every replica behind the switch (group-major chunks of
/// `per_tor`, the last possibly partial). A spine fault cuts only links: no
/// replica fails, but no transfer can cross the fabric until recovery.
fn fault_targets(domain: FaultDomain, cluster: &ClusterConfig) -> (Vec<usize>, Vec<usize>) {
    let tor_chunk = |t: usize, per_tor: usize, n: usize| -> Vec<usize> {
        (t * per_tor..((t + 1) * per_tor).min(n)).collect()
    };
    match domain {
        FaultDomain::DecodeReplica(i) | FaultDomain::DecodeNic(i) => (Vec::new(), vec![i]),
        FaultDomain::PrefillReplica(i) | FaultDomain::PrefillNic(i) => (vec![i], Vec::new()),
        FaultDomain::PrefillTor(t) => {
            let spec = cluster.topology.link_graph().expect("validated");
            (
                tor_chunk(t, spec.prefill_per_tor, cluster.prefill_replicas()),
                Vec::new(),
            )
        }
        FaultDomain::DecodeTor(t) => {
            let spec = cluster.topology.link_graph().expect("validated");
            (
                Vec::new(),
                tor_chunk(t, spec.decode_per_tor, cluster.decode_replicas()),
            )
        }
        FaultDomain::Spine(_) => (Vec::new(), Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::config::{ClusterConfig, FailureSpec};
    use crate::fleet::{GroupSet, ReplicaGroup};
    use crate::policy::{DispatchPolicyKind, PolicyConfig};
    use crate::telemetry::TelemetryConfig;
    use crate::topology::FaultPlan;
    use hack_model::gpu::GpuKind;
    use hack_model::spec::ModelKind;
    use hack_workload::dataset::Dataset;
    use hack_workload::trace::TraceConfig;

    fn sim_config(
        profile: KvMethodProfile,
        dataset: Dataset,
        rps: f64,
        n: usize,
    ) -> SimulationConfig {
        let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset,
                rps,
                num_requests: n,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 7,
            },
            profile,
            policy: PolicyConfig::default(),
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        }
    }

    fn run(profile: KvMethodProfile, dataset: Dataset, rps: f64, n: usize) -> SimulationResult {
        Simulator::new(sim_config(profile, dataset, rps, n)).run()
    }

    #[test]
    fn all_requests_complete_and_breakdowns_are_consistent() {
        let result = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 40);
        assert_eq!(result.records.len(), 40);
        for r in &result.records {
            let jct = r.jct();
            assert!(jct > 0.0);
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown total {total} vs jct {jct}"
            );
        }
        assert!(result.makespan > 0.0);
        assert_eq!(result.requeued_requests, 0);
        assert_eq!(result.injected_failures, 0);
    }

    #[test]
    fn hack_reduces_average_jct_vs_baseline_and_quant_baselines() {
        let n = 60;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        assert!(
            hack.average_jct() < kvq.average_jct(),
            "hack {} vs kvquant {}",
            hack.average_jct(),
            kvq.average_jct()
        );
        assert!(
            hack.average_jct() < base.average_jct(),
            "hack {} vs baseline {}",
            hack.average_jct(),
            base.average_jct()
        );
        assert!(kvq.average_jct() < base.average_jct());
    }

    #[test]
    fn stage_ratio_structure_matches_method_semantics() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);

        let rb = base.average_ratios();
        let rk = kvq.average_ratios();
        let rh = hack.average_ratios();

        // Baseline: no quantization, no dequantization; communication is significant on
        // a 40 Gbps NIC with long prompts.
        assert_eq!(rb.quantization, 0.0);
        assert_eq!(rb.dequant_or_approx, 0.0);
        assert!(
            rb.communication > 0.03,
            "baseline comm ratio {}",
            rb.communication
        );

        // KV quantization slashes communication but pays dequantization every decode
        // iteration.
        assert!(rk.communication < rb.communication);
        assert!(
            rk.dequant_or_approx > 0.08,
            "kvquant dequant ratio {}",
            rk.dequant_or_approx
        );

        // HACK: tiny approximation overhead instead of dequantization.
        assert!(
            rh.dequant_or_approx < 0.05,
            "hack approx ratio {}",
            rh.dequant_or_approx
        );
        assert!(rh.dequant_or_approx < rk.dequant_or_approx / 3.0);
        assert!(rh.communication < rb.communication);
    }

    #[test]
    fn quantized_methods_reduce_peak_decode_memory() {
        let n = 50;
        let rps = 0.08;
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, rps, n);
        let hack = run(KvMethodProfile::hack(), Dataset::Cocktail, rps, n);
        let kvq = run(KvMethodProfile::kvquant(), Dataset::Cocktail, rps, n);
        assert!(
            hack.peak_decode_memory_fraction < base.peak_decode_memory_fraction,
            "hack {} vs baseline {}",
            hack.peak_decode_memory_fraction,
            base.peak_decode_memory_fraction
        );
        // HACK stores sums + FP16 tail, so it sits at or slightly above KVQuant.
        assert!(hack.peak_decode_memory_fraction >= kvq.peak_decode_memory_fraction - 1e-9);
        assert!(hack.peak_decode_memory_fraction - kvq.peak_decode_memory_fraction < 0.05);
    }

    #[test]
    fn higher_load_increases_jct() {
        let low = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 40);
        let high = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.45, 40);
        assert!(
            high.average_jct() > low.average_jct(),
            "high-load JCT {} should exceed low-load JCT {}",
            high.average_jct(),
            low.average_jct()
        );
    }

    #[test]
    fn pipelining_hides_communication_at_low_load() {
        let mut cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.02, 30);
        let without = Simulator::new(cfg).run();
        cfg.cluster.pipelining = true;
        let with = Simulator::new(cfg).run();
        assert!(
            with.average_ratios().communication < without.average_ratios().communication,
            "pipelined comm {} vs plain {}",
            with.average_ratios().communication,
            without.average_ratios().communication
        );
        assert!(with.average_ratios().communication < 0.05);
    }

    #[test]
    fn short_datasets_have_smaller_comm_ratios_than_long_ones() {
        let imdb = run(KvMethodProfile::baseline(), Dataset::Imdb, 0.5, 60);
        let cocktail = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 60);
        assert!(imdb.average_ratios().communication < cocktail.average_ratios().communication);
        assert!(imdb.average_jct() < cocktail.average_jct());
    }

    #[test]
    fn v100_low_bandwidth_inflates_comm_ratio() {
        let mk = |gpu: GpuKind| {
            let cluster = ClusterConfig::paper_default(ModelKind::Llama31_70B, gpu);
            let cfg = SimulationConfig {
                cluster,
                trace: TraceConfig {
                    dataset: Dataset::Cocktail,
                    rps: 0.05,
                    num_requests: 40,
                    max_context: ModelKind::Llama31_70B.spec().max_context,
                    seed: 11,
                },
                profile: KvMethodProfile::baseline(),
                policy: PolicyConfig::default(),
                faults: FaultPlan::none(),
                telemetry: TelemetryConfig::Off,
                cache: CacheConfig::Off,
            };
            Simulator::new(cfg).run().average_ratios().communication
        };
        let v100 = mk(GpuKind::V100);
        let a100 = mk(GpuKind::A100);
        assert!(v100 > a100, "V100 comm ratio {v100} vs A100 {a100}");
        assert!(a100 < 0.1, "A100 (400 Gbps) comm ratio {a100}");
    }

    #[test]
    fn slab_engine_reproduces_boxed_engine_trace_and_result() {
        // The slab/inline-payload engine must reproduce the pre-change boxed
        // engine on a seeded cluster run: identical event trace (every emission
        // and delivery, in order) and identical SimulationResult (PartialEq on
        // the result compares every f64 exactly).
        for profile in [KvMethodProfile::baseline(), KvMethodProfile::hack()] {
            let cfg = sim_config(profile, Dataset::Cocktail, 0.08, 40);
            let (slab_result, slab_trace) = Simulator::new(cfg).run_traced(EngineMode::Slab);
            let (boxed_result, boxed_trace) = Simulator::new(cfg).run_traced(EngineMode::Boxed);
            assert!(!slab_trace.is_empty());
            assert_eq!(slab_trace, boxed_trace, "{}: event traces", profile.name);
            assert_eq!(slab_result, boxed_result, "{}: results", profile.name);
        }
    }

    #[test]
    fn cost_tables_reproduce_reference_summation_end_to_end() {
        // The prefix-sum/memoized cost layer changes only f64 summation order,
        // so a seeded run must agree with the reference per-token loops on
        // every record to within 1e-9 relative (and exactly on the discrete
        // outcomes: completion order, replica placement, swap counts).
        for profile in [
            KvMethodProfile::baseline(),
            KvMethodProfile::cachegen(),
            KvMethodProfile::hack(),
        ] {
            let sim = Simulator::new(sim_config(profile, Dataset::Cocktail, 0.08, 50));
            let table = sim.run_with_costs(CostMode::Table);
            let reference = sim.run_with_costs(CostMode::Reference);
            assert_eq!(table.records.len(), reference.records.len());
            assert_eq!(table.swapped_requests, reference.swapped_requests);
            assert_eq!(table.requeued_requests, reference.requeued_requests);
            let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
            for (t, r) in table.records.iter().zip(&reference.records) {
                assert_eq!(
                    t.request.id, r.request.id,
                    "{}: completion order",
                    profile.name
                );
                assert_eq!(t.prefill_replica, r.prefill_replica);
                assert_eq!(t.decode_replica, r.decode_replica);
                assert!(
                    close(t.jct(), r.jct()),
                    "{}: request {} jct {} vs {}",
                    profile.name,
                    t.request.id,
                    t.jct(),
                    r.jct()
                );
            }
            assert!(close(table.average_jct(), reference.average_jct()));
            assert!(close(table.makespan, reference.makespan));
        }
    }

    #[test]
    fn slab_engine_matches_boxed_under_fault_injection() {
        let spec = FailureSpec::transient(0, 50.0, 400.0);
        let cfg = failure_config(30, spec);
        let (slab_result, slab_trace) = Simulator::new(cfg).run_traced(EngineMode::Slab);
        let (boxed_result, boxed_trace) = Simulator::new(cfg).run_traced(EngineMode::Boxed);
        assert_eq!(slab_trace, boxed_trace);
        assert_eq!(slab_result, boxed_result);
    }

    #[test]
    fn deterministic_given_identical_configuration() {
        let a = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        let b = run(KvMethodProfile::hack(), Dataset::Arxiv, 0.1, 30);
        assert_eq!(a.records.len(), b.records.len());
        assert!((a.average_jct() - b.average_jct()).abs() < 1e-12);
        assert_eq!(a.swapped_requests, b.swapped_requests);
    }

    #[test]
    fn overload_triggers_memory_swapping_for_baseline() {
        // Drive the baseline hard with long prompts on a single decode replica whose
        // KV budget has been squeezed (a large activation reserve), so memory runs out;
        // the swap path must engage and still complete all requests.
        let mut cluster = ClusterConfig::scalability(6);
        cluster.cost_params.decode_batch = 8.0;
        cluster.activation_reserve = 0.55;
        let cfg = SimulationConfig {
            cluster,
            trace: TraceConfig {
                dataset: Dataset::Cocktail,
                rps: 0.5,
                num_requests: 80,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 13,
            },
            profile: KvMethodProfile::baseline(),
            policy: PolicyConfig::default(),
            faults: FaultPlan::none(),
            telemetry: TelemetryConfig::Off,
            cache: CacheConfig::Off,
        };
        let result = Simulator::new(cfg).run();
        assert_eq!(result.records.len(), 80);
        assert!(
            result.swapped_requests > 0,
            "expected memory pressure to trigger CPU swap"
        );
        assert!(result.peak_decode_memory_fraction > 0.6);
    }

    // --- Heterogeneous fleets: the scenarios the flat config could not express. ---

    /// A mixed A10G + L4 prefill fleet over the paper's decode side.
    fn mixed_config(profile: KvMethodProfile, n: usize) -> SimulationConfig {
        let mut cfg = sim_config(profile, Dataset::Cocktail, 0.08, n);
        let a10g = ReplicaGroup {
            replicas: 3,
            ..ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::A10G, 6)
        };
        let l4 = ReplicaGroup {
            replicas: 2,
            ..ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::L4, 4)
        };
        cfg.cluster.fleet.prefill = GroupSet::new(&[a10g, l4]);
        cfg
    }

    #[test]
    fn mixed_fleet_serves_from_both_groups_and_reports_group_stats() {
        let result = Simulator::new(mixed_config(KvMethodProfile::baseline(), 40)).run();
        assert_eq!(result.records.len(), 40);
        assert_eq!(result.prefill_groups.len(), 2);
        assert_eq!(result.decode_groups.len(), 1);
        let total: usize = result.prefill_groups.iter().map(|g| g.completed).sum();
        assert_eq!(total, 40, "every request is attributed to one group");
        for g in &result.prefill_groups {
            assert!(g.completed > 0, "group {} starved", g.group);
            assert!(g.utilization > 0.0 && g.utilization <= 1.0 + 1e-9);
            assert!(g.mean_jct > 0.0);
        }
        assert_eq!(result.prefill_groups[0].gpu, GpuKind::A10G);
        assert_eq!(result.prefill_groups[1].gpu, GpuKind::L4);
        // The decode group's memory figures reproduce the headline scalars.
        let d = &result.decode_groups[0];
        assert_eq!(d.peak_kv_bytes, result.peak_decode_kv_bytes);
        assert_eq!(d.peak_memory_fraction, result.peak_decode_memory_fraction);
    }

    #[test]
    fn mixed_fleet_runs_are_deterministic_across_engines_and_cost_modes() {
        let cfg = mixed_config(KvMethodProfile::hack(), 35);
        let sim = Simulator::new(cfg);
        let (slab, slab_trace) = sim.run_traced(EngineMode::Slab);
        let (boxed, boxed_trace) = sim.run_traced(EngineMode::Boxed);
        assert_eq!(slab_trace, boxed_trace, "mixed fleet: engine traces");
        assert_eq!(slab, boxed, "mixed fleet: engine results");
        let reference = sim.run_with_costs(CostMode::Reference);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert_eq!(slab.records.len(), reference.records.len());
        for (t, r) in slab.records.iter().zip(&reference.records) {
            assert_eq!(t.request.id, r.request.id);
            assert_eq!(t.prefill_replica, r.prefill_replica);
            assert!(close(t.jct(), r.jct()));
        }
    }

    #[test]
    fn per_group_cost_params_override_the_fleet_default() {
        // Give the L4 prefill group its own, much worse elementwise
        // efficiency: quantization must get slower only for requests
        // prefilled by the overridden group.
        let base = mixed_config(KvMethodProfile::hack(), 30);
        let mut slow = base;
        let mut params = slow.cluster.cost_params;
        params.elementwise_efficiency *= 0.25;
        slow.cluster.fleet.prefill.get_mut(1).cost_params = Some(params);
        let base_run = Simulator::new(base).run();
        let slow_run = Simulator::new(slow).run();
        let quant_of = |result: &SimulationResult, group: usize| {
            result
                .records
                .iter()
                .filter(|r| {
                    // Group-major: replicas 0..3 are A10G, 3..5 are L4.
                    let g = usize::from(r.prefill_replica >= 3);
                    g == group
                })
                .map(|r| r.breakdown.quantization)
                .sum::<f64>()
        };
        // The overridden group got slower; the other group's service times are
        // untouched for any request served by the same replica in both runs.
        assert!(quant_of(&slow_run, 1) > quant_of(&base_run, 1) * 2.0);
        assert!(base_run.prefill_groups[1].busy_secs < slow_run.prefill_groups[1].busy_secs);
    }

    #[test]
    fn dispatch_policies_route_and_complete_on_mixed_fleets() {
        for dispatch in DispatchPolicyKind::all() {
            let mut cfg = mixed_config(KvMethodProfile::baseline(), 40);
            cfg.policy.dispatch = dispatch;
            let a = Simulator::new(cfg).run();
            let b = Simulator::new(cfg).run();
            assert_eq!(a.records.len(), 40, "{}", dispatch.name());
            assert_eq!(a, b, "{}: dispatch must be deterministic", dispatch.name());
        }
    }

    // --- Fault injection: scenarios the monolithic simulator could not express. ---

    /// A failure window covering the middle of the run on the default config.
    fn failure_config(n: usize, failure: FailureSpec) -> SimulationConfig {
        SimulationConfig {
            faults: failure.into(),
            ..sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, n)
        }
    }

    /// A failure spec guaranteed to abort at least one in-flight decode: from a
    /// healthy run, pick a completed request and fail its decode replica just
    /// before it finishes (decoding is the last stage, so it is in flight then).
    fn mid_decode_failure(n: usize) -> FailureSpec {
        let healthy = Simulator::new(sim_config(
            KvMethodProfile::baseline(),
            Dataset::Cocktail,
            0.08,
            n,
        ))
        .run();
        let victim = healthy
            .records
            .iter()
            .find(|r| r.breakdown.decode > 1.0)
            .expect("some request decodes for more than a second");
        FailureSpec::transient(
            victim.decode_replica,
            victim.finish_time - 0.5,
            healthy.makespan + 100.0,
        )
    }

    #[test]
    fn transient_decode_failure_requeues_and_still_completes_everything() {
        let result = Simulator::new(failure_config(40, mid_decode_failure(40))).run();
        assert_eq!(
            result.records.len(),
            40,
            "all requests must complete despite the failure"
        );
        assert_eq!(result.injected_failures, 1);
        assert!(
            result.requeued_requests > 0,
            "a mid-run failure must abort and re-queue in-flight requests"
        );
        for r in &result.records {
            let jct = r.jct();
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown must still sum to JCT under failures: {total} vs {jct}"
            );
        }
    }

    #[test]
    fn failure_increases_average_jct() {
        let base = run(KvMethodProfile::baseline(), Dataset::Cocktail, 0.08, 40);
        let failed = Simulator::new(failure_config(40, mid_decode_failure(40))).run();
        assert_eq!(failed.records.len(), 40);
        assert!(
            failed.average_jct() > base.average_jct(),
            "losing a decode replica mid-run must hurt JCT: {} vs {}",
            failed.average_jct(),
            base.average_jct()
        );
    }

    #[test]
    fn permanent_failure_leaves_survivors_serving() {
        let result = Simulator::new(failure_config(40, FailureSpec::permanent(0, 100.0))).run();
        // The paper-default fleet has 4 decode replicas; the other three finish the work.
        assert_eq!(result.records.len(), 40);
        assert!(result
            .records
            .iter()
            .all(|r| r.decode_replica != 0 || r.finish_time < 100.0));
    }

    #[test]
    fn failure_runs_are_deterministic_too() {
        let spec = mid_decode_failure(35);
        let a = Simulator::new(failure_config(35, spec)).run();
        let b = Simulator::new(failure_config(35, spec)).run();
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.requeued_requests, b.requeued_requests);
        assert!((a.average_jct() - b.average_jct()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "failure targets decode replica")]
    fn failure_on_nonexistent_replica_is_rejected() {
        let _ = Simulator::new(failure_config(10, FailureSpec::permanent(99, 1.0))).run();
    }

    #[test]
    fn boxed_default_policies_reproduce_the_fast_path_bit_for_bit() {
        // LeastLoaded/FCFS/AdmitAll normally instantiate to `None` (the
        // pre-policy hot paths). Forcing them through the boxed trait-object
        // path (load-view assembly + `LeastLoaded::route`, per-tenant
        // sub-queues + `Fcfs::select_tenant`, per-arrival `AdmitAll::admit`)
        // must change nothing: PartialEq compares every f64 exactly.
        for (dataset, rps) in [(Dataset::Cocktail, 0.08), (Dataset::Imdb, 0.6)] {
            let sim = Simulator::new(sim_config(KvMethodProfile::hack(), dataset, rps, 50));
            assert_eq!(
                sim.run_with_boxed_default_policies(),
                sim.run(),
                "{}: boxed LeastLoaded/Fcfs/AdmitAll must match the built-in fast path",
                dataset.name()
            );
        }
        // Same pin on a heterogeneous fleet.
        let sim = Simulator::new(mixed_config(KvMethodProfile::baseline(), 30));
        assert_eq!(sim.run_with_boxed_default_policies(), sim.run());
    }

    // --- Topology-aware fabric and fault plans. ---

    fn link_graph_config(n: usize, rps: f64) -> SimulationConfig {
        let mut config = sim_config(KvMethodProfile::baseline(), Dataset::Imdb, rps, n);
        config.cluster.topology = crate::topology::TopologySpec::LinkGraph(
            crate::topology::LinkGraphSpec::paper_default(),
        );
        config
    }

    #[test]
    fn link_graph_without_faults_is_deterministic_and_conserves_requests() {
        let a = Simulator::new(link_graph_config(40, 0.6)).run();
        let b = Simulator::new(link_graph_config(40, 0.6)).run();
        assert_eq!(a, b, "link-graph runs must be bit-identical for one seed");
        assert_eq!(a.records.len(), 40);
        assert_eq!(a.aborted_requests, 0);
        assert_eq!(a.abandoned_requests, 0);
        assert_eq!(a.transfer_retries, 0, "no faults, no retries");
        assert!(a.faults.is_empty());
    }

    #[test]
    fn link_graph_matches_flat_when_transfers_never_overlap() {
        // A single request can never contend: its flow gets the full NIC rate
        // (the bottleneck link of the paper-default oversubscribed fabric), so
        // the fair-shared transfer takes the same time as the FIFO NIC's.
        let flat = Simulator::new(sim_config(
            KvMethodProfile::baseline(),
            Dataset::Imdb,
            0.1,
            1,
        ))
        .run();
        let graph = Simulator::new(link_graph_config(1, 0.1)).run();
        assert_eq!(flat.records.len(), 1);
        assert_eq!(graph.records.len(), 1);
        let (f, g) = (
            flat.records[0].breakdown.communication,
            graph.records[0].breakdown.communication,
        );
        assert!(
            (f - g).abs() < 1e-9 * f.max(1e-9),
            "uncontended comm time must agree between fabrics: {f} vs {g}"
        );
    }

    #[test]
    fn link_graph_engines_agree_under_a_fault_storm() {
        let mut cfg = link_graph_config(30, 0.6);
        let mut plan = crate::topology::FaultPlan::none();
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::DecodeTor(0),
            40.0,
            120.0,
        ));
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::Spine(0),
            150.0,
            165.0,
        ));
        cfg.faults = plan;
        let (slab_result, slab_trace) = Simulator::new(cfg).run_traced(EngineMode::Slab);
        let (boxed_result, boxed_trace) = Simulator::new(cfg).run_traced(EngineMode::Boxed);
        assert_eq!(slab_trace, boxed_trace);
        assert_eq!(slab_result, boxed_result);
    }

    #[test]
    fn tor_fault_blast_radius_is_exactly_the_replicas_behind_it() {
        // Paper-default fleet: 4 decode replicas at 2 per ToR -> DecodeTor(0)
        // shields replicas {0, 1}.
        let mut cfg = link_graph_config(40, 0.6);
        let mut plan = crate::topology::FaultPlan::none();
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::DecodeTor(0),
            30.0,
            90.0,
        ));
        cfg.faults = plan;
        let result = Simulator::new(cfg).run();
        assert_eq!(result.faults.len(), 1);
        let fault = &result.faults[0];
        assert_eq!(
            fault.replicas_affected, 2,
            "a ToR fault must fail every replica behind the switch"
        );
        assert!((fault.downtime_secs - 60.0).abs() < 1e-9);
        // One FabricFault plus one ReplicaFailed per shielded replica.
        assert_eq!(result.injected_failures, 3);
        // Conservation: every request either completed, was rejected, or is
        // accounted as aborted.
        assert_eq!(
            result.records.len() + result.rejected_requests + result.aborted_requests,
            40
        );
        // Nothing decodes on a dead replica during the outage.
        for r in &result.records {
            if r.decode_replica < 2 {
                let decode_start = r.finish_time - r.breakdown.decode;
                assert!(
                    r.finish_time <= 30.0 + 1e-9 || decode_start >= 90.0 - 1e-9,
                    "request {} decoded on replica {} across the outage",
                    r.request.id,
                    r.decode_replica
                );
            }
        }
    }

    #[test]
    fn spine_fault_aborts_inflight_transfers_and_retries_complete_after_recovery() {
        let mut cfg = link_graph_config(40, 0.6);
        let mut plan = crate::topology::FaultPlan::none();
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::Spine(0),
            20.0,
            35.0,
        ));
        cfg.faults = plan;
        let result = Simulator::new(cfg).run();
        // The spine fails no replicas -- it only severs every transfer path.
        assert_eq!(result.faults[0].replicas_affected, 0);
        assert!(
            result.transfer_retries > 0,
            "transfers attempted during the outage must retry"
        );
        assert!(
            !result.retry_histogram.is_empty(),
            "retrying requests must populate the attempt histogram"
        );
        assert_eq!(
            result.records.len() + result.rejected_requests + result.aborted_requests,
            40
        );
        assert!(
            result.records.len() > 30,
            "a 15s spine outage must not sink most of the run: {} completed",
            result.records.len()
        );
        assert!(result.degraded_secs > 0.0);
    }

    #[test]
    fn prefill_replica_fault_requeues_and_everything_completes_after_recovery() {
        // Prefill faults work on the Flat fabric too -- no link graph needed.
        let mut cfg = sim_config(KvMethodProfile::baseline(), Dataset::Imdb, 0.6, 40);
        let mut plan = crate::topology::FaultPlan::none();
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::PrefillReplica(0),
            20.0,
            60.0,
        ));
        cfg.faults = plan;
        let result = Simulator::new(cfg).run();
        assert_eq!(
            result.records.len(),
            40,
            "everything completes after recovery"
        );
        assert_eq!(result.injected_failures, 1);
        assert_eq!(result.faults[0].replicas_affected, 1);
        for r in &result.records {
            let jct = r.jct();
            let total = r.breakdown.total();
            assert!(
                (total - jct).abs() < 1e-6 * jct.max(1.0),
                "breakdown must sum to JCT under prefill faults: {total} vs {jct}"
            );
        }
    }

    #[test]
    fn nic_fault_fails_its_replica_and_counts_one_domain() {
        let mut cfg = link_graph_config(40, 0.6);
        let mut plan = crate::topology::FaultPlan::none();
        plan.push(crate::topology::FaultEvent::transient(
            crate::topology::FaultDomain::DecodeNic(1),
            25.0,
            70.0,
        ));
        cfg.faults = plan;
        let result = Simulator::new(cfg).run();
        assert_eq!(result.faults[0].replicas_affected, 1);
        // FabricFault (link cut) + ReplicaFailed.
        assert_eq!(result.injected_failures, 2);
        assert_eq!(
            result.records.len() + result.rejected_requests + result.aborted_requests,
            40
        );
    }

    #[test]
    fn legacy_failure_spec_still_pins_the_single_replica_fault_path() {
        // `FailureSpec -> FaultPlan` must reproduce the legacy event sequence
        // exactly (it seeds one ReplicaFailed + one ReplicaRecovered).
        let spec = FailureSpec::transient(1, 50.0, 400.0);
        let via_plan = Simulator::new(failure_config(30, spec)).run();
        assert_eq!(via_plan.injected_failures, 1);
        assert_eq!(via_plan.faults.len(), 1);
        assert_eq!(via_plan.faults[0].replicas_affected, 1);
    }

    #[test]
    fn invalid_fault_configs_yield_typed_errors() {
        use crate::topology::{ConfigError, FaultDomain, FaultEvent, FaultPlan};
        let base = sim_config(KvMethodProfile::baseline(), Dataset::Imdb, 0.3, 5);

        // Recovery at or before the fault instant.
        let mut cfg = base;
        let mut plan = FaultPlan::none();
        plan.push(FaultEvent::transient(
            FaultDomain::DecodeReplica(0),
            10.0,
            10.0,
        ));
        cfg.faults = plan;
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::RecoveryBeforeFault { .. })
        ));

        // Overlapping windows on the same domain.
        let mut cfg = base;
        let mut plan = FaultPlan::none();
        plan.push(FaultEvent::transient(
            FaultDomain::DecodeReplica(0),
            10.0,
            50.0,
        ));
        plan.push(FaultEvent::transient(
            FaultDomain::DecodeReplica(0),
            30.0,
            60.0,
        ));
        cfg.faults = plan;
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::OverlappingFaults { .. })
        ));

        // Switch faults need a link-graph topology.
        let mut cfg = base;
        let mut plan = FaultPlan::none();
        plan.push(FaultEvent::transient(FaultDomain::DecodeTor(0), 10.0, 50.0));
        cfg.faults = plan;
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::TopologyRequired { .. })
        ));

        // Out-of-range ToR index under a link graph.
        let mut cfg = base;
        cfg.cluster.topology = crate::topology::TopologySpec::LinkGraph(
            crate::topology::LinkGraphSpec::paper_default(),
        );
        let mut plan = FaultPlan::none();
        plan.push(FaultEvent::transient(FaultDomain::DecodeTor(9), 10.0, 50.0));
        cfg.faults = plan;
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::ReplicaOutOfRange { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "beyond MAX_TENANTS")]
    fn out_of_range_tenant_tags_are_rejected() {
        use hack_workload::trace::TenantId;
        let cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 5);
        let mut requests = hack_workload::trace::TraceGenerator::new(cfg.trace).generate();
        requests[3].tenant = TenantId(crate::policy::MAX_TENANTS as u32);
        let _ = Simulator::with_requests(cfg, std::sync::Arc::new(requests)).run();
    }

    // --- Session-structured traces and the prefix cache. ---

    #[test]
    fn invalid_session_parents_yield_typed_errors() {
        let cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 5);
        let gen = || TraceGenerator::new(cfg.trace).generate();

        // Parent index beyond the trace.
        let mut requests = gen();
        requests[2].session = 1;
        requests[2].parent = Some(99);
        assert!(matches!(
            Simulator::try_with_requests(cfg, Arc::new(requests)),
            Err(ConfigError::InvalidSessionParent {
                child: 2,
                parent: 99
            })
        ));

        // Self-parent (equivalently: a parent that does not precede the child
        // in the trace).
        let mut requests = gen();
        requests[2].session = 1;
        requests[2].parent = Some(2);
        assert!(matches!(
            Simulator::try_with_requests(cfg, Arc::new(requests)),
            Err(ConfigError::InvalidSessionParent {
                child: 2,
                parent: 2
            })
        ));

        // Parent nominally arriving after its child.
        let mut requests = gen();
        requests[1].session = 1;
        requests[3].session = 1;
        requests[3].parent = Some(1);
        requests[1].arrival = requests[3].arrival + 10.0;
        assert!(matches!(
            Simulator::try_with_requests(cfg, Arc::new(requests)),
            Err(ConfigError::InvalidSessionParent {
                child: 3,
                parent: 1
            })
        ));

        // A well-formed link constructs fine.
        let mut requests = gen();
        requests[1].session = 1;
        requests[3].session = 1;
        requests[3].parent = Some(1);
        requests[3].shared_prefix_tokens = requests[1].input_len.min(16);
        assert!(Simulator::try_with_requests(cfg, Arc::new(requests)).is_ok());
    }

    #[test]
    fn session_children_wait_for_their_parent() {
        let cfg = sim_config(KvMethodProfile::baseline(), Dataset::Cocktail, 0.05, 6);
        let mut requests = TraceGenerator::new(cfg.trace).generate();
        // Request 3 follows up on request 0 in session 1, nominally arriving
        // at its original (pre-gating) instant.
        requests[0].session = 1;
        requests[3].session = 1;
        requests[3].parent = Some(0);
        requests[3].shared_prefix_tokens = requests[0].input_len;
        let result = Simulator::with_requests(cfg, Arc::new(requests)).run();
        assert_eq!(result.records.len(), 6);
        let record_of = |id: u64| {
            result
                .records
                .iter()
                .find(|r| r.request.id == id)
                .expect("completed")
        };
        let parent_finish = record_of(0).finish_time;
        let child = record_of(3);
        // The child's prefill starts at arrival + queueing; gating must push
        // that past the parent's completion.
        assert!(
            child.request.arrival + child.breakdown.queueing >= parent_finish - 1e-9,
            "child prefill started before its parent finished"
        );
    }

    #[test]
    fn chat_sessions_hit_the_cache_and_cache_off_stays_identical() {
        use hack_workload::trace::TenantId;
        use hack_workload::{SessionKind, SessionSpec, SessionTrace};
        let spec = SessionSpec {
            tenant: TenantId(0),
            kind: SessionKind::Chat {
                turns: 4,
                think_mean_s: 25.0,
            },
            sessions: 8,
            rps: 0.04,
            dataset: Dataset::Cocktail,
            max_context: ModelKind::Llama31_70B.spec().max_context,
            seed: 17,
        };
        let requests = Arc::new(SessionTrace::new(vec![spec]).generate());
        let mut cfg = sim_config(KvMethodProfile::hack(), Dataset::Cocktail, 0.04, 0);
        cfg.trace.num_requests = requests.len();

        let off = Simulator::with_requests(cfg, requests.clone()).run();
        let off_again = Simulator::with_requests(cfg, requests.clone()).run();
        assert_eq!(off, off_again, "cache-off runs must be bit-identical");
        assert_eq!(off.prefix_hits, 0);
        assert_eq!(off.prefix_misses, 0);
        assert!(off.prefix_cache_peak_fraction.is_empty());

        cfg.cache = CacheConfig::on();
        let on = Simulator::with_requests(cfg, requests.clone()).run();
        assert_eq!(on.records.len(), off.records.len());
        assert!(on.prefix_hits > 0, "chat follow-ups must hit");
        assert!(
            on.prefix_hit_rate >= 0.5,
            "hit rate {} below 0.5",
            on.prefix_hit_rate
        );
        assert!(on.prefill_seconds_saved > 0.0);
        assert!(on.prefix_bytes_saved > 0.0);
        assert!(!on.prefix_cache_peak_fraction.is_empty());
        assert!(
            on.average_jct() < off.average_jct(),
            "cache-on JCT {} must beat cache-off {}",
            on.average_jct(),
            off.average_jct()
        );
    }
}
