//! Cluster and simulation configuration (§7.1).
//!
//! Since the fleet-topology redesign, the cluster's replica layout is a
//! [`FleetSpec`] — heterogeneous replica groups with per-group GPU kinds, NIC
//! bandwidths and cost parameterisations (see [`crate::fleet`]). The paper's
//! homogeneous deployments are single-group fleets; [`ClusterConfig`] keeps
//! flat accessors (`prefill_replicas()`, `decode_network_gbps()`, …) for that
//! shape, and [`ClusterConfig::from_value`] still decodes pre-fleet config
//! snapshots (flat `prefill_gpu`/`prefill_replicas`/… keys) by lowering them
//! to a single-group fleet.

use crate::cache::CacheConfig;
use crate::fleet::{FleetSpec, GroupSet, ReplicaGroup};
use crate::policy::PolicyConfig;
use crate::telemetry::TelemetryConfig;
use crate::topology::{
    ConfigError, FaultDomain, FaultEvent, FaultPlan, LinkGraphSpec, TopologySpec,
};
use hack_model::cost::{CostParams, KvMethodProfile, ReplicaCostModel};
use hack_model::gpu::GpuKind;
use hack_model::parallelism::Parallelism;
use hack_model::spec::ModelKind;
use hack_workload::trace::TraceConfig;
use serde::{Serialize, Value};

/// Static description of a disaggregated cluster: model, fleet topology and
/// the fleet-wide cost/memory constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Model being served.
    pub model: ModelKind,
    /// The replica groups of both fleet sides.
    pub fleet: FleetSpec,
    /// Whether KV transfer is overlapped with prefill computation (Fig. 1(d)).
    pub pipelining: bool,
    /// Fleet-wide cost-model efficiency constants (groups may override them
    /// via [`ReplicaGroup::cost_params`]).
    pub cost_params: CostParams,
    /// Fraction of each decode replica's GPU memory reserved for activations and
    /// runtime overheads (the rest, minus parameters, is KV cache budget).
    pub activation_reserve: f64,
    /// The KV-transfer fabric model. [`TopologySpec::Flat`] (the default) is
    /// the original per-NIC FIFO fabric, bit- and cost-identical to the
    /// pre-topology simulator; [`TopologySpec::LinkGraph`] shares link
    /// capacity fairly among concurrent transfers (see [`crate::topology`]).
    pub topology: TopologySpec,
}

impl ClusterConfig {
    /// A homogeneous cluster: one prefill group, one decode group (the
    /// pre-fleet configuration shape).
    pub fn homogeneous(model: ModelKind, prefill: ReplicaGroup, decode: ReplicaGroup) -> Self {
        Self {
            model,
            fleet: FleetSpec::homogeneous(prefill, decode),
            pipelining: false,
            cost_params: CostParams::default(),
            activation_reserve: 0.10,
            topology: TopologySpec::Flat,
        }
    }

    /// The paper's default fleet for a given model and prefill GPU (§7.1):
    /// ten g5 / sixteen p3 / sixteen g4dn / ten g6 / two p4de instances for prefill,
    /// two p4de.24xlarge instances for decode, so that the two sides have roughly
    /// similar capacity. Lowers to a single-group [`FleetSpec`] per side.
    pub fn paper_default(model: ModelKind, prefill_gpu: GpuKind) -> Self {
        let prefill_instances = match prefill_gpu {
            GpuKind::A10G => 10,
            GpuKind::V100 => 16,
            GpuKind::T4 => 16,
            GpuKind::L4 => 10,
            GpuKind::A100 => 2,
        };
        Self::homogeneous(
            model,
            ReplicaGroup::paper_sized(model, prefill_gpu, prefill_instances),
            ReplicaGroup::paper_sized(model, GpuKind::A100, 2),
        )
    }

    /// The scalability configuration of §7.6: `p` prefill replicas (A10G, TP=4, PP=2,
    /// two instances each) against **one** decode replica on half an A100 instance
    /// (4 GPUs, 200 Gbps).
    pub fn scalability(p: usize) -> Self {
        let mut base = Self::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        base.fleet.prefill.get_mut(0).replicas = p;
        let decode = base.fleet.decode.get_mut(0);
        decode.replicas = 1;
        decode.network_gbps = 200.0;
        base
    }

    // --- Flat accessors for the homogeneous (single-group) shape. Multi-group
    // --- fleets are addressed through `fleet` directly; these read the
    // --- *primary* (first) group, which is the whole side for every legacy
    // --- configuration.

    /// Total prefill replicas across all groups.
    pub fn prefill_replicas(&self) -> usize {
        self.fleet.prefill.total_replicas()
    }

    /// Total decode replicas across all groups.
    pub fn decode_replicas(&self) -> usize {
        self.fleet.decode.total_replicas()
    }

    /// GPU family of the primary prefill group.
    pub fn prefill_gpu(&self) -> GpuKind {
        self.fleet.prefill.get(0).gpu
    }

    /// GPU family of the primary decode group.
    pub fn decode_gpu(&self) -> GpuKind {
        self.fleet.decode.get(0).gpu
    }

    /// NIC bandwidth of the primary prefill group (Gbps).
    pub fn prefill_network_gbps(&self) -> f64 {
        self.fleet.prefill.get(0).network_gbps
    }

    /// NIC bandwidth of the primary decode group (Gbps).
    pub fn decode_network_gbps(&self) -> f64 {
        self.fleet.decode.get(0).network_gbps
    }

    /// TP/PP configuration of the primary prefill group's replicas.
    pub fn prefill_parallelism(&self) -> Parallelism {
        self.fleet.prefill.get(0).parallel
    }

    /// TP/PP configuration of the primary decode group's replicas.
    pub fn decode_parallelism(&self) -> Parallelism {
        self.fleet.decode.get(0).parallel
    }

    /// Overrides the prefill replica count (single-group fleets only — the
    /// legacy experiment knobs; shape multi-group fleets through `fleet`).
    pub fn set_prefill_replicas(&mut self, replicas: usize) {
        assert_eq!(
            self.fleet.prefill.len(),
            1,
            "set_prefill_replicas addresses a single-group fleet"
        );
        self.fleet.prefill.get_mut(0).replicas = replicas;
    }

    /// Overrides the decode replica count (single-group fleets only).
    pub fn set_decode_replicas(&mut self, replicas: usize) {
        assert_eq!(
            self.fleet.decode.len(),
            1,
            "set_decode_replicas addresses a single-group fleet"
        );
        self.fleet.decode.get_mut(0).replicas = replicas;
    }

    /// The cost model of prefill group `group`.
    pub fn prefill_cost_model(&self, group: usize) -> ReplicaCostModel {
        self.fleet
            .prefill
            .get(group)
            .cost_model(self.model, self.cost_params)
    }

    /// The cost model of decode group `group`.
    pub fn decode_cost_model(&self, group: usize) -> ReplicaCostModel {
        self.fleet
            .decode
            .get(group)
            .cost_model(self.model, self.cost_params)
    }

    /// GPU memory (bytes) available to one replica of decode group `group`.
    pub fn decode_group_mem_bytes(&self, group: usize) -> f64 {
        self.fleet.decode.get(group).replica_mem_bytes()
    }

    /// KV-cache byte budget of one replica of decode group `group` (memory
    /// minus parameters minus the activation reserve).
    pub fn decode_group_kv_budget_bytes(&self, group: usize) -> f64 {
        let mem = self.decode_group_mem_bytes(group);
        let params = self.model.spec().param_bytes_fp16();
        (mem - params - self.activation_reserve * mem).max(0.0)
    }

    /// GPU memory (bytes) available to one primary-group decode replica.
    pub fn decode_replica_mem_bytes(&self) -> f64 {
        self.decode_group_mem_bytes(0)
    }

    /// KV-cache byte budget of one primary-group decode replica.
    pub fn decode_kv_budget_bytes(&self) -> f64 {
        self.decode_group_kv_budget_bytes(0)
    }

    /// Rough estimate of the cluster's maximum sustainable request rate for a given
    /// workload and method, used to set "RPS = maximum processing capacity" (§7.1).
    /// Each side's throughput is the sum of its groups' throughputs under the
    /// groups' own cost models and NICs.
    pub fn estimate_max_rps(
        &self,
        profile: &KvMethodProfile,
        avg_input: usize,
        avg_output: usize,
    ) -> f64 {
        // Prefill- and network-side throughput, per group.
        let mut prefill_rps = 0.0;
        let mut network_rps = 0.0;
        for group in self.fleet.prefill.iter() {
            let model = group.cost_model(self.model, self.cost_params);
            let service = model.prefill_time(avg_input, profile)
                + model.quantization_time(avg_input, profile);
            prefill_rps += group.replicas as f64 / service.max(1e-9);
            let transfer = model.transfer_time(avg_input, profile, group.network_gbps);
            network_rps += group.replicas as f64 / transfer.max(1e-9);
        }
        // Decode-side throughput: each replica decodes its group's
        // `decode_batch` sequences concurrently.
        let kv_len = avg_input + avg_output / 2;
        let mut decode_rps = 0.0;
        for group in self.fleet.decode.iter() {
            let model = group.cost_model(self.model, self.cost_params);
            let batch = model.params.decode_batch;
            let iter = model.decode_iter_time(kv_len, profile, batch)
                + model.dequant_or_approx_iter_time(kv_len, profile);
            let decode_seconds_per_request = iter * avg_output as f64;
            decode_rps += group.replicas as f64 * batch / decode_seconds_per_request.max(1e-9);
        }
        prefill_rps.min(network_rps).min(decode_rps)
    }

    /// Decodes a cluster configuration from its serialized [`Value`] tree.
    ///
    /// Accepts both the current fleet format (a `fleet` key) and pre-fleet
    /// snapshots (flat `prefill_gpu`/`prefill_replicas`/`prefill_network_gbps`
    /// keys, ditto decode), lowering the latter to a single-group fleet with
    /// the Table 3 parallelism those configurations implied.
    pub fn from_value(value: &Value) -> Option<ClusterConfig> {
        let model = ModelKind::from_name(value.get_key("model")?.as_str()?)?;
        let fleet = match value.get_key("fleet") {
            Some(fleet) => FleetSpec::from_value(fleet)?,
            None => {
                // Pre-fleet snapshot: flat homogeneous fields.
                let side = |prefix: &str| -> Option<ReplicaGroup> {
                    let gpu =
                        GpuKind::from_name(value.get_key(&format!("{prefix}_gpu"))?.as_str()?)?;
                    Some(ReplicaGroup {
                        gpu,
                        replicas: value.get_key(&format!("{prefix}_replicas"))?.as_f64()? as usize,
                        parallel: Parallelism::table3(model, gpu),
                        network_gbps: value.get_key(&format!("{prefix}_network_gbps"))?.as_f64()?,
                        cost_params: None,
                        dollars_per_gpu_hour: ReplicaGroup::default_dollars_per_gpu_hour(gpu),
                        provision_delay_s: ReplicaGroup::default_provision_delay_s(gpu),
                    })
                };
                FleetSpec {
                    prefill: GroupSet::single(side("prefill")?),
                    decode: GroupSet::single(side("decode")?),
                }
            }
        };
        Some(ClusterConfig {
            model,
            fleet,
            pipelining: matches!(value.get_key("pipelining")?, Value::Bool(true)),
            cost_params: CostParams::from_value(value.get_key("cost_params")?)?,
            activation_reserve: value.get_key("activation_reserve")?.as_f64()?,
            // Pre-topology snapshots have no `topology` key: they ran on the
            // flat fabric.
            topology: match value.get_key("topology") {
                Some(v) => TopologySpec::from_value(v)?,
                None => TopologySpec::Flat,
            },
        })
    }

    /// Number of prefill-side ToRs under the link-graph topology (0 under
    /// [`TopologySpec::Flat`]).
    pub fn prefill_tors(&self) -> usize {
        match self.topology.link_graph() {
            Some(spec) => LinkGraphSpec::tors_for(self.prefill_replicas(), spec.prefill_per_tor),
            None => 0,
        }
    }

    /// Number of decode-side ToRs under the link-graph topology.
    pub fn decode_tors(&self) -> usize {
        match self.topology.link_graph() {
            Some(spec) => LinkGraphSpec::tors_for(self.decode_replicas(), spec.decode_per_tor),
            None => 0,
        }
    }

    /// The fleet dimensions an
    /// [`AvailabilityModel`](crate::topology::AvailabilityModel) draws fault
    /// targets from. Flat-fabric clusters report zero switches, so generated
    /// plans never target links the topology does not have.
    pub fn fleet_shape(&self) -> crate::topology::FleetShape {
        crate::topology::FleetShape {
            prefill_replicas: self.prefill_replicas(),
            decode_replicas: self.decode_replicas(),
            prefill_tors: self.prefill_tors(),
            decode_tors: self.decode_tors(),
            spines: self.topology.link_graph().map_or(0, |spec| spec.spines),
        }
    }
}

/// Fault-injection schedule: one decode replica goes down mid-run and
/// (optionally) comes back.
///
/// While the replica is down it admits nothing; its in-flight requests are
/// aborted, their KV reservations dropped, and they are re-dispatched through
/// the normal admission path (re-transferring their KV from the prefill side's
/// CPU copy, the spill path of §4). On recovery the replica rejoins the fleet
/// empty and the memory-wait queue is drained into it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FailureSpec {
    /// Index of the decode replica that fails (global, group-major).
    pub decode_replica: usize,
    /// Failure time (seconds since trace start).
    pub at: f64,
    /// Recovery time, or `None` for a permanent failure.
    pub recover_at: Option<f64>,
}

impl FailureSpec {
    /// A failure of decode replica `decode_replica` at time `at` with no recovery.
    pub fn permanent(decode_replica: usize, at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: None,
        }
    }

    /// A failure at time `at` that recovers at `recover_at`.
    pub fn transient(decode_replica: usize, at: f64, recover_at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: Some(recover_at),
        }
    }
}

impl From<FailureSpec> for FaultPlan {
    /// The legacy single-failure schedule is a one-event fault plan over the
    /// decode-replica domain (identical seeded events, hence bit-identical
    /// runs).
    fn from(spec: FailureSpec) -> FaultPlan {
        FaultPlan::new(&[FaultEvent {
            domain: FaultDomain::DecodeReplica(spec.decode_replica),
            at: spec.at,
            recover_at: spec.recover_at,
            degrade: None,
        }])
    }
}

/// A full simulation: cluster + workload + evaluated method + frontend policy
/// (+ optional fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimulationConfig {
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Workload trace configuration.
    pub trace: TraceConfig,
    /// KV-handling method being evaluated.
    pub profile: KvMethodProfile,
    /// Frontend policy: tenant classes plus dispatch/admission/scheduling
    /// policies. [`PolicyConfig::default`] reproduces the pre-policy simulator
    /// bit-for-bit (least-loaded dispatch, admit all, FCFS).
    pub policy: PolicyConfig,
    /// Scheduled fault injection over typed fault domains (replicas, NICs,
    /// ToRs, the spine). The empty plan (the default) injects nothing; the
    /// legacy single-failure [`FailureSpec`] converts via `From`.
    pub faults: FaultPlan,
    /// Telemetry switch. [`TelemetryConfig::Off`] (the default) allocates no
    /// recording state and is bit- and cost-identical to the pre-telemetry
    /// simulator; `On` records lifecycle spans and periodic time-series
    /// samples without perturbing the simulation.
    pub telemetry: TelemetryConfig,
    /// Session prefix-cache switch. [`CacheConfig::Off`] (the default)
    /// allocates no cache state and is bit- and cost-identical to the
    /// pre-cache simulator; `On` keeps finished sessions' KV prefixes
    /// resident on decode replicas so follow-up turns skip the shared
    /// prefix's prefill and transfer.
    pub cache: CacheConfig,
}

impl SimulationConfig {
    /// Validates the fault plan against the cluster and topology, returning a
    /// typed [`ConfigError`] instead of misbehaving mid-run. Called by
    /// [`Simulator::try_new`](crate::Simulator::try_new) before any event is
    /// scheduled.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(spec) = self.cluster.topology.link_graph() {
            let positive = |x: f64| x.is_finite() && x > 0.0;
            if !positive(spec.tor_uplink_gbps) {
                return Err(ConfigError::InvalidTopology {
                    what: "tor_uplink_gbps",
                });
            }
            if !positive(spec.spine_gbps) {
                return Err(ConfigError::InvalidTopology { what: "spine_gbps" });
            }
            if spec.prefill_per_tor == 0 {
                return Err(ConfigError::InvalidTopology {
                    what: "prefill_per_tor",
                });
            }
            if spec.decode_per_tor == 0 {
                return Err(ConfigError::InvalidTopology {
                    what: "decode_per_tor",
                });
            }
            if spec.spines == 0 {
                return Err(ConfigError::InvalidTopology { what: "spines" });
            }
        }
        self.policy.retry.validate()?;
        let prefill = self.cluster.prefill_replicas();
        let decode = self.cluster.decode_replicas();
        for event in self.faults.iter() {
            let domain = event.domain;
            if !event.at.is_finite() || event.at < 0.0 {
                return Err(ConfigError::InvalidFaultTime {
                    domain,
                    at: event.at,
                });
            }
            if let Some(recover) = event.recover_at {
                if !recover.is_finite() {
                    return Err(ConfigError::InvalidFaultTime {
                        domain,
                        at: recover,
                    });
                }
                if recover <= event.at {
                    return Err(ConfigError::RecoveryBeforeFault {
                        domain,
                        at: event.at,
                        recover_at: recover,
                    });
                }
            }
            if domain.needs_link_graph() && self.cluster.topology.link_graph().is_none() {
                return Err(ConfigError::TopologyRequired { domain });
            }
            if let Some(factor) = event.degrade {
                // Only links can run slow; replicas fail binarily.
                let in_range = factor.is_finite() && factor > 0.0 && factor < 1.0;
                if !in_range || !domain.needs_link_graph() {
                    return Err(ConfigError::InvalidDegradeFactor { domain });
                }
            }
            // No link graph means no spine blocks at all: a `Spine(s)` event
            // that slipped past the topology check (e.g. a legacy `"Spine"`
            // decode) must never validate against a phantom block.
            let spines = self
                .cluster
                .topology
                .link_graph()
                .map_or(0, |spec| spec.spines);
            let (index, limit) = match domain {
                FaultDomain::DecodeReplica(i) | FaultDomain::DecodeNic(i) => (i, decode),
                FaultDomain::PrefillReplica(i) | FaultDomain::PrefillNic(i) => (i, prefill),
                FaultDomain::PrefillTor(t) => (t, self.cluster.prefill_tors()),
                FaultDomain::DecodeTor(t) => (t, self.cluster.decode_tors()),
                FaultDomain::Spine(s) => (s, spines),
            };
            if index >= limit {
                return Err(ConfigError::ReplicaOutOfRange { domain, limit });
            }
        }
        // Two faults of the same *kind* on one domain must not overlap in
        // time: the fault machinery tracks a single down-window (and a single
        // degrade factor) per domain. A degradation overlapping a binary
        // outage on the same domain is legal — link liveness and link
        // capacity are independent fabric fields — and the degraded-exposure
        // sensors subtract the dead intersection.
        let window_end = |e: &FaultEvent| e.recover_at.unwrap_or(f64::INFINITY);
        let events: Vec<_> = self.faults.iter().copied().collect();
        for (i, a) in events.iter().enumerate() {
            for b in events.iter().skip(i + 1) {
                if a.domain == b.domain
                    && a.degrade.is_some() == b.degrade.is_some()
                    && a.at < window_end(b)
                    && b.at < window_end(a)
                {
                    return Err(ConfigError::OverlappingFaults { domain: a.domain });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_workload::dataset::Dataset;

    #[test]
    fn paper_default_llama_a10g_fleet() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        // 10 g5 instances x 4 GPUs / (TP4*PP2 = 8 GPUs) = 5 prefill replicas.
        assert_eq!(c.prefill_replicas(), 5);
        // 2 p4de x 8 GPUs / (TP4 = 4 GPUs) = 4 decode replicas.
        assert_eq!(c.decode_replicas(), 4);
        assert_eq!(c.decode_gpu(), GpuKind::A100);
        assert!(c.prefill_network_gbps() <= 40.0 + 1e-9);
        assert!(!c.pipelining);
        // Legacy constructors lower to single-group fleets.
        assert_eq!(c.fleet.prefill.len(), 1);
        assert_eq!(c.fleet.decode.len(), 1);
    }

    #[test]
    fn decode_memory_budget_is_positive_and_below_total() {
        for model in ModelKind::all() {
            let c = ClusterConfig::paper_default(model, GpuKind::A10G);
            let budget = c.decode_kv_budget_bytes();
            assert!(budget > 0.0, "{model:?}");
            assert!(budget < c.decode_replica_mem_bytes());
        }
    }

    #[test]
    fn scalability_config_uses_half_an_a100_instance() {
        let c = ClusterConfig::scalability(4);
        assert_eq!(c.prefill_replicas(), 4);
        assert_eq!(c.decode_replicas(), 1);
        assert_eq!(c.decode_network_gbps(), 200.0);
    }

    #[test]
    fn estimated_max_rps_is_higher_for_compressed_methods_and_short_prompts() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let cocktail_in = Dataset::Cocktail.input_stats().avg;
        let cocktail_out = Dataset::Cocktail.output_stats().avg;
        let imdb_in = Dataset::Imdb.input_stats().avg;
        let imdb_out = Dataset::Imdb.output_stats().avg;
        let base = c.estimate_max_rps(&KvMethodProfile::baseline(), cocktail_in, cocktail_out);
        let hack = c.estimate_max_rps(&KvMethodProfile::hack(), cocktail_in, cocktail_out);
        let short = c.estimate_max_rps(&KvMethodProfile::baseline(), imdb_in, imdb_out);
        assert!(base > 0.0);
        assert!(hack >= base, "hack rps {hack} vs baseline {base}");
        assert!(
            short > base,
            "short-prompt rps {short} vs long-prompt {base}"
        );
        // The paper drives the cluster at fractions of an RPS for Cocktail.
        assert!(base < 5.0, "baseline max rps {base}");
    }

    #[test]
    fn mixed_fleet_estimate_adds_group_throughputs() {
        let uniform = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let mut mixed = uniform;
        let l4 = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::L4, 10);
        mixed.fleet.prefill = GroupSet::new(&[*uniform.fleet.prefill.get(0), l4]);
        let avg_in = Dataset::Cocktail.input_stats().avg;
        let avg_out = Dataset::Cocktail.output_stats().avg;
        let profile = KvMethodProfile::baseline();
        // Adding a second prefill group can only raise (or leave, if decode-
        // bound) the estimate.
        assert!(
            mixed.estimate_max_rps(&profile, avg_in, avg_out)
                >= uniform.estimate_max_rps(&profile, avg_in, avg_out)
        );
    }

    #[test]
    fn v100_fleet_has_lowest_bandwidth() {
        let v100 = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::V100);
        let a10g = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        assert!(v100.prefill_network_gbps() < a10g.prefill_network_gbps());
    }

    #[test]
    fn cluster_config_serde_round_trips() {
        let original = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let json = serde_json::to_string(&original).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let back = ClusterConfig::from_value(&value).expect("fleet-format config decodes");
        assert_eq!(back, original);
    }

    fn sim_config(cluster: ClusterConfig, faults: FaultPlan) -> SimulationConfig {
        SimulationConfig {
            cluster,
            trace: hack_workload::trace::TraceConfig {
                dataset: Dataset::Cocktail,
                rps: 0.1,
                num_requests: 10,
                max_context: ModelKind::Llama31_70B.spec().max_context,
                seed: 1,
            },
            profile: KvMethodProfile::baseline(),
            policy: PolicyConfig::default(),
            faults,
            telemetry: TelemetryConfig::Off,
            cache: crate::cache::CacheConfig::Off,
        }
    }

    #[test]
    fn validate_accepts_sane_plans_and_rejects_malformed_ones() {
        let flat = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let mut graph = flat;
        graph.topology = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());

        // The empty plan and a legacy-shaped transient failure are fine.
        assert_eq!(sim_config(flat, FaultPlan::none()).validate(), Ok(()));
        let legacy = FaultPlan::from(FailureSpec::transient(0, 10.0, 20.0));
        assert_eq!(sim_config(flat, legacy).validate(), Ok(()));

        // Out-of-range decode replica: the old should-panic case, now typed.
        let oob = FaultPlan::from(FailureSpec::permanent(99, 1.0));
        assert!(matches!(
            sim_config(flat, oob).validate(),
            Err(ConfigError::ReplicaOutOfRange { limit: 4, .. })
        ));

        // Recovery at or before the failure instant.
        let backwards = FaultPlan::new(&[FaultEvent::transient(
            FaultDomain::DecodeReplica(0),
            50.0,
            50.0,
        )]);
        assert!(matches!(
            sim_config(flat, backwards).validate(),
            Err(ConfigError::RecoveryBeforeFault { .. })
        ));

        // Non-finite and negative fault times.
        for at in [f64::NAN, f64::INFINITY, -1.0] {
            let plan = FaultPlan::new(&[FaultEvent::permanent(FaultDomain::DecodeReplica(0), at)]);
            assert!(
                matches!(
                    sim_config(flat, plan).validate(),
                    Err(ConfigError::InvalidFaultTime { .. })
                ),
                "at = {at}"
            );
        }

        // Overlapping windows on one domain are rejected; disjoint ones pass.
        let overlapping = FaultPlan::new(&[
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 10.0, 100.0),
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 50.0, 60.0),
        ]);
        assert!(matches!(
            sim_config(flat, overlapping).validate(),
            Err(ConfigError::OverlappingFaults { .. })
        ));
        let disjoint = FaultPlan::new(&[
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 10.0, 20.0),
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 50.0, 60.0),
        ]);
        assert_eq!(sim_config(flat, disjoint).validate(), Ok(()));

        // Link-cutting faults require the link-graph topology.
        let tor = FaultPlan::new(&[FaultEvent::permanent(FaultDomain::DecodeTor(0), 10.0)]);
        assert!(matches!(
            sim_config(flat, tor).validate(),
            Err(ConfigError::TopologyRequired { .. })
        ));
        assert_eq!(sim_config(graph, tor).validate(), Ok(()));

        // ToR indices are checked against the derived switch count.
        let tor_oob = FaultPlan::new(&[FaultEvent::permanent(FaultDomain::DecodeTor(9), 10.0)]);
        assert!(matches!(
            sim_config(graph, tor_oob).validate(),
            Err(ConfigError::ReplicaOutOfRange { .. })
        ));

        // Spine indices are checked against the spine-block count: the
        // paper-default fabric has exactly one spine, so `Spine(0)` is legal
        // and `Spine(1)` — which a legacy `"Spine"` decode can never produce
        // but an availability-generated plan could — is typed out-of-range.
        let spine_ok = FaultPlan::new(&[FaultEvent::transient(FaultDomain::Spine(0), 10.0, 20.0)]);
        assert_eq!(sim_config(graph, spine_ok).validate(), Ok(()));
        let spine_oob = FaultPlan::new(&[FaultEvent::transient(FaultDomain::Spine(1), 10.0, 20.0)]);
        assert!(matches!(
            sim_config(graph, spine_oob).validate(),
            Err(ConfigError::ReplicaOutOfRange { limit: 1, .. })
        ));

        // A degradation overlapping a *binary* outage on the same domain is
        // legal (independent fabric fields; the sensors subtract the dead
        // intersection) — but two binary windows, or two degrade windows, on
        // one domain still collide.
        let degrade_over_outage = FaultPlan::new(&[
            FaultEvent::degraded(FaultDomain::DecodeTor(0), 10.0, 80.0, 0.5),
            FaultEvent::transient(FaultDomain::DecodeTor(0), 30.0, 50.0),
        ]);
        assert_eq!(sim_config(graph, degrade_over_outage).validate(), Ok(()));
        let degrade_over_degrade = FaultPlan::new(&[
            FaultEvent::degraded(FaultDomain::DecodeTor(0), 10.0, 80.0, 0.5),
            FaultEvent::degraded(FaultDomain::DecodeTor(0), 30.0, 50.0, 0.25),
        ]);
        assert!(matches!(
            sim_config(graph, degrade_over_degrade).validate(),
            Err(ConfigError::OverlappingFaults { .. })
        ));

        // Degenerate link-graph capacities are typed errors too.
        let mut bad = graph;
        bad.topology = TopologySpec::LinkGraph(LinkGraphSpec {
            spine_gbps: 0.0,
            ..LinkGraphSpec::paper_default()
        });
        assert!(matches!(
            sim_config(bad, FaultPlan::none()).validate(),
            Err(ConfigError::InvalidTopology { what: "spine_gbps" })
        ));
    }

    #[test]
    fn topology_aware_cluster_config_round_trips() {
        let mut c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        c.topology = TopologySpec::LinkGraph(LinkGraphSpec::paper_default());
        let json = serde_json::to_string(&c).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        assert_eq!(ClusterConfig::from_value(&value), Some(c));
        // 5 prefill replicas at 4 per ToR -> 2 switches; 4 decode at 2 -> 2.
        assert_eq!(c.prefill_tors(), 2);
        assert_eq!(c.decode_tors(), 2);
    }

    #[test]
    fn pre_fleet_snapshots_lower_to_single_group_fleets() {
        // A config serialized before the fleet API existed: flat homogeneous
        // fields, no `fleet` key. Values mirror paper_default(Llama, A10G).
        let json = r#"{
            "model": "Llama31_70B",
            "prefill_gpu": "A10G", "prefill_replicas": 5, "prefill_network_gbps": 40.0,
            "decode_gpu": "A100", "decode_replicas": 4, "decode_network_gbps": 200.0,
            "pipelining": false,
            "cost_params": {
                "compute_efficiency": 0.5, "attention_efficiency": 0.22,
                "elementwise_efficiency": 0.005, "memory_efficiency": 0.8,
                "kv_access_efficiency": 0.05, "dequant_efficiency": 0.0003,
                "decode_iter_overhead_s": 0.03, "network_efficiency": 0.9,
                "pp_bubble": 0.10, "decode_batch": 8.0
            },
            "activation_reserve": 0.10
        }"#;
        let value = serde_json::from_str(json).unwrap();
        let decoded = ClusterConfig::from_value(&value).expect("old snapshot decodes");
        assert_eq!(
            decoded,
            ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
            "the lowered single-group fleet must equal the legacy constructor"
        );
    }
}
