//! Cluster and simulation configuration (§7.1).
//!
//! Since the fleet-topology redesign, the cluster's replica layout is a
//! [`FleetSpec`] — heterogeneous replica groups with per-group GPU kinds, NIC
//! bandwidths and cost parameterisations (see [`crate::fleet`]). The paper's
//! homogeneous deployments are single-group fleets; [`ClusterConfig`] keeps
//! flat accessors (`prefill_replicas()`, `decode_network_gbps()`, …) for that
//! shape, and [`ClusterConfig::from_value`] still decodes pre-fleet config
//! snapshots (flat `prefill_gpu`/`prefill_replicas`/… keys) by lowering them
//! to a single-group fleet.

use crate::fleet::{FleetSpec, GroupSet, ReplicaGroup};
use crate::policy::PolicyConfig;
use crate::telemetry::TelemetryConfig;
use hack_model::cost::{CostParams, KvMethodProfile, ReplicaCostModel};
use hack_model::gpu::GpuKind;
use hack_model::parallelism::Parallelism;
use hack_model::spec::ModelKind;
use hack_workload::trace::TraceConfig;
use serde::{Serialize, Value};

/// Static description of a disaggregated cluster: model, fleet topology and
/// the fleet-wide cost/memory constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Model being served.
    pub model: ModelKind,
    /// The replica groups of both fleet sides.
    pub fleet: FleetSpec,
    /// Whether KV transfer is overlapped with prefill computation (Fig. 1(d)).
    pub pipelining: bool,
    /// Fleet-wide cost-model efficiency constants (groups may override them
    /// via [`ReplicaGroup::cost_params`]).
    pub cost_params: CostParams,
    /// Fraction of each decode replica's GPU memory reserved for activations and
    /// runtime overheads (the rest, minus parameters, is KV cache budget).
    pub activation_reserve: f64,
}

impl ClusterConfig {
    /// A homogeneous cluster: one prefill group, one decode group (the
    /// pre-fleet configuration shape).
    pub fn homogeneous(model: ModelKind, prefill: ReplicaGroup, decode: ReplicaGroup) -> Self {
        Self {
            model,
            fleet: FleetSpec::homogeneous(prefill, decode),
            pipelining: false,
            cost_params: CostParams::default(),
            activation_reserve: 0.10,
        }
    }

    /// The paper's default fleet for a given model and prefill GPU (§7.1):
    /// ten g5 / sixteen p3 / sixteen g4dn / ten g6 / two p4de instances for prefill,
    /// two p4de.24xlarge instances for decode, so that the two sides have roughly
    /// similar capacity. Lowers to a single-group [`FleetSpec`] per side.
    pub fn paper_default(model: ModelKind, prefill_gpu: GpuKind) -> Self {
        let prefill_instances = match prefill_gpu {
            GpuKind::A10G => 10,
            GpuKind::V100 => 16,
            GpuKind::T4 => 16,
            GpuKind::L4 => 10,
            GpuKind::A100 => 2,
        };
        Self::homogeneous(
            model,
            ReplicaGroup::paper_sized(model, prefill_gpu, prefill_instances),
            ReplicaGroup::paper_sized(model, GpuKind::A100, 2),
        )
    }

    /// The scalability configuration of §7.6: `p` prefill replicas (A10G, TP=4, PP=2,
    /// two instances each) against **one** decode replica on half an A100 instance
    /// (4 GPUs, 200 Gbps).
    pub fn scalability(p: usize) -> Self {
        let mut base = Self::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        base.fleet.prefill.get_mut(0).replicas = p;
        let decode = base.fleet.decode.get_mut(0);
        decode.replicas = 1;
        decode.network_gbps = 200.0;
        base
    }

    // --- Flat accessors for the homogeneous (single-group) shape. Multi-group
    // --- fleets are addressed through `fleet` directly; these read the
    // --- *primary* (first) group, which is the whole side for every legacy
    // --- configuration.

    /// Total prefill replicas across all groups.
    pub fn prefill_replicas(&self) -> usize {
        self.fleet.prefill.total_replicas()
    }

    /// Total decode replicas across all groups.
    pub fn decode_replicas(&self) -> usize {
        self.fleet.decode.total_replicas()
    }

    /// GPU family of the primary prefill group.
    pub fn prefill_gpu(&self) -> GpuKind {
        self.fleet.prefill.get(0).gpu
    }

    /// GPU family of the primary decode group.
    pub fn decode_gpu(&self) -> GpuKind {
        self.fleet.decode.get(0).gpu
    }

    /// NIC bandwidth of the primary prefill group (Gbps).
    pub fn prefill_network_gbps(&self) -> f64 {
        self.fleet.prefill.get(0).network_gbps
    }

    /// NIC bandwidth of the primary decode group (Gbps).
    pub fn decode_network_gbps(&self) -> f64 {
        self.fleet.decode.get(0).network_gbps
    }

    /// TP/PP configuration of the primary prefill group's replicas.
    pub fn prefill_parallelism(&self) -> Parallelism {
        self.fleet.prefill.get(0).parallel
    }

    /// TP/PP configuration of the primary decode group's replicas.
    pub fn decode_parallelism(&self) -> Parallelism {
        self.fleet.decode.get(0).parallel
    }

    /// Overrides the prefill replica count (single-group fleets only — the
    /// legacy experiment knobs; shape multi-group fleets through `fleet`).
    pub fn set_prefill_replicas(&mut self, replicas: usize) {
        assert_eq!(
            self.fleet.prefill.len(),
            1,
            "set_prefill_replicas addresses a single-group fleet"
        );
        self.fleet.prefill.get_mut(0).replicas = replicas;
    }

    /// Overrides the decode replica count (single-group fleets only).
    pub fn set_decode_replicas(&mut self, replicas: usize) {
        assert_eq!(
            self.fleet.decode.len(),
            1,
            "set_decode_replicas addresses a single-group fleet"
        );
        self.fleet.decode.get_mut(0).replicas = replicas;
    }

    /// The cost model of prefill group `group`.
    pub fn prefill_cost_model(&self, group: usize) -> ReplicaCostModel {
        self.fleet
            .prefill
            .get(group)
            .cost_model(self.model, self.cost_params)
    }

    /// The cost model of decode group `group`.
    pub fn decode_cost_model(&self, group: usize) -> ReplicaCostModel {
        self.fleet
            .decode
            .get(group)
            .cost_model(self.model, self.cost_params)
    }

    /// GPU memory (bytes) available to one replica of decode group `group`.
    pub fn decode_group_mem_bytes(&self, group: usize) -> f64 {
        self.fleet.decode.get(group).replica_mem_bytes()
    }

    /// KV-cache byte budget of one replica of decode group `group` (memory
    /// minus parameters minus the activation reserve).
    pub fn decode_group_kv_budget_bytes(&self, group: usize) -> f64 {
        let mem = self.decode_group_mem_bytes(group);
        let params = self.model.spec().param_bytes_fp16();
        (mem - params - self.activation_reserve * mem).max(0.0)
    }

    /// GPU memory (bytes) available to one primary-group decode replica.
    pub fn decode_replica_mem_bytes(&self) -> f64 {
        self.decode_group_mem_bytes(0)
    }

    /// KV-cache byte budget of one primary-group decode replica.
    pub fn decode_kv_budget_bytes(&self) -> f64 {
        self.decode_group_kv_budget_bytes(0)
    }

    /// Rough estimate of the cluster's maximum sustainable request rate for a given
    /// workload and method, used to set "RPS = maximum processing capacity" (§7.1).
    /// Each side's throughput is the sum of its groups' throughputs under the
    /// groups' own cost models and NICs.
    pub fn estimate_max_rps(
        &self,
        profile: &KvMethodProfile,
        avg_input: usize,
        avg_output: usize,
    ) -> f64 {
        // Prefill- and network-side throughput, per group.
        let mut prefill_rps = 0.0;
        let mut network_rps = 0.0;
        for group in self.fleet.prefill.iter() {
            let model = group.cost_model(self.model, self.cost_params);
            let service = model.prefill_time(avg_input, profile)
                + model.quantization_time(avg_input, profile);
            prefill_rps += group.replicas as f64 / service.max(1e-9);
            let transfer = model.transfer_time(avg_input, profile, group.network_gbps);
            network_rps += group.replicas as f64 / transfer.max(1e-9);
        }
        // Decode-side throughput: each replica decodes its group's
        // `decode_batch` sequences concurrently.
        let kv_len = avg_input + avg_output / 2;
        let mut decode_rps = 0.0;
        for group in self.fleet.decode.iter() {
            let model = group.cost_model(self.model, self.cost_params);
            let batch = model.params.decode_batch;
            let iter = model.decode_iter_time(kv_len, profile, batch)
                + model.dequant_or_approx_iter_time(kv_len, profile);
            let decode_seconds_per_request = iter * avg_output as f64;
            decode_rps += group.replicas as f64 * batch / decode_seconds_per_request.max(1e-9);
        }
        prefill_rps.min(network_rps).min(decode_rps)
    }

    /// Decodes a cluster configuration from its serialized [`Value`] tree.
    ///
    /// Accepts both the current fleet format (a `fleet` key) and pre-fleet
    /// snapshots (flat `prefill_gpu`/`prefill_replicas`/`prefill_network_gbps`
    /// keys, ditto decode), lowering the latter to a single-group fleet with
    /// the Table 3 parallelism those configurations implied.
    pub fn from_value(value: &Value) -> Option<ClusterConfig> {
        let model = ModelKind::from_name(value.get_key("model")?.as_str()?)?;
        let fleet = match value.get_key("fleet") {
            Some(fleet) => FleetSpec::from_value(fleet)?,
            None => {
                // Pre-fleet snapshot: flat homogeneous fields.
                let side = |prefix: &str| -> Option<ReplicaGroup> {
                    let gpu =
                        GpuKind::from_name(value.get_key(&format!("{prefix}_gpu"))?.as_str()?)?;
                    Some(ReplicaGroup {
                        gpu,
                        replicas: value.get_key(&format!("{prefix}_replicas"))?.as_f64()? as usize,
                        parallel: Parallelism::table3(model, gpu),
                        network_gbps: value.get_key(&format!("{prefix}_network_gbps"))?.as_f64()?,
                        cost_params: None,
                    })
                };
                FleetSpec {
                    prefill: GroupSet::single(side("prefill")?),
                    decode: GroupSet::single(side("decode")?),
                }
            }
        };
        Some(ClusterConfig {
            model,
            fleet,
            pipelining: matches!(value.get_key("pipelining")?, Value::Bool(true)),
            cost_params: CostParams::from_value(value.get_key("cost_params")?)?,
            activation_reserve: value.get_key("activation_reserve")?.as_f64()?,
        })
    }
}

/// Fault-injection schedule: one decode replica goes down mid-run and
/// (optionally) comes back.
///
/// While the replica is down it admits nothing; its in-flight requests are
/// aborted, their KV reservations dropped, and they are re-dispatched through
/// the normal admission path (re-transferring their KV from the prefill side's
/// CPU copy, the spill path of §4). On recovery the replica rejoins the fleet
/// empty and the memory-wait queue is drained into it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FailureSpec {
    /// Index of the decode replica that fails (global, group-major).
    pub decode_replica: usize,
    /// Failure time (seconds since trace start).
    pub at: f64,
    /// Recovery time, or `None` for a permanent failure.
    pub recover_at: Option<f64>,
}

impl FailureSpec {
    /// A failure of decode replica `decode_replica` at time `at` with no recovery.
    pub fn permanent(decode_replica: usize, at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: None,
        }
    }

    /// A failure at time `at` that recovers at `recover_at`.
    pub fn transient(decode_replica: usize, at: f64, recover_at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: Some(recover_at),
        }
    }
}

/// A full simulation: cluster + workload + evaluated method + frontend policy
/// (+ optional fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimulationConfig {
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Workload trace configuration.
    pub trace: TraceConfig,
    /// KV-handling method being evaluated.
    pub profile: KvMethodProfile,
    /// Frontend policy: tenant classes plus dispatch/admission/scheduling
    /// policies. [`PolicyConfig::default`] reproduces the pre-policy simulator
    /// bit-for-bit (least-loaded dispatch, admit all, FCFS).
    pub policy: PolicyConfig,
    /// Optional decode-replica failure injected during the run.
    pub failure: Option<FailureSpec>,
    /// Telemetry switch. [`TelemetryConfig::Off`] (the default) allocates no
    /// recording state and is bit- and cost-identical to the pre-telemetry
    /// simulator; `On` records lifecycle spans and periodic time-series
    /// samples without perturbing the simulation.
    pub telemetry: TelemetryConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_workload::dataset::Dataset;

    #[test]
    fn paper_default_llama_a10g_fleet() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        // 10 g5 instances x 4 GPUs / (TP4*PP2 = 8 GPUs) = 5 prefill replicas.
        assert_eq!(c.prefill_replicas(), 5);
        // 2 p4de x 8 GPUs / (TP4 = 4 GPUs) = 4 decode replicas.
        assert_eq!(c.decode_replicas(), 4);
        assert_eq!(c.decode_gpu(), GpuKind::A100);
        assert!(c.prefill_network_gbps() <= 40.0 + 1e-9);
        assert!(!c.pipelining);
        // Legacy constructors lower to single-group fleets.
        assert_eq!(c.fleet.prefill.len(), 1);
        assert_eq!(c.fleet.decode.len(), 1);
    }

    #[test]
    fn decode_memory_budget_is_positive_and_below_total() {
        for model in ModelKind::all() {
            let c = ClusterConfig::paper_default(model, GpuKind::A10G);
            let budget = c.decode_kv_budget_bytes();
            assert!(budget > 0.0, "{model:?}");
            assert!(budget < c.decode_replica_mem_bytes());
        }
    }

    #[test]
    fn scalability_config_uses_half_an_a100_instance() {
        let c = ClusterConfig::scalability(4);
        assert_eq!(c.prefill_replicas(), 4);
        assert_eq!(c.decode_replicas(), 1);
        assert_eq!(c.decode_network_gbps(), 200.0);
    }

    #[test]
    fn estimated_max_rps_is_higher_for_compressed_methods_and_short_prompts() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let cocktail_in = Dataset::Cocktail.input_stats().avg;
        let cocktail_out = Dataset::Cocktail.output_stats().avg;
        let imdb_in = Dataset::Imdb.input_stats().avg;
        let imdb_out = Dataset::Imdb.output_stats().avg;
        let base = c.estimate_max_rps(&KvMethodProfile::baseline(), cocktail_in, cocktail_out);
        let hack = c.estimate_max_rps(&KvMethodProfile::hack(), cocktail_in, cocktail_out);
        let short = c.estimate_max_rps(&KvMethodProfile::baseline(), imdb_in, imdb_out);
        assert!(base > 0.0);
        assert!(hack >= base, "hack rps {hack} vs baseline {base}");
        assert!(
            short > base,
            "short-prompt rps {short} vs long-prompt {base}"
        );
        // The paper drives the cluster at fractions of an RPS for Cocktail.
        assert!(base < 5.0, "baseline max rps {base}");
    }

    #[test]
    fn mixed_fleet_estimate_adds_group_throughputs() {
        let uniform = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let mut mixed = uniform;
        let l4 = ReplicaGroup::paper_sized(ModelKind::Llama31_70B, GpuKind::L4, 10);
        mixed.fleet.prefill = GroupSet::new(&[*uniform.fleet.prefill.get(0), l4]);
        let avg_in = Dataset::Cocktail.input_stats().avg;
        let avg_out = Dataset::Cocktail.output_stats().avg;
        let profile = KvMethodProfile::baseline();
        // Adding a second prefill group can only raise (or leave, if decode-
        // bound) the estimate.
        assert!(
            mixed.estimate_max_rps(&profile, avg_in, avg_out)
                >= uniform.estimate_max_rps(&profile, avg_in, avg_out)
        );
    }

    #[test]
    fn v100_fleet_has_lowest_bandwidth() {
        let v100 = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::V100);
        let a10g = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        assert!(v100.prefill_network_gbps() < a10g.prefill_network_gbps());
    }

    #[test]
    fn cluster_config_serde_round_trips() {
        let original = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let json = serde_json::to_string(&original).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let back = ClusterConfig::from_value(&value).expect("fleet-format config decodes");
        assert_eq!(back, original);
    }

    #[test]
    fn pre_fleet_snapshots_lower_to_single_group_fleets() {
        // A config serialized before the fleet API existed: flat homogeneous
        // fields, no `fleet` key. Values mirror paper_default(Llama, A10G).
        let json = r#"{
            "model": "Llama31_70B",
            "prefill_gpu": "A10G", "prefill_replicas": 5, "prefill_network_gbps": 40.0,
            "decode_gpu": "A100", "decode_replicas": 4, "decode_network_gbps": 200.0,
            "pipelining": false,
            "cost_params": {
                "compute_efficiency": 0.5, "attention_efficiency": 0.22,
                "elementwise_efficiency": 0.005, "memory_efficiency": 0.8,
                "kv_access_efficiency": 0.05, "dequant_efficiency": 0.0003,
                "decode_iter_overhead_s": 0.03, "network_efficiency": 0.9,
                "pp_bubble": 0.10, "decode_batch": 8.0
            },
            "activation_reserve": 0.10
        }"#;
        let value = serde_json::from_str(json).unwrap();
        let decoded = ClusterConfig::from_value(&value).expect("old snapshot decodes");
        assert_eq!(
            decoded,
            ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G),
            "the lowered single-group fleet must equal the legacy constructor"
        );
    }
}
