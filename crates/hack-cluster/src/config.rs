//! Cluster and simulation configuration (§7.1).

use crate::policy::PolicyConfig;
use hack_model::cost::{CostParams, KvMethodProfile};
use hack_model::gpu::GpuKind;
use hack_model::parallelism::Parallelism;
use hack_model::spec::ModelKind;
use hack_workload::trace::TraceConfig;
use serde::{Deserialize, Serialize};

/// Static description of a disaggregated cluster: model, prefill fleet, decode fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Model being served.
    pub model: ModelKind,
    /// GPU family of the prefill fleet.
    pub prefill_gpu: GpuKind,
    /// Number of prefill model replicas.
    pub prefill_replicas: usize,
    /// Egress NIC bandwidth available to each prefill replica, in Gbps.
    pub prefill_network_gbps: f64,
    /// GPU family of the decode fleet (A100 in the paper).
    pub decode_gpu: GpuKind,
    /// Number of decode model replicas.
    pub decode_replicas: usize,
    /// Ingress NIC bandwidth available to each decode replica, in Gbps.
    pub decode_network_gbps: f64,
    /// Whether KV transfer is overlapped with prefill computation (Fig. 1(d)).
    pub pipelining: bool,
    /// Cost-model efficiency constants.
    pub cost_params: CostParams,
    /// Fraction of each decode replica's GPU memory reserved for activations and
    /// runtime overheads (the rest, minus parameters, is KV cache budget).
    pub activation_reserve: f64,
}

impl ClusterConfig {
    /// The paper's default fleet for a given model and prefill GPU (§7.1):
    /// ten g5 / sixteen p3 / sixteen g4dn / ten g6 / two p4de instances for prefill,
    /// two p4de.24xlarge instances for decode, so that the two sides have roughly
    /// similar capacity.
    pub fn paper_default(model: ModelKind, prefill_gpu: GpuKind) -> Self {
        let prefill_instances = match prefill_gpu {
            GpuKind::A10G => 10,
            GpuKind::V100 => 16,
            GpuKind::T4 => 16,
            GpuKind::L4 => 10,
            GpuKind::A100 => 2,
        };
        let decode_instances = 2usize;

        let prefill_parallel = Parallelism::table3(model, prefill_gpu);
        let decode_parallel = Parallelism::table3(model, GpuKind::A100);

        let prefill_gpus = prefill_instances * prefill_gpu.instance().gpus;
        let decode_gpus = decode_instances * GpuKind::A100.instance().gpus;

        let prefill_replicas = (prefill_gpus / prefill_parallel.gpus_per_replica()).max(1);
        let decode_replicas = (decode_gpus / decode_parallel.gpus_per_replica()).max(1);

        // Each replica gets the NIC bandwidth of one instance (a replica that spans
        // several instances still sources each request's KV transfer from one NIC);
        // replicas that share an instance share its NIC.
        let prefill_replicas_per_instance =
            (prefill_replicas as f64 / prefill_instances as f64).max(1.0);
        let decode_replicas_per_instance =
            (decode_replicas as f64 / decode_instances as f64).max(1.0);

        Self {
            model,
            prefill_gpu,
            prefill_replicas,
            prefill_network_gbps: prefill_gpu.instance().network_gbps
                / prefill_replicas_per_instance,
            decode_gpu: GpuKind::A100,
            decode_replicas,
            decode_network_gbps: GpuKind::A100.instance().network_gbps
                / decode_replicas_per_instance,
            pipelining: false,
            cost_params: CostParams::default(),
            activation_reserve: 0.10,
        }
    }

    /// The scalability configuration of §7.6: `p` prefill replicas (A10G, TP=4, PP=2,
    /// two instances each) against **one** decode replica on half an A100 instance
    /// (4 GPUs, 200 Gbps).
    pub fn scalability(p: usize) -> Self {
        let base = Self::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        Self {
            prefill_replicas: p,
            decode_replicas: 1,
            decode_network_gbps: 200.0,
            ..base
        }
    }

    /// TP/PP configuration of the prefill replicas.
    pub fn prefill_parallelism(&self) -> Parallelism {
        Parallelism::table3(self.model, self.prefill_gpu)
    }

    /// TP/PP configuration of the decode replicas.
    pub fn decode_parallelism(&self) -> Parallelism {
        Parallelism::table3(self.model, self.decode_gpu)
    }

    /// GPU memory (bytes) available to one decode replica.
    pub fn decode_replica_mem_bytes(&self) -> f64 {
        self.decode_parallelism().gpus_per_replica() as f64
            * self.decode_gpu.spec().mem_gib
            * (1u64 << 30) as f64
    }

    /// KV-cache byte budget of one decode replica (memory minus parameters minus the
    /// activation reserve).
    pub fn decode_kv_budget_bytes(&self) -> f64 {
        let mem = self.decode_replica_mem_bytes();
        let params = self.model.spec().param_bytes_fp16();
        (mem - params - self.activation_reserve * mem).max(0.0)
    }

    /// Rough estimate of the cluster's maximum sustainable request rate for a given
    /// workload and method, used to set "RPS = maximum processing capacity" (§7.1).
    pub fn estimate_max_rps(
        &self,
        profile: &KvMethodProfile,
        avg_input: usize,
        avg_output: usize,
    ) -> f64 {
        let model = self.model.spec();
        let prefill_model = hack_model::ReplicaCostModel {
            model,
            gpu: self.prefill_gpu.spec(),
            parallel: self.prefill_parallelism(),
            params: self.cost_params,
        };
        let decode_model = hack_model::ReplicaCostModel {
            model,
            gpu: self.decode_gpu.spec(),
            parallel: self.decode_parallelism(),
            params: self.cost_params,
        };
        // Prefill-side throughput.
        let prefill_service = prefill_model.prefill_time(avg_input, profile)
            + prefill_model.quantization_time(avg_input, profile);
        let prefill_rps = self.prefill_replicas as f64 / prefill_service.max(1e-9);
        // Network-side throughput.
        let transfer = prefill_model.transfer_time(avg_input, profile, self.prefill_network_gbps);
        let network_rps = self.prefill_replicas as f64 / transfer.max(1e-9);
        // Decode-side throughput: each replica decodes `decode_batch` sequences
        // concurrently.
        let kv_len = avg_input + avg_output / 2;
        let iter = decode_model.decode_iter_time(kv_len, profile, self.cost_params.decode_batch)
            + decode_model.dequant_or_approx_iter_time(kv_len, profile);
        let decode_seconds_per_request = iter * avg_output as f64;
        let decode_rps = self.decode_replicas as f64 * self.cost_params.decode_batch
            / decode_seconds_per_request.max(1e-9);
        prefill_rps.min(network_rps).min(decode_rps)
    }
}

/// Fault-injection schedule: one decode replica goes down mid-run and
/// (optionally) comes back.
///
/// While the replica is down it admits nothing; its in-flight requests are
/// aborted, their KV reservations dropped, and they are re-dispatched through
/// the normal admission path (re-transferring their KV from the prefill side's
/// CPU copy, the spill path of §4). On recovery the replica rejoins the fleet
/// empty and the memory-wait queue is drained into it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSpec {
    /// Index of the decode replica that fails.
    pub decode_replica: usize,
    /// Failure time (seconds since trace start).
    pub at: f64,
    /// Recovery time, or `None` for a permanent failure.
    pub recover_at: Option<f64>,
}

impl FailureSpec {
    /// A failure of decode replica `decode_replica` at time `at` with no recovery.
    pub fn permanent(decode_replica: usize, at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: None,
        }
    }

    /// A failure at time `at` that recovers at `recover_at`.
    pub fn transient(decode_replica: usize, at: f64, recover_at: f64) -> Self {
        Self {
            decode_replica,
            at,
            recover_at: Some(recover_at),
        }
    }
}

/// A full simulation: cluster + workload + evaluated method + frontend policy
/// (+ optional fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimulationConfig {
    /// Cluster description.
    pub cluster: ClusterConfig,
    /// Workload trace configuration.
    pub trace: TraceConfig,
    /// KV-handling method being evaluated.
    pub profile: KvMethodProfile,
    /// Frontend policy: tenant classes plus admission/scheduling policies.
    /// [`PolicyConfig::default`] reproduces the pre-policy simulator
    /// bit-for-bit (admit all, FCFS).
    pub policy: PolicyConfig,
    /// Optional decode-replica failure injected during the run.
    pub failure: Option<FailureSpec>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_workload::dataset::Dataset;

    #[test]
    fn paper_default_llama_a10g_fleet() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        // 10 g5 instances x 4 GPUs / (TP4*PP2 = 8 GPUs) = 5 prefill replicas.
        assert_eq!(c.prefill_replicas, 5);
        // 2 p4de x 8 GPUs / (TP4 = 4 GPUs) = 4 decode replicas.
        assert_eq!(c.decode_replicas, 4);
        assert_eq!(c.decode_gpu, GpuKind::A100);
        assert!(c.prefill_network_gbps <= 40.0 + 1e-9);
        assert!(!c.pipelining);
    }

    #[test]
    fn decode_memory_budget_is_positive_and_below_total() {
        for model in ModelKind::all() {
            let c = ClusterConfig::paper_default(model, GpuKind::A10G);
            let budget = c.decode_kv_budget_bytes();
            assert!(budget > 0.0, "{model:?}");
            assert!(budget < c.decode_replica_mem_bytes());
        }
    }

    #[test]
    fn scalability_config_uses_half_an_a100_instance() {
        let c = ClusterConfig::scalability(4);
        assert_eq!(c.prefill_replicas, 4);
        assert_eq!(c.decode_replicas, 1);
        assert_eq!(c.decode_network_gbps, 200.0);
    }

    #[test]
    fn estimated_max_rps_is_higher_for_compressed_methods_and_short_prompts() {
        let c = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        let cocktail_in = Dataset::Cocktail.input_stats().avg;
        let cocktail_out = Dataset::Cocktail.output_stats().avg;
        let imdb_in = Dataset::Imdb.input_stats().avg;
        let imdb_out = Dataset::Imdb.output_stats().avg;
        let base = c.estimate_max_rps(&KvMethodProfile::baseline(), cocktail_in, cocktail_out);
        let hack = c.estimate_max_rps(&KvMethodProfile::hack(), cocktail_in, cocktail_out);
        let short = c.estimate_max_rps(&KvMethodProfile::baseline(), imdb_in, imdb_out);
        assert!(base > 0.0);
        assert!(hack >= base, "hack rps {hack} vs baseline {base}");
        assert!(
            short > base,
            "short-prompt rps {short} vs long-prompt {base}"
        );
        // The paper drives the cluster at fractions of an RPS for Cocktail.
        assert!(base < 5.0, "baseline max rps {base}");
    }

    #[test]
    fn v100_fleet_has_lowest_bandwidth() {
        let v100 = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::V100);
        let a10g = ClusterConfig::paper_default(ModelKind::Llama31_70B, GpuKind::A10G);
        assert!(v100.prefill_network_gbps < a10g.prefill_network_gbps);
    }
}
