//! # hack-cluster
//!
//! Discrete-event simulator of disaggregated LLM inference (§2, §4, §7.1 of the paper).
//!
//! The simulated cluster consists of prefill replicas (cheap compute GPUs: A10G, V100,
//! T4, L4 — or A100) and decode replicas (A100), sized the way §7.1 sizes them.
//! Requests arrive as a Poisson process, are dispatched to the prefill replica with the
//! shortest queue (by queued tokens), run prefill + KV quantization, transfer their KV
//! data over the prefill instance's NIC (a FIFO resource, which is where the
//! communication bottleneck and its contention come from), optionally overlapped with
//! prefill (pipelining, Fig. 1(d)), wait for decode memory if none is available (the
//! CPU-swap path of §4), and then decode one token at a time under continuous batching
//! until the output length is reached.
//!
//! Per-stage *service* times come from [`hack_model::ReplicaCostModel`]; the simulator
//! adds queueing, NIC contention, memory admission control and batching, and produces
//! the per-request JCT decompositions, average time ratios and peak decode-memory
//! figures that the paper's figures and tables report.

pub mod config;
pub mod result;
pub mod sim;

pub use config::{ClusterConfig, SimulationConfig};
pub use result::{RequestRecord, SimulationResult};
pub use sim::Simulator;
