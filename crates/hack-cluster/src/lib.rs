//! # hack-cluster
//!
//! Discrete-event simulator of disaggregated LLM inference (§2, §4, §7.1 of the paper),
//! built as components on the generic [`hack_sim`] engine.
//!
//! The simulated cluster consists of prefill replicas (cheap compute GPUs: A10G, V100,
//! T4, L4 — or A100) and decode replicas (A100), sized the way §7.1 sizes them.
//! Requests arrive as a Poisson process, are dispatched to the prefill replica with the
//! shortest queue (by queued tokens), run prefill + KV quantization, transfer their KV
//! data over the prefill instance's NIC (a FIFO resource, which is where the
//! communication bottleneck and its contention come from), optionally overlapped with
//! prefill (pipelining, Fig. 1(d)), wait for decode memory if none is available (the
//! CPU-swap path of §4), and then decode one token at a time under continuous batching
//! until the output length is reached.
//!
//! Architecturally, each concern is one event-handler component on the engine —
//! `Frontend` (admission + routing), `PrefillReplica`, `NetworkFabric` (NIC
//! serialization + pipelined transfer) and `DecodeReplica` (KV memory accounting) —
//! communicating through the typed payloads in [`events`]. New serving scenarios are
//! added by introducing event types and handlers instead of editing a monolithic
//! match; fault injection ([`FailureSpec`]) is the first such scenario: a decode
//! replica dies mid-run, its in-flight requests are aborted and re-queued onto the
//! surviving fleet, and the replica optionally recovers. Multi-tenancy is the
//! second: requests carry a [`hack_workload::trace::TenantId`], and the frontend's
//! admission and prefill-scheduling decisions are pluggable policies
//! ([`policy`]: FCFS — bit-identical to the pre-policy simulator — weighted
//! round-robin, SLO-deadline EDF, and per-tenant token-bucket admission), with
//! per-tenant JCT/fairness/SLO summaries on [`SimulationResult`]. Heterogeneous
//! fleets are the third: the cluster's topology is a first-class [`FleetSpec`]
//! of [`ReplicaGroup`]s ([`fleet`]), each group carrying its own GPU kind,
//! parallelism, NIC bandwidth and cost model; the frontend's replica routing is
//! a pluggable [`policy::DispatchPolicy`] (least-loaded — bit-identical to the
//! pre-fleet router — fastest-eligible, group-affinity), and results report
//! per-group utilization/JCT ([`GroupStats`]). Every legacy constructor lowers
//! to a single-group fleet pinned bit-identical to the flat configuration.
//!
//! Per-stage *service* times come from [`hack_model::ReplicaCostModel`]; the simulator
//! adds queueing, NIC contention, memory admission control and batching, and produces
//! the per-request JCT decompositions, average time ratios and peak decode-memory
//! figures that the paper's figures and tables report.
//!
//! # RESILIENCE
//!
//! The robustness layer generalizes fault injection to topology-aware
//! correlated failures:
//!
//! * **Topology** ([`topology::TopologySpec`]): [`TopologySpec::Flat`] (the
//!   default) is the original per-NIC FIFO fabric, pinned bit- and
//!   cost-identical to the pre-topology simulator.
//!   [`TopologySpec::LinkGraph`] models replica NIC → ToR → spine tiers with
//!   per-link capacities; every KV transfer becomes a flow receiving the
//!   max-min fair share `min_l capacity(l)/flows(l)` along its five-link
//!   path, re-split on every transfer start/finish/failure.
//! * **Fault plans** ([`FaultPlan`]): a bounded schedule of typed
//!   [`FaultEvent`]s over [`FaultDomain`]s — a decode or prefill replica, a
//!   NIC, a ToR, or the spine. A switch fault atomically fails every replica
//!   behind it and cuts its fabric links; in-flight transfers crossing a dead
//!   link abort with partial progress and retry under deterministic seeded
//!   exponential backoff (at most [`topology::MAX_TRANSFER_ATTEMPTS`]
//!   attempts, then at most [`topology::MAX_READMISSIONS`] re-admissions
//!   before the request is permanently aborted). The frontend routes around
//!   dead prefill replicas and parks arrivals when the whole fleet is down.
//!   Configurations are validated at [`Simulator::try_new`] time with typed
//!   [`ConfigError`]s. The legacy single-failure [`FailureSpec`] converts via
//!   `From` and stays bit-identical.
//! * **Sensors** ([`SimulationResult`]): per-fault blast radius
//!   ([`FaultRecord`]: replicas affected, requests aborted, downtime,
//!   recovery-drain time), retry counts and a per-request attempt histogram,
//!   permanently aborted requests, and goodput while degraded. Telemetry
//!   gains fault/recovery instants and flow/retry spans (see
//!   `OBSERVABILITY.md`).
//!
//! The availability layer builds on that machinery:
//!
//! * **Link degradation**: a [`FaultEvent`] carrying a `degrade` factor runs
//!   the domain's links at a fraction of nominal capacity instead of cutting
//!   them — flows re-split to the smaller max-min shares, dispatch
//!   de-prioritizes replicas behind degraded decode paths, nothing aborts,
//!   and [`SimulationResult`] reports the exposure (`degraded_link_secs`,
//!   `throughput_loss_gbps_s`).
//! * **Redundant spines with ECMP** ([`LinkGraphSpec::redundant`]): the
//!   fabric generalizes to N spine blocks; each flow is pinned to one by a
//!   deterministic hash of its request id, and a spine fault *reroutes* the
//!   surviving in-flight flows across the remaining blocks
//!   (`rerouted_flows`) instead of aborting them. A single spine stays
//!   bit-identical to the pre-ECMP fabric.
//! * **Generated fault plans** ([`AvailabilityModel`]): per-domain-kind
//!   MTBF/MTTR specs ([`MtbfSpec`]) walk seeded exponential failure/repair
//!   processes over a [`FleetShape`] and emit a valid [`FaultPlan`] for a
//!   run horizon — Monte-Carlo availability sweeps without hand-written
//!   event lists. Retry behaviour is a config knob now ([`RetryPolicy`] on
//!   [`PolicyConfig`]), defaults bit-identical to the old constants.
//! * **Elastic fleets** ([`ScalingPolicyKind`] on [`PolicyConfig`]): an
//!   autoscaling controller ticks every [`SCALE_TICK_SECS`], asks a pluggable
//!   [`ScalingPolicy`] (queue-depth thresholds, target utilization with
//!   hysteresis, or a predictive arrival-rate EWMA) for a desired decode
//!   replica count per group, and grows/shrinks the fleet through the same
//!   event machinery faults use — scale-ups pay a per-GPU-kind provisioning
//!   delay, scale-downs drain in-flight work before powering off. Each
//!   [`ReplicaGroup`] carries a `$`/GPU-hour price, and [`SimulationResult`]
//!   turns racked uptime into cost sensors (`gpu_dollars`,
//!   `dollars_per_1k_tokens`). [`ScalingPolicyKind::Off`] (the default)
//!   instantiates no controller at all and stays bit- and cost-identical to
//!   the static fleet.
//!
//! # SESSIONS
//!
//! The session layer adds structured workloads and a prefix cache on top:
//!
//! * **Session-structured traces** ([`hack_workload::session`]): requests
//!   carry a session id, an optional parent, and a shared-prefix length;
//!   the simulator *gates* a child on its parent's terminal state (released
//!   at `max(arrival, parent completion)`), modeling chat think time and
//!   agentic tool-call joins. Parent links are validated at
//!   [`Simulator::try_new`] time ([`ConfigError::InvalidSessionParent`]).
//! * **Prefix cache** ([`CacheConfig`], [`hack_kvcache::PrefixCache`]): each
//!   decode replica keeps finished sessions' quantized KV prefixes resident
//!   under a configurable fraction of its KV budget (LRU with pinning while
//!   a descendant is in flight). A hit skips the shared prefix's prefill
//!   compute *and* its fabric transfer and shrinks the decode reservation;
//!   resident bytes are charged to the same `kv_used` accounting decode
//!   reservations use, which can reclaim them on demand. Results report hit
//!   rate, bytes saved, prefill seconds avoided and per-group occupancy;
//!   telemetry gains `prefix_hit`/`prefix_miss`/`prefix_evicted` (see
//!   `OBSERVABILITY.md`). [`CacheConfig::Off`] (the default) instantiates no
//!   cache state and stays bit- and cost-identical to the pre-cache
//!   simulator.
//! * **Session-affinity dispatch** ([`DispatchPolicyKind::SessionAffinity`]):
//!   routes a session's follow-ups to the prefill replica that served it
//!   last, spilling to the least-loaded replica when the pinned one's
//!   backlog exceeds a load-spill threshold.

pub mod cache;
mod components;
pub mod config;
pub mod events;
pub mod fleet;
pub mod policy;
pub mod result;
pub mod sim;
pub mod telemetry;
pub mod topology;

pub use cache::{CacheConfig, CacheSettings};
pub use components::scaling::SCALE_TICK_SECS;
pub use config::{ClusterConfig, FailureSpec, SimulationConfig};
pub use fleet::{FleetSpec, GroupSet, ReplicaGroup, MAX_GROUPS};
pub use policy::{
    AdmissionPolicy, AdmissionPolicyKind, DispatchPolicy, DispatchPolicyKind, GroupScalingView,
    PolicyConfig, ReplicaLoad, ScalingPolicy, ScalingPolicyKind, SchedulingPolicy,
    SchedulingPolicyKind, TenantClass, TenantClasses,
};
pub use result::{FaultRecord, GroupStats, RequestRecord, SimulationResult};
pub use sim::{CostMode, Simulator};
pub use telemetry::{TelemetryConfig, TelemetrySettings};
pub use topology::{
    AvailabilityModel, ConfigError, FaultDomain, FaultEvent, FaultPlan, FleetShape, LinkGraphSpec,
    MtbfSpec, RetryPolicy, TopologySpec, MAX_FAULTS,
};
