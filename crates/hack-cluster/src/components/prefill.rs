//! The prefill lifecycle of one replica.

use crate::components::ClusterState;
use crate::events::{PrefillFinished, TransferCompleted};
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// One prefill replica: serves its queue one request at a time (prefill +
/// quantization under its group's cost model), optionally starting the KV
/// transfer concurrently with prefill (pipelining, Fig. 1(d)), and hands
/// finished requests to the transfer/decode pipeline.
pub(crate) struct PrefillReplica {
    pub index: usize,
    pub cluster: Rc<RefCell<ClusterState>>,
}

/// Starts the next queued prefill on `replica`, if any — *which* queued
/// request is the run's [`crate::policy::SchedulingPolicy`] decision: the
/// policy picks a tenant from the per-tenant sub-queue heads (O(tenants)) and
/// the tenant's earliest-queued request pops in O(1). Built-in FCFS (no
/// policy) pops the FIFO head, reproducing the pre-policy simulator
/// bit-for-bit.
///
/// Free function (rather than a method of [`PrefillReplica`]) because both the
/// frontend (on arrival at an idle replica) and the replica itself (on
/// completion) trigger it while holding the shared state.
pub(crate) fn start_prefill(cs: &mut ClusterState, replica: usize, now: f64) {
    let next = {
        // Split-borrow the policy away from the queue it inspects.
        let ClusterState {
            scheduling,
            prefill,
            requests,
            config,
            ..
        } = cs;
        let queue = &mut prefill[replica].queue;
        match scheduling {
            // Built-in FCFS: the pre-policy hot path, no policy call.
            None => queue.pop_front(),
            Some(_) if queue.is_empty() => None,
            Some(policy) => {
                let heads = queue.heads();
                let tenant = policy.select_tenant(&heads, requests, &config.policy.tenants, now);
                queue.pop_tenant(tenant)
            }
        }
    };
    let Some(req) = next else {
        return;
    };
    cs.prefill[replica].busy = true;
    let group = cs.prefill[replica].group;
    let request = cs.requests[req];

    cs.states[req].prefill_wait = (now - request.arrival).max(0.0);
    let (prefill_t, quant_t) = cs.prefill_service_times(group, request.input_len);
    cs.states[req].prefill_time = prefill_t;
    cs.states[req].quant_time = quant_t;
    if let Some(tel) = &mut cs.tel {
        tel.tenant_dequeued(request.tenant.index());
        let wait_start = now - cs.states[req].prefill_wait;
        tel.prefill_started(replica, req, wait_start, now, prefill_t, quant_t);
    }

    // Pipelining: start the KV transfer concurrently with prefill when a decode
    // replica can take the request right now (Fig. 1(d): this hides communication
    // only while the transfer is shorter than prefill and memory is available).
    if cs.config.cluster.pipelining {
        let bytes = cs.kv_reserve_bytes(&request);
        if let Some(target) = cs.best_decode_replica(bytes) {
            cs.decode[target].kv_used += bytes;
            cs.decode[target].peak_kv = cs.decode[target].peak_kv.max(cs.decode[target].kv_used);
            cs.states[req].decode_replica = target;
            cs.states[req].kv_reserve_bytes = bytes;
            cs.states[req].reserved = true;
            let duration = cs.transfer_duration(group, cs.decode[target].group, &request);
            let end = cs.fabric.reserve_nic(replica, now, duration);
            cs.states[req].pipelined_transfer_end = Some(end);
            if let Some(tel) = &mut cs.tel {
                tel.transfer_started(replica, req, now, end - duration, end);
            }
        }
    }

    cs.prefill_ctxs[replica].emit_at(
        PrefillFinished { req },
        cs.prefill_ctxs[replica].id(),
        now + prefill_t + quant_t,
    );
}

impl EventHandler for PrefillReplica {
    fn on(&mut self, event: Event) {
        let Some(&PrefillFinished { req }) = event.get::<PrefillFinished>() else {
            return;
        };
        let now = event.time;
        let i = self.index;
        let mut cs = self.cluster.borrow_mut();

        cs.prefill[i].busy = false;
        cs.prefill[i].queued_tokens = cs.prefill[i]
            .queued_tokens
            .saturating_sub(cs.requests[req].input_len);

        // Hand the request to the transfer/decode pipeline.
        if let Some(transfer_end) = cs.states[req].pipelined_transfer_end {
            // Pipelined: the transfer has been running during prefill; only
            // the non-overlapped part counts as communication time.
            let ready = transfer_end.max(now);
            cs.states[req].comm_time = (transfer_end - now).max(0.0);
            let target = cs.states[req].decode_replica;
            let dst = cs.decode_ctxs[target].id();
            cs.fabric.deliver(TransferCompleted { req }, dst, ready);
        } else {
            cs.try_dispatch_to_decode(req, now);
        }

        // Start the next queued prefill, if any.
        if !cs.prefill[i].queue.is_empty() {
            start_prefill(&mut cs, i, now);
        }
    }
}
