//! The prefill lifecycle of one replica — including prefill-side failures.

use crate::components::{frontend, ClusterState};
use crate::events::{
    PrefillFailed, PrefillFinished, PrefillRecovered, RequestArrived, TransferCompleted,
};
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// One prefill replica: serves its queue one request at a time (prefill +
/// quantization under its group's cost model), optionally starting the KV
/// transfer concurrently with prefill (pipelining, Fig. 1(d)), and hands
/// finished requests to the transfer/decode pipeline. Under fault injection it
/// fails (aborting its in-service prefill and re-routing its queue) and
/// recovers (draining requests parked while the whole fleet was down).
pub(crate) struct PrefillReplica {
    pub index: usize,
    pub cluster: Rc<RefCell<ClusterState>>,
}

/// Starts the next queued prefill on `replica`, if any — *which* queued
/// request is the run's [`crate::policy::SchedulingPolicy`] decision: the
/// policy picks a tenant from the per-tenant sub-queue heads (O(tenants)) and
/// the tenant's earliest-queued request pops in O(1). Built-in FCFS (no
/// policy) pops the FIFO head, reproducing the pre-policy simulator
/// bit-for-bit.
///
/// Free function (rather than a method of [`PrefillReplica`]) because both the
/// frontend (on arrival at an idle replica) and the replica itself (on
/// completion) trigger it while holding the shared state.
pub(crate) fn start_prefill(cs: &mut ClusterState, replica: usize, now: f64) {
    let next = {
        // Split-borrow the policy away from the queue it inspects.
        let ClusterState {
            scheduling,
            prefill,
            requests,
            config,
            ..
        } = cs;
        let queue = &mut prefill[replica].queue;
        match scheduling {
            // Built-in FCFS: the pre-policy hot path, no policy call.
            None => queue.pop_front(),
            Some(_) if queue.is_empty() => None,
            Some(policy) => {
                let heads = queue.heads();
                let tenant = policy.select_tenant(&heads, requests, &config.policy.tenants, now);
                queue.pop_tenant(tenant)
            }
        }
    };
    let Some(req) = next else {
        return;
    };
    cs.prefill[replica].busy = true;
    cs.prefill[replica].current = Some(req);
    let group = cs.prefill[replica].group;
    let request = cs.requests[req];

    cs.states[req].prefill_wait = (now - request.arrival).max(0.0);
    // Session prefix lookup: on a hit, prefill (and later the KV transfer)
    // covers only the suffix past the cached prefix.
    let prompt = cs.resolve_prefix(req, group, now);
    let (prefill_t, quant_t) = cs.prefill_service_times(group, prompt);
    cs.states[req].prefill_time = prefill_t;
    cs.states[req].quant_time = quant_t;
    if let Some(tel) = &mut cs.tel {
        tel.tenant_dequeued(request.tenant.index());
        let wait_start = now - cs.states[req].prefill_wait;
        tel.prefill_started(replica, req, wait_start, now, prefill_t, quant_t);
    }

    // Pipelining: start the KV transfer concurrently with prefill when a decode
    // replica can take the request right now (Fig. 1(d): this hides communication
    // only while the transfer is shorter than prefill and memory is available).
    // On the link-graph fabric the flow only pipelines over a live path; a dead
    // path falls back to the dispatch at `PrefillFinished` (and its retries).
    // Prefix hits skip pipelining: their placement is forced onto the replica
    // holding the prefix, which the post-prefill dispatch handles.
    if cs.config.cluster.pipelining && cs.states[req].prefix.is_none() {
        let bytes = cs.kv_reserve_bytes(&request);
        let target = cs
            .best_decode_replica(bytes)
            .filter(|&t| !cs.fabric.graph_enabled() || cs.fabric.path_alive(replica, t));
        if let Some(target) = target {
            cs.decode[target].kv_used += bytes;
            cs.decode[target].peak_kv = cs.decode[target].peak_kv.max(cs.decode[target].kv_used);
            cs.decode[target].reservations += 1;
            cs.states[req].decode_replica = target;
            cs.states[req].kv_reserve_bytes = bytes;
            cs.states[req].reserved = true;
            if cs.fabric.graph_enabled() {
                // The flow races prefill: an early landing is recorded in
                // `pipelined_transfer_end`; otherwise `PrefillFinished`
                // exposes the remaining communication time.
                let volume = cs.transfer_volume(group, cs.decode[target].group, req);
                let started = cs.fabric.start_flow(
                    req,
                    replica,
                    target,
                    cs.decode_ctxs[target].id(),
                    volume,
                    now,
                );
                debug_assert!(started, "pipelined path checked alive");
                if let Some(tel) = &mut cs.tel {
                    tel.flow_started(replica);
                }
            } else {
                let duration = cs.transfer_duration(group, cs.decode[target].group, &request);
                let end = cs.fabric.reserve_nic(replica, now, duration);
                cs.states[req].pipelined_transfer_end = Some(end);
                if let Some(tel) = &mut cs.tel {
                    tel.transfer_started(replica, req, now, end - duration, end);
                }
            }
        }
    }

    let finish = cs.prefill_ctxs[replica].emit_at(
        PrefillFinished { req },
        cs.prefill_ctxs[replica].id(),
        now + prefill_t + quant_t,
    );
    cs.states[req].pending_prefill = Some(finish);
}

impl PrefillReplica {
    fn on_finished(&self, req: usize, now: f64) {
        let i = self.index;
        let mut cs = self.cluster.borrow_mut();

        cs.prefill[i].busy = false;
        cs.prefill[i].current = None;
        cs.states[req].pending_prefill = None;
        cs.prefill[i].queued_tokens = cs.prefill[i]
            .queued_tokens
            .saturating_sub(cs.requests[req].input_len);

        // Hand the request to the transfer/decode pipeline.
        if let Some(transfer_end) = cs.states[req].pipelined_transfer_end {
            // Pipelined: the transfer has been running during prefill; only
            // the non-overlapped part counts as communication time. (On the
            // link-graph fabric this is the flow-landed-early case, so the
            // exposed part is zero.)
            let ready = transfer_end.max(now);
            cs.states[req].comm_time += (transfer_end - now).max(0.0);
            let target = cs.states[req].decode_replica;
            let dst = cs.decode_ctxs[target].id();
            cs.fabric.deliver(TransferCompleted { req }, dst, ready);
        } else if cs.states[req].reserved {
            // Link-graph pipelined flow still in flight (or in retry
            // backoff): communication is exposed from here on; the
            // `FlowCompleted` delivery — or the retry chain — finishes the
            // hand-off.
            cs.states[req].transfer_start = Some(now);
        } else {
            cs.try_dispatch_to_decode(req, now);
        }

        // Start the next queued prefill, if any.
        if !cs.prefill[i].queue.is_empty() {
            start_prefill(&mut cs, i, now);
        }
    }

    fn on_failed(&self, fault: usize, now: f64) {
        let i = self.index;
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        cs.injected_failures += 1;
        cs.prefill[i].failed = true;
        if let Some(tel) = &mut cs.tel {
            tel.prefill_failed(i, now);
        }

        // Abort the in-service prefill (and its pipelined transfer, if any):
        // the request re-enters admission from scratch.
        if let Some(req) = cs.prefill[i].current.take() {
            cs.prefill[i].busy = false;
            cs.prefill[i].queued_tokens = cs.prefill[i]
                .queued_tokens
                .saturating_sub(cs.requests[req].input_len);
            if let Some(ev) = cs.states[req].pending_prefill.take() {
                cs.prefill_ctxs[i].cancel_event(ev);
            }
            if let Some(flow) = cs.fabric.abort_flow(req, now) {
                if let Some(tel) = &mut cs.tel {
                    tel.transfer_aborted(flow.src, req, flow.started, now);
                }
            } else if cs.states[req].pipelined_transfer_end.is_some() {
                // Flat pipelined reservation (or an early-landed flow): the
                // in-flight gauge was counted up when it started.
                if let Some(tel) = &mut cs.tel {
                    tel.transfer_landed();
                }
            }
            if cs.states[req].reserved {
                let target = cs.states[req].decode_replica;
                cs.decode[target].kv_used -= cs.states[req].kv_reserve_bytes;
                cs.decode[target].reservations -= 1;
                cs.states[req].reserved = false;
                if cs.decode[target].draining {
                    cs.maybe_finish_drain(target, now);
                }
            }
            // The re-admitted request re-runs prefill from scratch and will
            // re-resolve (and re-pin) its prefix there.
            cs.release_hit(req);
            cs.states[req].reset_for_readmission();
            cs.states[req].requeues += 1;
            cs.requeued += 1;
            cs.fault_tallies[fault].requests_aborted += 1;
            let frontend_id = cs.frontend_id.expect("frontend registered before events");
            cs.fabric.deliver(RequestArrived { req }, frontend_id, now);
            if let Some(tel) = &mut cs.tel {
                tel.requeued(cs.states[req].decode_replica, req, now);
            }
        }

        // Re-route the queue onto live replicas (or park requests in
        // `waiting_for_prefill` when the whole fleet is down).
        let queued = cs.prefill[i].queue.drain_all();
        cs.prefill[i].queued_tokens = 0;
        for r in queued {
            frontend::dispatch_to_prefill(cs, r, now);
        }
    }

    fn on_recovered(&self, now: f64) {
        let i = self.index;
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        cs.prefill[i].failed = false;
        if let Some(tel) = &mut cs.tel {
            tel.prefill_recovered(i, now);
        }
        // Dispatch requests that arrived while the whole prefill fleet was
        // down.
        let parked: Vec<usize> = cs.waiting_for_prefill.drain(..).collect();
        for r in parked {
            frontend::dispatch_to_prefill(cs, r, now);
        }
    }
}

impl EventHandler for PrefillReplica {
    fn on(&mut self, event: Event) {
        let now = event.time;
        if let Some(&PrefillFinished { req }) = event.get::<PrefillFinished>() {
            self.on_finished(req, now);
        } else if let Some(&PrefillFailed { fault }) = event.get::<PrefillFailed>() {
            self.on_failed(fault, now);
        } else if event.is::<PrefillRecovered>() {
            self.on_recovered(now);
        }
    }
}
