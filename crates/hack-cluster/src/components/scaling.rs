//! The decode-fleet autoscaling controller.
//!
//! A dedicated engine component on the same self-addressed tick pattern as
//! the telemetry sampler: every [`SCALE_TICK_SECS`] it snapshots each decode
//! group through the engine-probe path, asks the run's
//! [`ScalingPolicy`](crate::policy::ScalingPolicy) for a desired replica
//! count, clamps it to `[1, capacity]`, and turns the delta into the same
//! event machinery fault injection uses:
//!
//! * **Scale-up** picks the lowest-index scaled-out replica of the group,
//!   charges the group's provisioning delay
//!   ([`ReplicaGroup::provision_delay_s`](crate::fleet::ReplicaGroup)), and
//!   delivers [`ReplicaProvisioned`] to itself when the delay elapses — only
//!   then does the replica become routable (and billable).
//! * **Scale-down** marks the highest-index live replica draining: it admits
//!   nothing new, finishes its in-flight decodes and inbound transfers, and
//!   powers down (closing its billed interval) the instant it goes idle.
//!
//! The controller exists only in runs with a scaling policy
//! ([`ScalingPolicyKind::Off`](crate::policy::ScalingPolicyKind) instantiates
//! to no controller at all), draws no randomness, and reaches the cluster
//! blackboard only through the probe — so the off path stays bit- and
//! cost-identical to the pre-scaling simulator, and an inert policy (one that
//! always answers "hold") leaves the simulation outcome bit-identical too.

use crate::components::ClusterState;
use crate::events::{ReplicaProvisioned, ScaleTick};
use crate::policy::{GroupScalingView, ScalingPolicy};
use hack_sim::{Event, EventHandler, SimulationContext};
use std::cell::Cell;
use std::rc::Rc;

/// Period of the scaling control loop in simulated seconds (matches the
/// telemetry sampler's default cadence).
pub const SCALE_TICK_SECS: f64 = 10.0;

/// The autoscaling engine component. Owns the run's scaling policy and the
/// order book of in-flight provisioning; everything else lives on the
/// cluster blackboard.
pub(crate) struct ScalingController {
    pub ctx: SimulationContext,
    pub policy: Box<dyn ScalingPolicy>,
    /// Per-decode-replica in-flight scale-up orders (ordered but not yet
    /// provisioned). Controller-local: the blackboard only learns about a
    /// replica when it actually joins.
    pub ordered: Vec<bool>,
    /// Trace arrivals already counted by previous ticks (arrival-rate input
    /// of the predictive policy).
    pub arrivals_seen: usize,
    /// Control events delivered so far (ticks *and* provisioning landings),
    /// shared with the run loop: a step that only delivered control-plane
    /// traffic must not advance the reported makespan, and is where the loop
    /// checks whether the simulation proper has gone quiet.
    pub ticks: Rc<Cell<u64>>,
}

impl ScalingController {
    fn on_tick(&mut self) {
        self.ticks.set(self.ticks.get() + 1);
        // Orders decided this tick: (replica, provisioning delay). Collected
        // inside the probe, emitted after it (the probe borrows the engine).
        let mut orders: Vec<(usize, f64)> = Vec::new();
        let policy = &mut self.policy;
        let ordered = &mut self.ordered;
        let arrivals_seen = &mut self.arrivals_seen;
        self.ctx.probe::<ClusterState, _>(|now, cs| {
            // Trace arrivals since the previous tick (arrival times ascend).
            let seen = cs.requests.partition_point(|r| r.arrival <= now);
            let arrived = seen - *arrivals_seen;
            *arrivals_seen = seen;

            let fleet = cs.config.cluster.fleet.decode;
            let mut base = 0usize;
            for g in 0..fleet.len() {
                let group = *fleet.get(g);
                let replicas = base..base + group.replicas;
                base += group.replicas;

                let live = replicas
                    .clone()
                    .filter(|&r| cs.decode[r].dispatchable())
                    .count();
                let provisioning = replicas.clone().filter(|&r| ordered[r]).count();
                let draining = replicas.clone().filter(|&r| cs.decode[r].draining).count();
                let view = GroupScalingView {
                    group: g,
                    live,
                    provisioning,
                    draining,
                    capacity: group.replicas,
                    active: replicas.clone().map(|r| cs.decode[r].active).sum(),
                    batch: cs.decode_models[g].params.decode_batch.max(1.0) as usize,
                    // The memory-wait queue is shared across decode groups;
                    // each group's view sees the whole backlog (exact for the
                    // single-group fleets the experiments sweep).
                    queued: cs.waiting_for_memory.len(),
                    arrived,
                };
                let desired = policy.desired(&view, now).clamp(1, group.replicas);
                let committed = live + provisioning;

                if desired > committed {
                    // Wake scaled-out replicas, lowest index first, while any
                    // remain (failed replicas are racked, not scaled out, so
                    // they are never double-ordered).
                    let mut wanted = desired - committed;
                    for r in replicas.clone() {
                        if wanted == 0 {
                            break;
                        }
                        if cs.decode[r].scaled_out && !ordered[r] {
                            ordered[r] = true;
                            wanted -= 1;
                            cs.scale_ups += 1;
                            if let Some(tel) = &mut cs.tel {
                                tel.replica_provisioning(r, now);
                            }
                            orders.push((r, group.provision_delay_s));
                        }
                    }
                } else if desired < committed {
                    // Drain live replicas, highest index first (provisioning
                    // orders cannot be recalled — the instance launch is
                    // already paid for).
                    let mut excess = committed - desired;
                    for r in replicas.clone().rev() {
                        if excess == 0 {
                            break;
                        }
                        if cs.decode[r].dispatchable() {
                            cs.decode[r].draining = true;
                            excess -= 1;
                            // Already idle: the drain completes on the spot.
                            cs.maybe_finish_drain(r, now);
                        }
                    }
                }
            }
        });
        for (replica, delay) in orders {
            self.ctx.emit_self(ReplicaProvisioned { replica }, delay);
        }
        self.ctx.emit_self(ScaleTick, SCALE_TICK_SECS);
    }

    fn on_provisioned(&mut self, replica: usize) {
        self.ticks.set(self.ticks.get() + 1);
        self.ordered[replica] = false;
        self.ctx
            .probe::<ClusterState, _>(|now, cs| cs.replica_join(replica, now));
    }
}

impl EventHandler for ScalingController {
    fn on(&mut self, event: Event) {
        if event.is::<ScaleTick>() {
            self.on_tick();
        } else if let Some(&ReplicaProvisioned { replica }) = event.get::<ReplicaProvisioned>() {
            self.on_provisioned(replica);
        }
    }
}
