//! Admission and routing of arriving requests.

use crate::components::{prefill, ClusterState};
use crate::events::RequestArrived;
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// The cluster frontend: receives [`RequestArrived`] events, asks the run's
/// [`crate::policy::AdmissionPolicy`] whether the request enters at all, and
/// dispatches admitted requests to the prefill replica with the shortest queue
/// by queued tokens (§7.1), kicking the replica if it is idle. Which queued
/// request a replica serves next is the scheduling policy's decision (see
/// [`prefill::start_prefill`]).
pub(crate) struct Frontend {
    pub cluster: Rc<RefCell<ClusterState>>,
}

impl Frontend {
    /// Shortest-queue routing: pending tokens per replica, counting the
    /// in-service request of a busy replica at this request's own length.
    fn route(cs: &ClusterState, req: usize) -> usize {
        (0..cs.prefill.len())
            .min_by_key(|&r| {
                cs.prefill[r].queued_tokens
                    + if cs.prefill[r].busy {
                        cs.requests[req].input_len
                    } else {
                        0
                    }
            })
            .expect("cluster has at least one prefill replica")
    }
}

impl EventHandler for Frontend {
    fn on(&mut self, event: Event) {
        let Some(&RequestArrived { req }) = event.get::<RequestArrived>() else {
            return;
        };
        let now = event.time;
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        // `None` is the built-in admit-everything default: no policy call on
        // the arrival hot path.
        if let Some(admission) = cs.admission.as_mut() {
            if !admission.admit(&cs.requests[req], now) {
                cs.rejected += 1;
                cs.rejected_per_tenant[cs.requests[req].tenant.index()] += 1;
                return;
            }
        }
        let replica = Self::route(cs, req);
        cs.states[req].prefill_replica = replica;
        cs.prefill[replica].queue.push_back(req);
        cs.prefill[replica].queued_tokens += cs.requests[req].input_len;
        if !cs.prefill[replica].busy {
            prefill::start_prefill(cs, replica, now);
        }
    }
}
