//! Admission and replica-aware dispatch of arriving requests — and, under
//! fault injection, the fabric fault/recovery and transfer-retry control
//! events.

use crate::components::{prefill, ClusterState};
use crate::events::{FabricFault, FabricRecovered, RequestArrived, TransferRetry};
use crate::policy::ReplicaLoad;
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// The cluster frontend: receives [`RequestArrived`] events, asks the run's
/// [`crate::policy::AdmissionPolicy`] whether the request enters at all, and
/// dispatches admitted requests onto the prefill fleet — by default to the
/// live replica with the shortest queue by queued tokens (§7.1), or through
/// the run's [`crate::policy::DispatchPolicy`], which sees every replica's
/// group, backlog and per-group service speed (heterogeneous fleets). The
/// chosen replica is kicked if idle; *which* queued request a replica serves
/// next is the scheduling policy's decision (see [`prefill::start_prefill`]).
///
/// The frontend is also the addressee of the fault-plan control events that
/// concern no single replica: [`FabricFault`]/[`FabricRecovered`] (link
/// liveness and flow aborts) and [`TransferRetry`] (the seeded-backoff retry
/// chain of aborted KV transfers).
pub(crate) struct Frontend {
    pub cluster: Rc<RefCell<ClusterState>>,
}

/// Dispatches an admitted request onto the prefill fleet (or parks it in
/// `waiting_for_prefill` when every replica is down — drained on recovery).
/// Shared by the arrival path and prefill-failure re-routing.
pub(crate) fn dispatch_to_prefill(cs: &mut ClusterState, req: usize, now: f64) {
    let replica = if cs.dispatch.is_some() {
        Frontend::route_with_policy(cs, req, now)
    } else {
        Frontend::route(cs, req)
    };
    let Some(replica) = replica else {
        cs.waiting_for_prefill.push_back(req);
        return;
    };
    cs.states[req].prefill_replica = replica;
    let tenant = cs.requests[req].tenant.index();
    cs.prefill[replica].queue.push(req, tenant);
    cs.prefill[replica].queued_tokens += cs.requests[req].input_len;
    if !cs.prefill[replica].busy {
        prefill::start_prefill(cs, replica, now);
    }
}

impl Frontend {
    /// Built-in least-loaded routing (the pre-fleet default, no policy call):
    /// pending tokens per replica, counting the in-service request of a busy
    /// replica at this request's own length. Failed replicas never qualify;
    /// `None` means the whole fleet is down.
    fn route(cs: &ClusterState, req: usize) -> Option<usize> {
        (0..cs.prefill.len())
            .filter(|&r| !cs.prefill[r].failed)
            .min_by_key(|&r| {
                cs.prefill[r].queued_tokens
                    + if cs.prefill[r].busy {
                        cs.requests[req].input_len
                    } else {
                        0
                    }
            })
    }

    /// Policy-driven routing: assemble the per-replica load views (group,
    /// backlog, this request's estimated service time on the replica's group)
    /// and delegate. Only non-default dispatch policies pay this. A policy
    /// that routes onto a failed replica falls back to built-in live-replica
    /// routing (policies predate fault awareness).
    fn route_with_policy(cs: &mut ClusterState, req: usize, now: f64) -> Option<usize> {
        let mut policy = cs
            .dispatch
            .take()
            .expect("route_with_policy requires an active dispatch policy");
        let input_len = cs.requests[req].input_len;
        let loads: Vec<ReplicaLoad> = cs
            .prefill
            .iter()
            .map(|p| {
                let (prefill_t, quant_t) = cs.prefill_service_times(p.group, input_len);
                ReplicaLoad {
                    group: p.group,
                    queued_tokens: p.queued_tokens,
                    queue_len: p.queue.len(),
                    busy: p.busy,
                    service_secs: prefill_t + quant_t,
                }
            })
            .collect();
        let replica = policy.route(&loads, &cs.requests[req], now);
        cs.dispatch = Some(policy);
        assert!(
            replica < cs.prefill.len(),
            "dispatch policy routed to replica {replica} of {}",
            cs.prefill.len()
        );
        if cs.prefill[replica].failed {
            return Self::route(cs, req);
        }
        Some(replica)
    }

    fn on_arrival(&self, req: usize, now: f64) {
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        // `None` is the built-in admit-everything default: no policy call on
        // the arrival hot path.
        if let Some(admission) = cs.admission.as_mut() {
            if !admission.admit(&cs.requests[req], now) {
                cs.rejected += 1;
                cs.states[req].rejected = true;
                cs.rejected_per_tenant[cs.requests[req].tenant.index()] += 1;
                if let Some(tel) = &mut cs.tel {
                    tel.request_rejected(req, now);
                }
                // Rejection is terminal: children gated on this request are
                // released rather than orphaned.
                cs.release_children(req, now);
                return;
            }
        }
        let tenant = cs.requests[req].tenant.index();
        if let Some(tel) = &mut cs.tel {
            tel.request_arrived(req, now);
            tel.tenant_enqueued(tenant);
        }
        dispatch_to_prefill(cs, req, now);
    }

    /// A fault plan event hit this fault's links. A binary fault cuts them:
    /// every in-flight flow crossing a dead endpoint aborts with partial
    /// progress and enters the retry chain, while flows that only lost their
    /// spine block ECMP-reroute onto a surviving spine. A degradation lowers
    /// the links' capacity instead: nothing aborts, flows just re-split at
    /// the slower rates.
    fn on_fabric_fault(&self, fault: usize, now: f64) {
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        cs.injected_failures += 1;
        let event = *cs.config.faults.get(fault);
        let links = cs.fabric.links_for_domain(event.domain);
        if let Some(factor) = event.degrade {
            cs.fabric.set_degrade(&links, factor, now);
            if let Some(tel) = &mut cs.tel {
                tel.link_degraded(fault, now);
            }
            return;
        }
        cs.fabric.set_links(&links, false);
        if let Some(tel) = &mut cs.tel {
            tel.fabric_fault(fault, now);
        }
        let (aborted, rerouted) = cs.fabric.abort_dead_flows(now);
        for (req, src) in rerouted {
            if let Some(tel) = &mut cs.tel {
                tel.flow_rerouted(src, req, now);
            }
        }
        for (req, flow) in aborted {
            cs.fault_tallies[fault].requests_aborted += 1;
            cs.states[req].transfer_remaining = Some(flow.remaining);
            if let Some(tel) = &mut cs.tel {
                tel.transfer_aborted(flow.src, req, flow.started, now);
            }
            cs.schedule_retry(req, now);
        }
    }

    fn on_fabric_recovered(&self, fault: usize, now: f64) {
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        let event = *cs.config.faults.get(fault);
        let links = cs.fabric.links_for_domain(event.domain);
        if event.degrade.is_some() {
            cs.fabric.set_degrade(&links, 1.0, now);
            if let Some(tel) = &mut cs.tel {
                tel.link_restored(fault, now);
            }
            return;
        }
        cs.fabric.set_links(&links, true);
        if let Some(tel) = &mut cs.tel {
            tel.fabric_recovered(fault, now);
        }
    }

    /// The seeded backoff of an aborted transfer elapsed: restart the flow
    /// over the surviving path, re-enter the backoff if the path is still
    /// dead, or — when the reservation died with its replica — dispatch the
    /// request afresh.
    fn on_transfer_retry(&self, req: usize, now: f64) {
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        if cs.states[req].done || cs.states[req].abandoned {
            return;
        }
        // A cleared `transfer_remaining` marks the retry as stale (the
        // request was re-dispatched through another path meanwhile).
        let Some(volume) = cs.states[req].transfer_remaining else {
            return;
        };
        if !cs.states[req].reserved {
            // The target decode replica failed during the backoff and took
            // the reservation with it: start the dispatch over.
            cs.states[req].transfer_remaining = None;
            if let Some(t0) = cs.states[req].transfer_start.take() {
                cs.states[req].comm_time += now - t0;
            }
            cs.try_dispatch_to_decode(req, now);
            return;
        }
        let replica = cs.states[req].prefill_replica;
        let target = cs.states[req].decode_replica;
        if cs.fabric.path_alive(replica, target) {
            cs.states[req].transfer_remaining = None;
            // Note: `transfer_start` is left untouched — the communication
            // charging epoch spans aborts and backoff gaps.
            let started = cs.fabric.start_flow(
                req,
                replica,
                target,
                cs.decode_ctxs[target].id(),
                volume,
                now,
            );
            debug_assert!(started, "path checked alive");
            if let Some(tel) = &mut cs.tel {
                tel.flow_started(replica);
            }
        } else {
            cs.schedule_retry(req, now);
        }
    }
}

impl EventHandler for Frontend {
    fn on(&mut self, event: Event) {
        let now = event.time;
        if let Some(&RequestArrived { req }) = event.get::<RequestArrived>() {
            self.on_arrival(req, now);
        } else if let Some(&TransferRetry { req }) = event.get::<TransferRetry>() {
            self.on_transfer_retry(req, now);
        } else if let Some(&FabricFault { fault }) = event.get::<FabricFault>() {
            self.on_fabric_fault(fault, now);
        } else if let Some(&FabricRecovered { fault }) = event.get::<FabricRecovered>() {
            self.on_fabric_recovered(fault, now);
        }
    }
}
