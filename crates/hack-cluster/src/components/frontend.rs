//! Admission and replica-aware dispatch of arriving requests.

use crate::components::{prefill, ClusterState};
use crate::events::RequestArrived;
use crate::policy::ReplicaLoad;
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// The cluster frontend: receives [`RequestArrived`] events, asks the run's
/// [`crate::policy::AdmissionPolicy`] whether the request enters at all, and
/// dispatches admitted requests onto the prefill fleet — by default to the
/// replica with the shortest queue by queued tokens (§7.1), or through the
/// run's [`crate::policy::DispatchPolicy`], which sees every replica's group,
/// backlog and per-group service speed (heterogeneous fleets). The chosen
/// replica is kicked if idle; *which* queued request a replica serves next is
/// the scheduling policy's decision (see [`prefill::start_prefill`]).
pub(crate) struct Frontend {
    pub cluster: Rc<RefCell<ClusterState>>,
}

impl Frontend {
    /// Built-in least-loaded routing (the pre-fleet default, no policy call):
    /// pending tokens per replica, counting the in-service request of a busy
    /// replica at this request's own length.
    fn route(cs: &ClusterState, req: usize) -> usize {
        (0..cs.prefill.len())
            .min_by_key(|&r| {
                cs.prefill[r].queued_tokens
                    + if cs.prefill[r].busy {
                        cs.requests[req].input_len
                    } else {
                        0
                    }
            })
            .expect("cluster has at least one prefill replica")
    }

    /// Policy-driven routing: assemble the per-replica load views (group,
    /// backlog, this request's estimated service time on the replica's group)
    /// and delegate. Only non-default dispatch policies pay this.
    fn route_with_policy(cs: &mut ClusterState, req: usize, now: f64) -> usize {
        let mut policy = cs
            .dispatch
            .take()
            .expect("route_with_policy requires an active dispatch policy");
        let input_len = cs.requests[req].input_len;
        let loads: Vec<ReplicaLoad> = cs
            .prefill
            .iter()
            .map(|p| {
                let (prefill_t, quant_t) = cs.prefill_service_times(p.group, input_len);
                ReplicaLoad {
                    group: p.group,
                    queued_tokens: p.queued_tokens,
                    queue_len: p.queue.len(),
                    busy: p.busy,
                    service_secs: prefill_t + quant_t,
                }
            })
            .collect();
        let replica = policy.route(&loads, &cs.requests[req], now);
        cs.dispatch = Some(policy);
        assert!(
            replica < cs.prefill.len(),
            "dispatch policy routed to replica {replica} of {}",
            cs.prefill.len()
        );
        replica
    }
}

impl EventHandler for Frontend {
    fn on(&mut self, event: Event) {
        let Some(&RequestArrived { req }) = event.get::<RequestArrived>() else {
            return;
        };
        let now = event.time;
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        // `None` is the built-in admit-everything default: no policy call on
        // the arrival hot path.
        if let Some(admission) = cs.admission.as_mut() {
            if !admission.admit(&cs.requests[req], now) {
                cs.rejected += 1;
                cs.rejected_per_tenant[cs.requests[req].tenant.index()] += 1;
                if let Some(tel) = &mut cs.tel {
                    tel.request_rejected(req, now);
                }
                return;
            }
        }
        // `None` dispatch is the built-in least-loaded default: no load-view
        // assembly, no policy call.
        let replica = if cs.dispatch.is_some() {
            Self::route_with_policy(cs, req, now)
        } else {
            Self::route(cs, req)
        };
        cs.states[req].prefill_replica = replica;
        let tenant = cs.requests[req].tenant.index();
        if let Some(tel) = &mut cs.tel {
            tel.request_arrived(req, now);
            tel.tenant_enqueued(tenant);
        }
        cs.prefill[replica].queue.push(req, tenant);
        cs.prefill[replica].queued_tokens += cs.requests[req].input_len;
        if !cs.prefill[replica].busy {
            prefill::start_prefill(cs, replica, now);
        }
    }
}
