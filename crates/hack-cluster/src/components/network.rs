//! NIC serialization and KV-transfer delivery.

use hack_sim::{ComponentId, SimulationContext};
use std::any::Any;

/// The transfer path between the prefill and decode fleets.
///
/// Each prefill replica sources its KV transfers from one NIC, modelled as a
/// FIFO resource (`nic_free_at`): a transfer starts when the NIC frees up and
/// occupies it for the wire time, which is where the communication bottleneck
/// and its contention come from. The wire time itself is group-aware — see
/// [`super::ClusterState::transfer_duration`], which memoizes it per
/// (prefill group, decode group, prompt length) and bottlenecks on the slower
/// of the two groups' NICs. The fabric is a passive component — it emits
/// [`crate::events::TransferCompleted`] events on behalf of the transfer path
/// but receives none itself.
pub(crate) struct NetworkFabric {
    ctx: SimulationContext,
    /// Earliest time each prefill replica's NIC is free again.
    nic_free_at: Vec<f64>,
}

impl NetworkFabric {
    pub fn new(ctx: SimulationContext, prefill_replicas: usize) -> Self {
        Self {
            ctx,
            nic_free_at: vec![0.0; prefill_replicas],
        }
    }

    /// Serializes a `duration`-second transfer onto prefill replica `replica`'s
    /// NIC starting no earlier than `now`; returns the completion time.
    pub fn reserve_nic(&mut self, replica: usize, now: f64, duration: f64) -> f64 {
        let start = self.nic_free_at[replica].max(now);
        let end = start + duration;
        self.nic_free_at[replica] = end;
        end
    }

    /// Emits `payload` to `dst` at the absolute time `at` (the moment the KV
    /// data fully lands on the decode side).
    pub fn deliver<T: Any>(&self, payload: T, dst: ComponentId, at: f64) {
        self.ctx.emit_at(payload, dst, at);
    }
}
