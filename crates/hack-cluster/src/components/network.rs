//! NIC serialization and KV-transfer delivery.
//!
//! Two fabric models live here, selected by
//! [`TopologySpec`](crate::topology::TopologySpec):
//!
//! * **Flat** (the default): each prefill replica sources its KV transfers
//!   from one NIC, modelled as a FIFO resource (`nic_free_at`): a transfer
//!   starts when the NIC frees up and occupies it for the wire time. The wire
//!   time itself is group-aware — see
//!   [`super::ClusterState::transfer_duration`], which memoizes it per
//!   (prefill group, decode group, prompt length) and bottlenecks on the
//!   slower of the two groups' NICs. This path is bit- and cost-identical to
//!   the pre-topology simulator.
//! * **Link graph**: transfers are flows crossing five links (source NIC,
//!   source ToR uplink, spine, destination ToR uplink, destination NIC), each
//!   receiving the max-min fair share `min_l capacity(l)/flows(l)` along its
//!   path. Progress is re-split on every flow start/finish/failure: remaining
//!   volumes advance at the old rates, rates are recomputed, and each flow's
//!   completion event is cancelled and re-emitted — group NIC bandwidth is
//!   emergent rather than assumed. Dead links abort their flows with partial
//!   progress kept for the retry path.

use crate::events::FlowCompleted;
use crate::topology::FaultDomain;
use hack_sim::{ComponentId, EventId, SimulationContext};
use std::any::Any;
use std::collections::BTreeMap;

/// One in-flight fair-shared transfer (link-graph fabric only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Flow {
    /// Source prefill replica.
    pub src: usize,
    /// Destination decode replica.
    pub dst: usize,
    /// Spine block this flow is ECMP-pinned to (0 on single-spine fabrics).
    pub spine: usize,
    /// Engine address of the destination decode replica's component.
    pub dst_ctx: ComponentId,
    /// Remaining volume in Gbps-seconds (`transfer_time` at 1 Gbps).
    pub remaining: f64,
    /// Current fair-share rate (Gbps).
    pub rate: f64,
    /// Pending [`FlowCompleted`] event.
    pub event: EventId,
    /// When this flow (attempt) started, for telemetry spans.
    pub started: f64,
}

/// Fixed link-index layout of the graph:
/// `[prefill NICs][prefill ToR uplinks][spine blocks][decode ToR uplinks][decode NICs]`.
#[derive(Debug, Clone, Copy)]
struct Layout {
    prefill_replicas: usize,
    prefill_tors: usize,
    decode_tors: usize,
    prefill_per_tor: usize,
    decode_per_tor: usize,
    spines: usize,
}

impl Layout {
    fn spine_base(&self) -> usize {
        self.prefill_replicas + self.prefill_tors
    }

    fn decode_tor_base(&self) -> usize {
        self.spine_base() + self.spines
    }

    fn path_via(&self, src: usize, dst: usize, spine: usize) -> [usize; 5] {
        [
            src,
            self.prefill_replicas + src / self.prefill_per_tor,
            self.spine_base() + spine,
            self.decode_tor_base() + dst / self.decode_per_tor,
            self.decode_tor_base() + self.decode_tors + dst,
        ]
    }
}

/// Deterministic ECMP hash of a request id — a splitmix64 finalizer, so the
/// spine choice is identical across engine modes and platforms.
fn ecmp_hash(req: usize) -> u64 {
    let mut z = (req as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mutable state of the link-graph fabric.
pub(crate) struct LinkGraph {
    layout: Layout,
    /// Per-link capacity (Gbps), in [`Layout`] order.
    capacity: Vec<f64>,
    /// Per-link liveness (fault injection cuts links).
    alive: Vec<bool>,
    /// Per-link degradation multiplier in `(0, 1]` (1.0 = nominal; link
    /// degradation faults lower it, recovery restores it).
    degrade: Vec<f64>,
    /// Active flows by request index (ordered: deterministic re-splits).
    flows: BTreeMap<usize, Flow>,
    /// Time the flows' `remaining` volumes were last advanced to.
    last_update: f64,
}

/// The transfer path between the prefill and decode fleets.
pub(crate) struct NetworkFabric {
    ctx: SimulationContext,
    /// Earliest time each prefill replica's NIC is free again (flat fabric).
    nic_free_at: Vec<f64>,
    /// Link-graph state — `None` under [`TopologySpec::Flat`], keeping the
    /// default path untouched.
    ///
    /// [`TopologySpec::Flat`]: crate::topology::TopologySpec::Flat
    graph: Option<LinkGraph>,
    /// Flows ECMP-rerouted onto a surviving spine after a spine fault.
    rerouted: usize,
}

impl NetworkFabric {
    pub fn new(ctx: SimulationContext, prefill_replicas: usize) -> Self {
        Self {
            ctx,
            nic_free_at: vec![0.0; prefill_replicas],
            graph: None,
            rerouted: 0,
        }
    }

    /// Enables the link-graph fabric with the given per-replica NIC capacities
    /// and switch-tier parameters. `spines` redundant spine blocks of
    /// `spine_gbps` each carry the ECMP-hashed inter-ToR traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn with_link_graph(
        ctx: SimulationContext,
        prefill_nic_gbps: Vec<f64>,
        decode_nic_gbps: Vec<f64>,
        prefill_per_tor: usize,
        decode_per_tor: usize,
        tor_uplink_gbps: f64,
        spine_gbps: f64,
        spines: usize,
    ) -> Self {
        let prefill_replicas = prefill_nic_gbps.len();
        let layout = Layout {
            prefill_replicas,
            prefill_tors: prefill_replicas.div_ceil(prefill_per_tor.max(1)),
            decode_tors: decode_nic_gbps.len().div_ceil(decode_per_tor.max(1)),
            prefill_per_tor: prefill_per_tor.max(1),
            decode_per_tor: decode_per_tor.max(1),
            spines: spines.max(1),
        };
        let mut capacity = prefill_nic_gbps;
        capacity.extend(std::iter::repeat_n(tor_uplink_gbps, layout.prefill_tors));
        capacity.extend(std::iter::repeat_n(spine_gbps, layout.spines));
        capacity.extend(std::iter::repeat_n(tor_uplink_gbps, layout.decode_tors));
        capacity.extend(decode_nic_gbps);
        let alive = vec![true; capacity.len()];
        let degrade = vec![1.0; capacity.len()];
        Self {
            ctx,
            nic_free_at: vec![0.0; prefill_replicas],
            graph: Some(LinkGraph {
                layout,
                capacity,
                alive,
                degrade,
                flows: BTreeMap::new(),
                last_update: 0.0,
            }),
            rerouted: 0,
        }
    }

    /// Whether the link-graph fabric is active.
    pub fn graph_enabled(&self) -> bool {
        self.graph.is_some()
    }

    /// Serializes a `duration`-second transfer onto prefill replica `replica`'s
    /// NIC starting no earlier than `now`; returns the completion time (flat
    /// fabric).
    pub fn reserve_nic(&mut self, replica: usize, now: f64, duration: f64) -> f64 {
        let start = self.nic_free_at[replica].max(now);
        let end = start + duration;
        self.nic_free_at[replica] = end;
        end
    }

    /// Emits `payload` to `dst` at the absolute time `at` (the moment the KV
    /// data fully lands on the decode side).
    pub fn deliver<T: Any>(&self, payload: T, dst: ComponentId, at: f64) {
        self.ctx.emit_at(payload, dst, at);
    }

    /// The link indices a fault domain cuts (empty for replica domains).
    pub fn links_for_domain(&self, domain: FaultDomain) -> Vec<usize> {
        let Some(g) = &self.graph else {
            return Vec::new();
        };
        let l = g.layout;
        match domain {
            FaultDomain::DecodeReplica(_) | FaultDomain::PrefillReplica(_) => Vec::new(),
            FaultDomain::PrefillNic(i) => vec![i],
            FaultDomain::PrefillTor(t) => vec![l.prefill_replicas + t],
            FaultDomain::Spine(s) => vec![l.spine_base() + s],
            FaultDomain::DecodeTor(t) => vec![l.decode_tor_base() + t],
            FaultDomain::DecodeNic(i) => vec![l.decode_tor_base() + l.decode_tors + i],
        }
    }

    /// Marks links up or down.
    pub fn set_links(&mut self, links: &[usize], alive: bool) {
        if let Some(g) = &mut self.graph {
            for &l in links {
                g.alive[l] = alive;
            }
        }
    }

    /// Sets the degradation multiplier of `links` (1.0 restores nominal
    /// capacity), re-splitting every active flow at the new capacities.
    pub fn set_degrade(&mut self, links: &[usize], factor: f64, now: f64) {
        let Self { ctx, graph, .. } = self;
        if let Some(g) = graph.as_mut() {
            g.advance(now);
            for &l in links {
                g.degrade[l] = factor;
            }
            g.resplit(ctx, now);
        }
    }

    /// Sum of the nominal capacities of `links` (Gbps) — for the
    /// throughput-loss sensor.
    pub fn nominal_capacity(&self, links: &[usize]) -> f64 {
        self.graph
            .as_ref()
            .map_or(0.0, |g| links.iter().map(|&l| g.capacity[l]).sum())
    }

    /// Flows ECMP-rerouted onto a surviving spine after a spine fault.
    pub fn rerouted_flows(&self) -> usize {
        self.rerouted
    }

    /// Whether decode replica `dst`'s ToR uplink or NIC is currently
    /// degraded — dispatch can de-prioritize such groups.
    pub fn decode_path_degraded(&self, dst: usize) -> bool {
        let Some(g) = &self.graph else {
            return false;
        };
        let l = g.layout;
        let tor = l.decode_tor_base() + dst / l.decode_per_tor;
        let nic = l.decode_tor_base() + l.decode_tors + dst;
        g.degrade[tor] < 1.0 || g.degrade[nic] < 1.0
    }

    /// Whether every link on the `src → dst` path is up: the four endpoint
    /// links must be alive and at least one spine block must survive (ECMP
    /// hops around dead spines).
    pub fn path_alive(&self, src: usize, dst: usize) -> bool {
        let Some(g) = &self.graph else {
            return true;
        };
        let l = g.layout;
        let endpoints = [
            src,
            l.prefill_replicas + src / l.prefill_per_tor,
            l.decode_tor_base() + dst / l.decode_per_tor,
            l.decode_tor_base() + l.decode_tors + dst,
        ];
        endpoints.iter().all(|&x| g.alive[x]) && g.alive_spines().next().is_some()
    }

    /// Whether `req` currently has an active flow.
    pub fn has_flow(&self, req: usize) -> bool {
        self.graph
            .as_ref()
            .is_some_and(|g| g.flows.contains_key(&req))
    }

    /// Number of active flows (telemetry gauge).
    pub fn active_flows(&self) -> usize {
        self.graph.as_ref().map_or(0, |g| g.flows.len())
    }

    /// Starts a flow of `volume` Gbps-seconds from prefill replica `src` to
    /// decode replica `dst`, fairly re-splitting every active flow. Returns
    /// `false` (and starts nothing) when the path crosses a dead link — the
    /// caller schedules a retry.
    pub fn start_flow(
        &mut self,
        req: usize,
        src: usize,
        dst: usize,
        dst_ctx: ComponentId,
        volume: f64,
        now: f64,
    ) -> bool {
        if !self.path_alive(src, dst) {
            return false;
        }
        let Self { ctx, graph, .. } = self;
        let g = graph.as_mut().expect("start_flow requires the link graph");
        let spine = g.ecmp_spine(req).expect("path_alive checked a live spine");
        g.advance(now);
        // The completion event is re-emitted with the true fair-share rate by
        // the resplit below; the placeholder is never delivered.
        let event = ctx.emit_at(FlowCompleted { req }, dst_ctx, now + 1e30);
        g.flows.insert(
            req,
            Flow {
                src,
                dst,
                spine,
                dst_ctx,
                remaining: volume,
                rate: 0.0,
                event,
                started: now,
            },
        );
        g.resplit(ctx, now);
        true
    }

    /// Removes `req`'s flow after its [`FlowCompleted`] event fired and
    /// re-splits the survivors. Returns the finished flow.
    pub fn finish_flow(&mut self, req: usize, now: f64) -> Option<Flow> {
        let Self { ctx, graph, .. } = self;
        let g = graph.as_mut()?;
        g.advance(now);
        let flow = g.flows.remove(&req);
        g.resplit(ctx, now);
        flow
    }

    /// Aborts `req`'s flow (e.g. its source prefill replica died), cancelling
    /// its completion event. Returns the aborted flow with its partial
    /// progress in `remaining`.
    pub fn abort_flow(&mut self, req: usize, now: f64) -> Option<Flow> {
        let Self { ctx, graph, .. } = self;
        let g = graph.as_mut()?;
        g.advance(now);
        let flow = g.flows.remove(&req);
        if let Some(f) = &flow {
            ctx.cancel_event(f.event);
        }
        g.resplit(ctx, now);
        flow
    }

    /// Handles every flow crossing a dead link, in request order
    /// (deterministic). A flow whose *only* dead link is its spine block is
    /// ECMP-rerouted onto a surviving spine (re-split, partial progress
    /// kept); a flow with a dead endpoint link — or no surviving spine —
    /// aborts with partial progress kept for the retry path. Returns the
    /// aborted `(req, flow)` pairs and the `(req, src)` pairs of the
    /// rerouted ones (also counted in [`Self::rerouted_flows`]).
    #[allow(clippy::type_complexity)]
    pub fn abort_dead_flows(&mut self, now: f64) -> (Vec<(usize, Flow)>, Vec<(usize, usize)>) {
        let Self {
            ctx,
            graph,
            rerouted,
            ..
        } = self;
        let Some(g) = graph.as_mut() else {
            return (Vec::new(), Vec::new());
        };
        g.advance(now);
        let dead: Vec<usize> = g
            .flows
            .iter()
            .filter(|(_, f)| {
                g.layout
                    .path_via(f.src, f.dst, f.spine)
                    .iter()
                    .any(|&l| !g.alive[l])
            })
            .map(|(&req, _)| req)
            .collect();
        let mut aborted = Vec::with_capacity(dead.len());
        let mut moved = Vec::new();
        for req in dead {
            let flow = g.flows.get(&req).expect("listed flow exists");
            let path = g.layout.path_via(flow.src, flow.dst, flow.spine);
            let endpoint_dead = path
                .iter()
                .enumerate()
                .any(|(hop, &l)| hop != 2 && !g.alive[l]);
            if !endpoint_dead {
                if let Some(spine) = g.ecmp_spine(req) {
                    let flow = g.flows.get_mut(&req).expect("listed flow exists");
                    flow.spine = spine;
                    *rerouted += 1;
                    moved.push((req, flow.src));
                    continue;
                }
            }
            let flow = g.flows.remove(&req).expect("listed flow exists");
            ctx.cancel_event(flow.event);
            aborted.push((req, flow));
        }
        g.resplit(ctx, now);
        (aborted, moved)
    }
}

impl LinkGraph {
    /// Spine blocks that are currently up, in index order.
    fn alive_spines(&self) -> impl Iterator<Item = usize> + '_ {
        let base = self.layout.spine_base();
        (0..self.layout.spines).filter(move |&s| self.alive[base + s])
    }

    /// The spine block a flow of `req` is ECMP-hashed onto, among the
    /// currently alive blocks; `None` when every spine is down. With one
    /// spine this is always block 0 (bit-identical to the pre-ECMP fabric).
    fn ecmp_spine(&self, req: usize) -> Option<usize> {
        let alive: Vec<usize> = self.alive_spines().collect();
        if alive.is_empty() {
            None
        } else {
            Some(alive[(ecmp_hash(req) % alive.len() as u64) as usize])
        }
    }

    /// Advances every flow's remaining volume to `now` at its current rate.
    fn advance(&mut self, now: f64) {
        let dt = now - self.last_update;
        if dt > 0.0 {
            for flow in self.flows.values_mut() {
                flow.remaining = (flow.remaining - dt * flow.rate).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Recomputes every flow's max-min fair share and re-schedules its
    /// completion event (cancel + re-emit). Called after any change to the
    /// flow set or link liveness; `advance` must have run first.
    fn resplit(&mut self, ctx: &SimulationContext, now: f64) {
        let mut load = vec![0u32; self.capacity.len()];
        for flow in self.flows.values() {
            for l in self.layout.path_via(flow.src, flow.dst, flow.spine) {
                load[l] += 1;
            }
        }
        let layout = self.layout;
        let capacity = &self.capacity;
        let degrade = &self.degrade;
        for (&req, flow) in self.flows.iter_mut() {
            let mut rate = f64::INFINITY;
            for l in layout.path_via(flow.src, flow.dst, flow.spine) {
                rate = rate.min(capacity[l] * degrade[l] / load[l] as f64);
            }
            flow.rate = rate;
            ctx.cancel_event(flow.event);
            flow.event = ctx.emit_at(
                FlowCompleted { req },
                flow.dst_ctx,
                now + flow.remaining / rate,
            );
        }
    }
}
