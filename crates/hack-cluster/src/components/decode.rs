//! Decode-side memory accounting, batching, completion — and failures.

use crate::components::ClusterState;
use crate::events::{
    DecodeFinished, FlowCompleted, ReplicaFailed, ReplicaRecovered, TransferCompleted,
};
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// One decode replica: admits transferred requests into its continuous batch
/// (with congestion slowdown beyond the nominal batch size), accounts KV
/// memory, completes requests (draining the memory-wait queue), and — under
/// fault injection — fails and recovers, aborting and re-queueing its in-flight
/// requests.
pub(crate) struct DecodeReplica {
    pub index: usize,
    pub cluster: Rc<RefCell<ClusterState>>,
}

/// Admits `req` into replica `d`'s continuous batch: memory already reserved,
/// KV data fully landed. Shared by the flat fabric's [`TransferCompleted`]
/// path and the link-graph fabric's [`FlowCompleted`] path.
fn admit_to_batch(cs: &mut ClusterState, d: usize, req: usize, now: f64) {
    cs.decode[d].active += 1;
    cs.decode[d].resident_tokens += cs.requests[req].total_tokens();
    let group = cs.decode[d].group;
    let (decode_t, dequant_t) = cs.decode_durations(group, &cs.requests[req]);
    // Congestion: when more sequences are resident than the group's
    // nominal batch, every iteration takes proportionally longer.
    let nominal = cs.decode_models[group].params.decode_batch;
    let congestion = (cs.decode[d].active as f64 / nominal).max(1.0);
    let decode_t = decode_t * congestion;
    let dequant_t = dequant_t * congestion;
    cs.states[req].decode_time = decode_t;
    cs.states[req].dequant_time = dequant_t;
    let finish = cs.decode_ctxs[d].emit_at(
        DecodeFinished { req },
        cs.decode_ctxs[d].id(),
        now + decode_t + dequant_t,
    );
    cs.states[req].pending_decode = Some((finish, now));
}

impl DecodeReplica {
    fn on_transfer_completed(&self, req: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();

        if cs.decode[d].failed || !cs.states[req].reserved {
            // The KV data landed on a replica that failed while the transfer
            // was in flight (its reservation was dropped at failure time, even
            // if the replica has since recovered empty). Re-queue through the
            // normal admission path: the prefill side still holds the CPU copy
            // and re-transfers it.
            cs.states[req].requeues += 1;
            cs.requeued += 1;
            cs.states[req].pipelined_transfer_end = None;
            if let Some(tel) = &mut cs.tel {
                tel.transfer_landed();
                tel.requeued(d, req, now);
            }
            cs.try_dispatch_to_decode(req, now);
            return;
        }
        if let Some(tel) = &mut cs.tel {
            tel.transfer_landed();
        }
        admit_to_batch(&mut cs, d, req, now);
    }

    /// A fair-shared flow delivered its last byte (link-graph fabric only).
    fn on_flow_completed(&self, req: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        let cs = &mut *cs;
        let flow = cs.fabric.finish_flow(req, now);

        if cs.states[req].transfer_start.is_none() {
            // Pipelined flow landing while its prefill still runs: record the
            // landing; `PrefillFinished` admits it with zero exposed
            // communication (the in-flight gauge drops on that delivery).
            cs.states[req].pipelined_transfer_end = Some(now);
            return;
        }
        // Exposed communication: from the charging epoch's start (reservation,
        // or prefill completion for pipelined flows) to the landing — backoff
        // gaps and aborted partial attempts included.
        let t0 = cs.states[req].transfer_start.take().expect("checked above");
        cs.states[req].comm_time += now - t0;
        cs.states[req].transfer_remaining = None;
        if let Some(tel) = &mut cs.tel {
            if let Some(f) = &flow {
                tel.flow_finished(f.src, req, f.started, now);
            }
            tel.transfer_landed();
        }

        if cs.decode[d].failed || !cs.states[req].reserved {
            // Same as the flat fabric's landed-on-a-dead-replica path.
            cs.states[req].requeues += 1;
            cs.requeued += 1;
            if let Some(tel) = &mut cs.tel {
                tel.requeued(d, req, now);
            }
            cs.try_dispatch_to_decode(req, now);
            return;
        }
        admit_to_batch(cs, d, req, now);
    }

    fn on_decode_finished(&self, req: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.decode[d].kv_used -= cs.states[req].kv_reserve_bytes;
        cs.decode[d].active -= 1;
        cs.decode[d].reservations -= 1;
        cs.decode[d].resident_tokens = cs.decode[d]
            .resident_tokens
            .saturating_sub(cs.requests[req].total_tokens());
        cs.states[req].reserved = false;
        let pending = cs.states[req].pending_decode.take();
        cs.states[req].finish_time = now;
        cs.states[req].done = true;
        cs.completed += 1;
        let started = pending.map_or(now, |(_, started)| started);
        let jct = now - cs.requests[req].arrival;
        if let Some(tel) = &mut cs.tel {
            tel.decode_finished(d, req, started, now, jct);
        }

        // Session bookkeeping: the finished request's full context becomes
        // (or refreshes) its session's cached prefix on this replica.
        cs.cache_on_decode_finished(req, d, now);

        // Freed memory: admit waiting requests in FIFO order while they fit.
        cs.drain_waiting(now);

        // A draining replica that just went idle completes its scale-down.
        if cs.decode[d].draining {
            cs.maybe_finish_drain(d, now);
        }

        // Children gated on this request's completion arrive now.
        cs.release_children(req, now);
    }

    fn on_failed(&self, fault: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.injected_failures += 1;
        cs.decode[d].failed = true;
        if let Some(tel) = &mut cs.tel {
            tel.replica_failed(d, now);
        }

        // Blast radius: every request whose reservation this replica held —
        // in-flight decodes plus transfers still heading here. Transfers the
        // same fault's fabric cut already aborted (they carry partial
        // progress in `transfer_remaining`) are not counted twice.
        let affected = (0..cs.states.len())
            .filter(|&r| {
                !cs.states[r].done
                    && cs.states[r].decode_replica == d
                    && cs.states[r].reserved
                    && cs.states[r].transfer_remaining.is_none()
            })
            .count();
        cs.fault_tallies[fault].requests_aborted += affected;

        // Abort every in-flight decode on this replica: cancel its completion
        // event and charge the wasted time to the decode stage.
        let aborted: Vec<usize> = (0..cs.states.len())
            .filter(|&r| {
                !cs.states[r].done
                    && cs.states[r].decode_replica == d
                    && cs.states[r].pending_decode.is_some()
            })
            .collect();
        let group = cs.decode[d].group;
        for &r in &aborted {
            let (event_id, started) = cs.states[r].pending_decode.take().expect("filtered above");
            cs.decode_ctxs[d].cancel_event(event_id);
            if let Some(tel) = &mut cs.tel {
                tel.decode_aborted(d, r, started, now);
            }
            cs.states[r].aborted_decode += now - started;
            cs.aborted_decode_by_group[group] += now - started;
            cs.states[r].decode_time = 0.0;
            cs.states[r].dequant_time = 0.0;
            cs.states[r].reserved = false;
            cs.states[r].requeues += 1;
            cs.requeued += 1;
        }

        // Reservations held by transfers still in flight toward this replica
        // are gone too; those requests re-queue when their transfer lands.
        for r in 0..cs.states.len() {
            if !cs.states[r].done && cs.states[r].decode_replica == d {
                cs.states[r].reserved = false;
            }
        }

        // The replica's memory contents died with it (peak_kv keeps its
        // high-watermark for the memory report).
        cs.decode[d].kv_used = 0.0;
        cs.decode[d].active = 0;
        cs.decode[d].resident_tokens = 0;
        cs.decode[d].reservations = 0;

        // Cached prefixes died with the memory, and every in-flight hit
        // promised against them downgrades to the miss path (kv_used is
        // already zeroed wholesale, so no per-entry subtraction here).
        if cs.cache.is_some() {
            for r in 0..cs.states.len() {
                if !cs.states[r].done && cs.states[r].prefix.is_some_and(|h| h.replica == d) {
                    cs.release_hit(r);
                }
            }
            cs.invalidate_replica_cache(d);
        }

        // A draining replica whose remaining work the fault just aborted is
        // now idle: its scale-down completes at the failure instant.
        if cs.decode[d].draining {
            cs.maybe_finish_drain(d, now);
        }

        // Re-dispatch the aborted requests onto the surviving fleet (or the
        // memory-wait queue when nothing fits).
        for r in aborted {
            cs.try_dispatch_to_decode(r, now);
        }
    }

    fn on_recovered(&self, fault: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.decode[d].failed = false;
        if let Some(tel) = &mut cs.tel {
            tel.replica_recovered(d, now);
        }
        // A replica the autoscaler powered down while it was failed stays
        // out of the fleet: only a ReplicaProvisioned join brings it back.
        if cs.decode[d].scaled_out {
            return;
        }
        // Recovery-drain sensor: when requests queued for memory during the
        // outage, time how long the queue takes to empty from here.
        if !cs.waiting_for_memory.is_empty() {
            cs.pending_drain.push((fault, now));
        }
        // Freshly available capacity: admit waiting requests.
        cs.drain_waiting(now);
    }
}

impl EventHandler for DecodeReplica {
    fn on(&mut self, event: Event) {
        let now = event.time;
        if let Some(&TransferCompleted { req }) = event.get::<TransferCompleted>() {
            self.on_transfer_completed(req, now);
        } else if let Some(&FlowCompleted { req }) = event.get::<FlowCompleted>() {
            self.on_flow_completed(req, now);
        } else if let Some(&DecodeFinished { req }) = event.get::<DecodeFinished>() {
            self.on_decode_finished(req, now);
        } else if let Some(&ReplicaFailed { fault }) = event.get::<ReplicaFailed>() {
            self.on_failed(fault, now);
        } else if let Some(&ReplicaRecovered { fault }) = event.get::<ReplicaRecovered>() {
            self.on_recovered(fault, now);
        }
    }
}
