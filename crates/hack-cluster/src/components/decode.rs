//! Decode-side memory accounting, batching, completion — and failures.

use crate::components::ClusterState;
use crate::events::{DecodeFinished, ReplicaFailed, ReplicaRecovered, TransferCompleted};
use hack_sim::{Event, EventHandler};
use std::cell::RefCell;
use std::rc::Rc;

/// One decode replica: admits transferred requests into its continuous batch
/// (with congestion slowdown beyond the nominal batch size), accounts KV
/// memory, completes requests (draining the memory-wait queue), and — under
/// fault injection — fails and recovers, aborting and re-queueing its in-flight
/// requests.
pub(crate) struct DecodeReplica {
    pub index: usize,
    pub cluster: Rc<RefCell<ClusterState>>,
}

impl DecodeReplica {
    fn on_transfer_completed(&self, req: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();

        if cs.decode[d].failed || !cs.states[req].reserved {
            // The KV data landed on a replica that failed while the transfer
            // was in flight (its reservation was dropped at failure time, even
            // if the replica has since recovered empty). Re-queue through the
            // normal admission path: the prefill side still holds the CPU copy
            // and re-transfers it.
            cs.states[req].requeues += 1;
            cs.requeued += 1;
            cs.states[req].pipelined_transfer_end = None;
            if let Some(tel) = &mut cs.tel {
                tel.transfer_landed();
                tel.requeued(d, req, now);
            }
            cs.try_dispatch_to_decode(req, now);
            return;
        }
        if let Some(tel) = &mut cs.tel {
            tel.transfer_landed();
        }

        cs.decode[d].active += 1;
        cs.decode[d].resident_tokens += cs.requests[req].total_tokens();
        let group = cs.decode[d].group;
        let (decode_t, dequant_t) = cs.decode_durations(group, &cs.requests[req]);
        // Congestion: when more sequences are resident than the group's
        // nominal batch, every iteration takes proportionally longer.
        let nominal = cs.decode_models[group].params.decode_batch;
        let congestion = (cs.decode[d].active as f64 / nominal).max(1.0);
        let decode_t = decode_t * congestion;
        let dequant_t = dequant_t * congestion;
        cs.states[req].decode_time = decode_t;
        cs.states[req].dequant_time = dequant_t;
        let finish = cs.decode_ctxs[d].emit_at(
            DecodeFinished { req },
            cs.decode_ctxs[d].id(),
            now + decode_t + dequant_t,
        );
        cs.states[req].pending_decode = Some((finish, now));
    }

    fn on_decode_finished(&self, req: usize, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.decode[d].kv_used -= cs.states[req].kv_reserve_bytes;
        cs.decode[d].active -= 1;
        cs.decode[d].resident_tokens = cs.decode[d]
            .resident_tokens
            .saturating_sub(cs.requests[req].total_tokens());
        cs.states[req].reserved = false;
        let pending = cs.states[req].pending_decode.take();
        cs.states[req].finish_time = now;
        cs.states[req].done = true;
        cs.completed += 1;
        let started = pending.map_or(now, |(_, started)| started);
        let jct = now - cs.requests[req].arrival;
        if let Some(tel) = &mut cs.tel {
            tel.decode_finished(d, req, started, now, jct);
        }

        // Freed memory: admit waiting requests in FIFO order while they fit.
        cs.drain_waiting(now);
    }

    fn on_failed(&self, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.injected_failures += 1;
        cs.decode[d].failed = true;
        if let Some(tel) = &mut cs.tel {
            tel.replica_failed(d, now);
        }

        // Abort every in-flight decode on this replica: cancel its completion
        // event and charge the wasted time to the decode stage.
        let aborted: Vec<usize> = (0..cs.states.len())
            .filter(|&r| {
                !cs.states[r].done
                    && cs.states[r].decode_replica == d
                    && cs.states[r].pending_decode.is_some()
            })
            .collect();
        let group = cs.decode[d].group;
        for &r in &aborted {
            let (event_id, started) = cs.states[r].pending_decode.take().expect("filtered above");
            cs.decode_ctxs[d].cancel_event(event_id);
            if let Some(tel) = &mut cs.tel {
                tel.decode_aborted(d, r, started, now);
            }
            cs.states[r].aborted_decode += now - started;
            cs.aborted_decode_by_group[group] += now - started;
            cs.states[r].decode_time = 0.0;
            cs.states[r].dequant_time = 0.0;
            cs.states[r].reserved = false;
            cs.states[r].requeues += 1;
            cs.requeued += 1;
        }

        // Reservations held by transfers still in flight toward this replica
        // are gone too; those requests re-queue when their transfer lands.
        for r in 0..cs.states.len() {
            if !cs.states[r].done && cs.states[r].decode_replica == d {
                cs.states[r].reserved = false;
            }
        }

        // The replica's memory contents died with it (peak_kv keeps its
        // high-watermark for the memory report).
        cs.decode[d].kv_used = 0.0;
        cs.decode[d].active = 0;
        cs.decode[d].resident_tokens = 0;

        // Re-dispatch the aborted requests onto the surviving fleet (or the
        // memory-wait queue when nothing fits).
        for r in aborted {
            cs.try_dispatch_to_decode(r, now);
        }
    }

    fn on_recovered(&self, now: f64) {
        let d = self.index;
        let mut cs = self.cluster.borrow_mut();
        cs.decode[d].failed = false;
        if let Some(tel) = &mut cs.tel {
            tel.replica_recovered(d, now);
        }
        // Freshly available capacity: admit waiting requests.
        cs.drain_waiting(now);
    }
}

impl EventHandler for DecodeReplica {
    fn on(&mut self, event: Event) {
        let now = event.time;
        if let Some(&TransferCompleted { req }) = event.get::<TransferCompleted>() {
            self.on_transfer_completed(req, now);
        } else if let Some(&DecodeFinished { req }) = event.get::<DecodeFinished>() {
            self.on_decode_finished(req, now);
        } else if event.is::<ReplicaFailed>() {
            self.on_failed(now);
        } else if event.is::<ReplicaRecovered>() {
            self.on_recovered(now);
        }
    }
}
