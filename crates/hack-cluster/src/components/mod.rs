//! The cluster simulator's components on the [`hack_sim`] engine.
//!
//! Four component kinds cooperate:
//!
//! * [`frontend::Frontend`] — admission and shortest-queue routing of arriving
//!   requests onto the prefill fleet;
//! * [`prefill::PrefillReplica`] — the prefill lifecycle of one replica
//!   (queueing, prefill + quantization service, hand-off to the transfer path);
//! * [`network::NetworkFabric`] — per-prefill-NIC serialization of KV
//!   transfers, including transfers pipelined under prefill (Fig. 1(d));
//! * [`decode::DecodeReplica`] — KV memory accounting, continuous-batching
//!   congestion, completion, and the fault-injection lifecycle.
//!
//! The components communicate through typed events (see [`crate::events`]) and
//! share one [`ClusterState`] blackboard holding the per-request and
//! per-replica bookkeeping; the event-handler layer stays thin so that the
//! arithmetic below is a line-for-line port of the original monolithic
//! simulator (whose per-request numerics this refactor reproduces exactly).

pub(crate) mod decode;
pub(crate) mod frontend;
pub(crate) mod network;
pub(crate) mod prefill;

use crate::config::SimulationConfig;
use crate::events::TransferCompleted;
use crate::policy::{AdmissionPolicy, SchedulingPolicy};
use crate::sim::CostMode;
use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
use hack_model::cost_table::{DecodeCostTable, PrefillCostTable};
use hack_sim::{EventId, SimulationContext};
use hack_workload::trace::Request;
use std::collections::VecDeque;
use std::sync::Arc;

/// The memoized cost layer of one simulation run: the decode-side prefix-sum
/// table and the prefill-side per-prompt-length memo, both built once per
/// [`crate::sim::Simulator`], plus the mode selecting between them and the
/// reference summation loops (kept as the equivalence oracle). The tables are
/// `None` exactly under [`CostMode::Reference`], which never reads them (and
/// must not pay for building them — it is the benchmarked "pre-table"
/// baseline).
pub(crate) struct SimCosts {
    pub mode: CostMode,
    pub decode: Option<Arc<DecodeCostTable>>,
    pub prefill: Option<Arc<PrefillCostTable>>,
}

impl SimCosts {
    fn decode_table(&self) -> &DecodeCostTable {
        self.decode
            .as_deref()
            .expect("table cost mode always carries a decode cost table")
    }

    fn prefill_table(&self) -> &PrefillCostTable {
        self.prefill
            .as_deref()
            .expect("table cost mode always carries a prefill cost table")
    }
}

/// Prefill-side state of one replica.
#[derive(Debug, Default, Clone)]
pub(crate) struct PrefillReplicaState {
    pub queue: VecDeque<usize>,
    pub queued_tokens: usize,
    pub busy: bool,
}

/// Decode-side state of one replica.
#[derive(Debug, Clone)]
pub(crate) struct DecodeReplicaState {
    pub kv_capacity: f64,
    pub kv_used: f64,
    pub peak_kv: f64,
    pub active: usize,
    pub resident_tokens: usize,
    /// Whether the replica is currently failed (fault injection).
    pub failed: bool,
}

/// Per-request bookkeeping.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReqState {
    pub prefill_replica: usize,
    pub decode_replica: usize,
    pub prefill_wait: f64,
    pub prefill_time: f64,
    pub quant_time: f64,
    pub comm_time: f64,
    pub memory_wait: f64,
    pub dequant_time: f64,
    pub decode_time: f64,
    /// Decode time lost to aborted attempts on failed replicas (charged to the
    /// decode stage in the final breakdown).
    pub aborted_decode: f64,
    /// Pipelined transfer completion time (if a transfer was started during prefill).
    pub pipelined_transfer_end: Option<f64>,
    /// When the request started waiting for decode memory.
    pub memory_wait_start: Option<f64>,
    pub kv_reserve_bytes: f64,
    /// Whether the KV reservation on `decode_replica` is currently held.
    pub reserved: bool,
    /// Pending `DecodeFinished` event (cancellable on replica failure) and the
    /// time decoding started.
    pub pending_decode: Option<(EventId, f64)>,
    pub finish_time: f64,
    pub done: bool,
    pub swapped: bool,
    /// How many times the request was re-queued by a replica failure.
    pub requeues: usize,
}

/// Shared blackboard of the cluster components: the request trace, per-replica
/// and per-request state, admission queues and aggregate counters. The
/// cross-cutting policies (routing, memory admission, transfer serialization)
/// live here as methods so every component sees one consistent picture.
pub(crate) struct ClusterState {
    pub config: SimulationConfig,
    pub prefill_model: ReplicaCostModel,
    pub decode_model: ReplicaCostModel,
    pub costs: SimCosts,
    /// Admission policy of this run (fresh per run; see [`crate::policy`]).
    /// `None` is the built-in admit-everything default — the frontend skips
    /// the policy call entirely, keeping the default arrival path as cheap as
    /// the pre-policy simulator's.
    pub admission: Option<Box<dyn AdmissionPolicy>>,
    /// Scheduling policy of this run (fresh per run; see [`crate::policy`]).
    /// `None` is built-in FCFS — `start_prefill` pops the queue head without
    /// a policy call.
    pub scheduling: Option<Box<dyn SchedulingPolicy>>,
    pub requests: Arc<Vec<Request>>,
    pub prefill: Vec<PrefillReplicaState>,
    pub decode: Vec<DecodeReplicaState>,
    pub states: Vec<ReqState>,
    pub waiting_for_memory: VecDeque<usize>,
    pub fabric: network::NetworkFabric,
    pub completed: usize,
    pub rejected: usize,
    /// Admission rejections per tenant (index = tenant id).
    pub rejected_per_tenant: [usize; crate::policy::MAX_TENANTS],
    pub swapped: usize,
    pub requeued: usize,
    pub injected_failures: usize,
    /// Per-prefill-replica contexts (engine address + emitter of
    /// `PrefillFinished` for each replica).
    pub prefill_ctxs: Vec<SimulationContext>,
    /// Per-decode-replica contexts (engine address + emitter of
    /// `DecodeFinished` for each replica).
    pub decode_ctxs: Vec<SimulationContext>,
}

impl ClusterState {
    pub fn profile(&self) -> &KvMethodProfile {
        &self.config.profile
    }

    pub fn kv_reserve_bytes(&self, request: &Request) -> f64 {
        self.decode_model.kv_fp16_bytes(request.total_tokens()) * self.profile().kv_size_factor
    }

    /// Total (decode, dequant/approx) time of `request`'s decode iterations —
    /// two prefix subtractions in the decode cost table (O(1) per request), or
    /// the reference summation loop under [`CostMode::Reference`].
    pub fn decode_durations(&self, request: &Request) -> (f64, f64) {
        match self.costs.mode {
            CostMode::Table => self
                .costs
                .decode_table()
                .decode_durations(request.input_len, request.output_len),
            CostMode::Reference => self.decode_durations_reference(request),
        }
    }

    /// The pre-table sequential summation over decode iterations, kept as the
    /// oracle the table path is pinned against.
    pub fn decode_durations_reference(&self, request: &Request) -> (f64, f64) {
        self.decode_model.decode_durations_reference(
            self.profile(),
            self.config.cluster.cost_params.decode_batch,
            request.input_len,
            request.output_len,
        )
    }

    /// Prefill and quantization service times of a prompt, memoized by prompt
    /// length (lengths repeat heavily across a trace).
    pub fn prefill_service_times(&self, prompt: usize) -> (f64, f64) {
        if self.costs.mode == CostMode::Table {
            if let Some(costs) = self.costs.prefill_table().get(prompt) {
                return (costs.prefill, costs.quantization);
            }
        }
        let profile = self.profile();
        (
            self.prefill_model.prefill_time(prompt, profile),
            self.prefill_model.quantization_time(prompt, profile),
        )
    }

    /// Uncontended wire time of `request`'s KV transfer, memoized by prompt
    /// length (the NIC serialization on top of it is per-request state in the
    /// fabric).
    pub fn transfer_duration(&self, request: &Request) -> f64 {
        if self.costs.mode == CostMode::Table {
            if let Some(costs) = self.costs.prefill_table().get(request.input_len) {
                return costs.transfer;
            }
        }
        self.fabric
            .transfer_duration(&self.config, &self.prefill_model, request)
    }

    /// Hands `req` to the transfer/decode pipeline: reserve decode memory and
    /// serialize the KV transfer onto the prefill NIC, or spill to prefill CPU
    /// memory and join the FIFO memory-wait queue (§4).
    pub fn try_dispatch_to_decode(&mut self, req: usize, now: f64) {
        let bytes = self.kv_reserve_bytes(&self.requests[req]);
        if let Some(target) = self.best_decode_replica(bytes) {
            self.reserve_and_transfer(req, target, bytes, now);
        } else {
            self.states[req].memory_wait_start = Some(now);
            // Count each *request* that ever waited for memory once, even if a
            // replica failure sends it through this path a second time.
            if !self.states[req].swapped {
                self.states[req].swapped = true;
                self.swapped += 1;
            }
            self.waiting_for_memory.push_back(req);
        }
    }

    /// Reserves `bytes` of KV memory for `req` on decode replica `target` and
    /// starts its transfer over the prefill replica's NIC. `bytes` is the
    /// caller's `kv_reserve_bytes` for the request, computed once per dispatch
    /// attempt.
    pub fn reserve_and_transfer(&mut self, req: usize, target: usize, bytes: f64, now: f64) {
        self.decode[target].kv_used += bytes;
        self.decode[target].peak_kv = self.decode[target].peak_kv.max(self.decode[target].kv_used);
        self.states[req].decode_replica = target;
        self.states[req].kv_reserve_bytes = bytes;
        self.states[req].reserved = true;

        let replica = self.states[req].prefill_replica;
        let duration = self.transfer_duration(&self.requests[req]);
        let end = self.fabric.reserve_nic(replica, now, duration);
        // Communication time as experienced by the request: waiting for the NIC
        // plus the wire time.
        self.states[req].comm_time += end - now;
        self.fabric.deliver(
            TransferCompleted { req },
            self.decode_ctxs[target].id(),
            end,
        );
    }

    /// Freed memory (or a recovered replica): admit waiting requests in FIFO
    /// order while they fit somewhere.
    pub fn drain_waiting(&mut self, now: f64) {
        while let Some(&head) = self.waiting_for_memory.front() {
            let bytes = self.kv_reserve_bytes(&self.requests[head]);
            if let Some(target) = self.best_decode_replica(bytes) {
                self.waiting_for_memory.pop_front();
                let wait_start = self.states[head].memory_wait_start.take().unwrap_or(now);
                self.states[head].memory_wait += now - wait_start;
                self.reserve_and_transfer(head, target, bytes, now);
            } else {
                break;
            }
        }
    }

    /// Picks the live decode replica with the fewest resident tokens among those
    /// that can fit `bytes` of new KV data. A request too large to ever fit an
    /// *empty* replica is force-admitted to the emptiest idle one (modelling
    /// partial host offload) so the simulation always terminates. Failed
    /// replicas never qualify.
    pub fn best_decode_replica(&self, bytes: f64) -> Option<usize> {
        let fit = self
            .decode
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.failed && d.kv_used + bytes <= d.kv_capacity)
            .min_by_key(|(_, d)| d.resident_tokens)
            .map(|(i, _)| i);
        if fit.is_some() {
            return fit;
        }
        if self
            .decode
            .iter()
            .filter(|d| !d.failed)
            .all(|d| bytes > d.kv_capacity)
        {
            // Oversized even for an empty replica: admit to the one with the
            // most free space once it is idle.
            return self
                .decode
                .iter()
                .enumerate()
                .filter(|(_, d)| !d.failed && d.active == 0)
                .min_by_key(|(_, d)| d.resident_tokens)
                .map(|(i, _)| i);
        }
        None
    }
}
