//! The cluster simulator's components on the [`hack_sim`] engine.
//!
//! Four component kinds cooperate:
//!
//! * [`frontend::Frontend`] — admission and replica-aware dispatch of arriving
//!   requests onto the prefill fleet (least-loaded by default; pluggable
//!   [`crate::policy::DispatchPolicy`] for heterogeneous fleets);
//! * [`prefill::PrefillReplica`] — the prefill lifecycle of one replica
//!   (queueing, prefill + quantization service, hand-off to the transfer path);
//! * [`network::NetworkFabric`] — per-prefill-NIC serialization of KV
//!   transfers, including transfers pipelined under prefill (Fig. 1(d));
//! * [`decode::DecodeReplica`] — KV memory accounting, continuous-batching
//!   congestion, completion, and the fault-injection lifecycle.
//!
//! The components communicate through typed events (see [`crate::events`]) and
//! share one [`ClusterState`] blackboard holding the per-request and
//! per-replica bookkeeping; the event-handler layer stays thin so that the
//! arithmetic below is a line-for-line port of the original monolithic
//! simulator (whose per-request numerics this refactor reproduces exactly).
//!
//! Every replica belongs to a [`crate::fleet::ReplicaGroup`]; costs are
//! evaluated under the *group's* cost model (GPU, parallelism, NIC, optional
//! per-group efficiency constants), with one cost table per group (decode) or
//! per prefill×decode group pair (transfer wire times).

pub(crate) mod decode;
pub(crate) mod frontend;
pub(crate) mod network;
pub(crate) mod prefill;
pub(crate) mod scaling;

use crate::cache::{PrefixHit, SessionCacheState};
use crate::config::SimulationConfig;
use crate::events::{RequestArrived, TransferCompleted, TransferRetry};
use crate::policy::{AdmissionPolicy, DispatchPolicy, SchedulingPolicy, MAX_TENANTS};
use crate::sim::CostMode;
use crate::topology::retry_backoff;
use hack_model::cost::{KvMethodProfile, ReplicaCostModel};
use hack_model::cost_table::{DecodeCostTable, PrefillCostTable};
use hack_sim::{ComponentId, EventId, SimulationContext};
use hack_workload::trace::Request;
use std::collections::VecDeque;
use std::sync::Arc;

/// The memoized cost layer of one simulation run: per-decode-group prefix-sum
/// tables and per-(prefill group × decode group) prompt-length memos, built
/// once per [`crate::sim::Simulator`], plus the mode selecting between them
/// and the reference summation loops (kept as the equivalence oracle). The
/// tables are `None` exactly under [`CostMode::Reference`], which never reads
/// them (and must not pay for building them — it is the benchmarked
/// "pre-table" baseline).
pub(crate) struct SimCosts {
    pub mode: CostMode,
    /// `decode[dg]`: the decode cost table of decode group `dg`.
    pub decode: Option<Vec<Arc<DecodeCostTable>>>,
    /// `prefill[pg][dg]`: prefill/quantization times under prefill group
    /// `pg`'s model and the wire time over `min(pg, dg)` NIC bandwidth. The
    /// prefill/quantization entries are identical across `dg` (they do not
    /// depend on the network), so group-only lookups read `prefill[pg][0]`.
    pub prefill: Option<Vec<Vec<Arc<PrefillCostTable>>>>,
}

impl SimCosts {
    fn decode_table(&self, group: usize) -> &DecodeCostTable {
        &self
            .decode
            .as_deref()
            .expect("table cost mode always carries decode cost tables")[group]
    }

    fn prefill_table(&self, prefill_group: usize, decode_group: usize) -> &PrefillCostTable {
        &self
            .prefill
            .as_deref()
            .expect("table cost mode always carries prefill cost tables")[prefill_group]
            [decode_group]
    }
}

/// The pending requests of one prefill replica.
///
/// Two representations, chosen once per run: a plain arrival-ordered FIFO when
/// no scheduling policy is active (the pre-policy hot path: `push_back` /
/// `pop_front`, nothing else), or per-tenant sub-queues when one is — the
/// policy picks a *tenant* from the sub-queue heads (O(tenants)) and the
/// winner's head pops in O(1), replacing the old O(queue) scan +
/// `VecDeque::remove(pos)`. Requests enter exactly once, in arrival order, so
/// within any sub-queue request indices ascend and the head is always the
/// tenant's earliest arrival.
#[derive(Debug, Clone, Default)]
pub(crate) struct PrefillQueue {
    /// Arrival-ordered FIFO (no-scheduling-policy runs).
    fifo: VecDeque<usize>,
    /// Per-tenant sub-queues (`Some` exactly when a scheduling policy runs).
    by_tenant: Option<Vec<VecDeque<usize>>>,
    len: usize,
}

impl PrefillQueue {
    /// An empty queue; `per_tenant` selects the sub-queue representation.
    pub fn new(per_tenant: bool) -> Self {
        Self {
            fifo: VecDeque::new(),
            by_tenant: per_tenant.then(|| vec![VecDeque::new(); MAX_TENANTS]),
            len: 0,
        }
    }

    /// Queues `req` for `tenant` (requests arrive in arrival order).
    pub fn push(&mut self, req: usize, tenant: usize) {
        self.len += 1;
        match &mut self.by_tenant {
            Some(queues) => queues[tenant.min(MAX_TENANTS - 1)].push_back(req),
            None => self.fifo.push_back(req),
        }
    }

    /// Pops the overall earliest-queued request (the FCFS fast path; only
    /// valid in FIFO representation).
    pub fn pop_front(&mut self) -> Option<usize> {
        debug_assert!(
            self.by_tenant.is_none(),
            "pop_front is the no-policy fast path"
        );
        let req = self.fifo.pop_front();
        if req.is_some() {
            self.len -= 1;
        }
        req
    }

    /// The per-tenant sub-queue heads (each tenant's earliest queued request).
    pub fn heads(&self) -> [Option<usize>; MAX_TENANTS] {
        let queues = self
            .by_tenant
            .as_ref()
            .expect("heads() requires the per-tenant representation");
        let mut heads = [None; MAX_TENANTS];
        for (head, queue) in heads.iter_mut().zip(queues) {
            *head = queue.front().copied();
        }
        heads
    }

    /// Pops `tenant`'s earliest queued request.
    pub fn pop_tenant(&mut self, tenant: usize) -> Option<usize> {
        let queues = self
            .by_tenant
            .as_mut()
            .expect("pop_tenant requires the per-tenant representation");
        let req = queues[tenant.min(MAX_TENANTS - 1)].pop_front();
        if req.is_some() {
            self.len -= 1;
        }
        req
    }

    /// Queued requests across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Empties the queue, returning every queued request in arrival order
    /// (request indices ascend with arrival, so sorting restores the global
    /// order across per-tenant sub-queues). Used when a prefill replica fails
    /// and its queue re-routes.
    pub fn drain_all(&mut self) -> Vec<usize> {
        let mut all: Vec<usize> = match &mut self.by_tenant {
            Some(queues) => queues.iter_mut().flat_map(|q| q.drain(..)).collect(),
            None => self.fifo.drain(..).collect(),
        };
        all.sort_unstable();
        self.len = 0;
        all
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Prefill-side state of one replica.
#[derive(Debug, Clone)]
pub(crate) struct PrefillReplicaState {
    /// Prefill group the replica belongs to.
    pub group: usize,
    pub queue: PrefillQueue,
    pub queued_tokens: usize,
    pub busy: bool,
    /// Whether the replica is currently failed (fault injection).
    pub failed: bool,
    /// The request currently in prefill service (cancellable on failure).
    pub current: Option<usize>,
}

impl PrefillReplicaState {
    pub fn new(group: usize, per_tenant_queue: bool) -> Self {
        Self {
            group,
            queue: PrefillQueue::new(per_tenant_queue),
            queued_tokens: 0,
            busy: false,
            failed: false,
            current: None,
        }
    }
}

/// Decode-side state of one replica.
#[derive(Debug, Clone)]
pub(crate) struct DecodeReplicaState {
    /// Decode group the replica belongs to.
    pub group: usize,
    pub kv_capacity: f64,
    pub kv_used: f64,
    pub peak_kv: f64,
    pub active: usize,
    pub resident_tokens: usize,
    /// Whether the replica is currently failed (fault injection).
    pub failed: bool,
    /// Outstanding KV reservations (decoding or in transfer toward this
    /// replica). `active == 0 && reservations == 0` is the idle test the
    /// scale-down drain waits on — a counter, not `kv_used == 0.0`, because
    /// float accumulation need not return to exactly zero.
    pub reservations: usize,
    /// Scaled out by the autoscaler: powered down, invisible to routing, not
    /// billed. Only the controller flips this (fault injection uses `failed`).
    pub scaled_out: bool,
    /// Draining toward scale-down: finishes its in-flight work but admits
    /// nothing new; flips to `scaled_out` once idle.
    pub draining: bool,
}

impl DecodeReplicaState {
    /// Whether routing may target this replica.
    #[inline]
    pub fn dispatchable(&self) -> bool {
        !self.failed && !self.scaled_out && !self.draining
    }
}

/// Per-request bookkeeping.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReqState {
    pub prefill_replica: usize,
    pub decode_replica: usize,
    pub prefill_wait: f64,
    pub prefill_time: f64,
    pub quant_time: f64,
    pub comm_time: f64,
    pub memory_wait: f64,
    pub dequant_time: f64,
    pub decode_time: f64,
    /// Decode time lost to aborted attempts on failed replicas (charged to the
    /// decode stage in the final breakdown).
    pub aborted_decode: f64,
    /// Pipelined transfer completion time (if a transfer was started during prefill).
    pub pipelined_transfer_end: Option<f64>,
    /// When the request started waiting for decode memory.
    pub memory_wait_start: Option<f64>,
    pub kv_reserve_bytes: f64,
    /// Whether the KV reservation on `decode_replica` is currently held.
    pub reserved: bool,
    /// Pending `DecodeFinished` event (cancellable on replica failure) and the
    /// time decoding started.
    pub pending_decode: Option<(EventId, f64)>,
    /// Pending `PrefillFinished` event (cancellable on prefill-replica
    /// failure).
    pub pending_prefill: Option<EventId>,
    /// When communication charging started for the current transfer flow
    /// (link-graph fabric; `None` while the flow hides under prefill).
    pub transfer_start: Option<f64>,
    /// Partial progress of an aborted flow: the volume (Gbps-seconds) still
    /// to move when it retries toward the *same* reservation. Dropped when
    /// the request re-targets.
    pub transfer_remaining: Option<f64>,
    /// Transfer attempts consumed (aborts + failed restarts); feeds the retry
    /// histogram.
    pub transfer_attempts: u32,
    /// Times the request re-entered admission after exhausting retries.
    pub readmissions: u32,
    pub finish_time: f64,
    pub done: bool,
    pub swapped: bool,
    /// Rejected by admission (terminal).
    pub rejected: bool,
    /// Permanently aborted: retries and re-admissions exhausted, or stranded
    /// by a permanent fault (terminal).
    pub abandoned: bool,
    /// How many times the request was re-queued by a replica failure.
    pub requeues: usize,
    /// The prefix-cache hit this request was promised at prefill time:
    /// `Some` between the prefill-side lookup and decode completion (or a
    /// downgrade when the prefix replica dies). Always `None` with
    /// [`crate::cache::CacheConfig::Off`].
    pub prefix: Option<PrefixHit>,
}

impl ReqState {
    /// Clears the per-stage charges of an aborted journey before the request
    /// re-enters admission: its next prefill start recomputes the queueing
    /// wait from the original arrival, so everything spent on the failed
    /// journey collapses into queueing time and the breakdown keeps summing
    /// to the JCT. Terminal flags, counters and placement survive.
    pub fn reset_for_readmission(&mut self) {
        self.prefill_wait = 0.0;
        self.prefill_time = 0.0;
        self.quant_time = 0.0;
        self.comm_time = 0.0;
        self.memory_wait = 0.0;
        self.dequant_time = 0.0;
        self.decode_time = 0.0;
        self.aborted_decode = 0.0;
        self.pipelined_transfer_end = None;
        self.memory_wait_start = None;
        self.transfer_start = None;
        self.transfer_remaining = None;
    }
}

/// Per-fault blast-radius bookkeeping, accumulated while the run executes and
/// folded into [`crate::result::FaultRecord`]s afterwards.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultTally {
    /// Replicas (prefill + decode) this fault took down, precomputed at
    /// seeding time.
    pub replicas_affected: usize,
    /// Requests whose in-flight work (prefill, transfer, or decode) this
    /// fault aborted.
    pub requests_aborted: usize,
    /// Seconds from the fault's recovery until the memory-wait queue next
    /// drained (0 when it was already empty).
    pub recovery_drain: f64,
}

/// Shared blackboard of the cluster components: the request trace, per-replica
/// and per-request state, admission queues and aggregate counters. The
/// cross-cutting policies (routing, memory admission, transfer serialization)
/// live here as methods so every component sees one consistent picture.
pub(crate) struct ClusterState {
    pub config: SimulationConfig,
    /// Cost model of each prefill group (index = group).
    pub prefill_models: Vec<ReplicaCostModel>,
    /// Cost model of each decode group (index = group).
    pub decode_models: Vec<ReplicaCostModel>,
    pub costs: SimCosts,
    /// Dispatch policy of this run (fresh per run; see [`crate::policy`]).
    /// `None` is the built-in least-loaded default — the frontend routes
    /// without assembling load views or making a policy call.
    pub dispatch: Option<Box<dyn DispatchPolicy>>,
    /// Admission policy of this run (fresh per run; see [`crate::policy`]).
    /// `None` is the built-in admit-everything default — the frontend skips
    /// the policy call entirely, keeping the default arrival path as cheap as
    /// the pre-policy simulator's.
    pub admission: Option<Box<dyn AdmissionPolicy>>,
    /// Scheduling policy of this run (fresh per run; see [`crate::policy`]).
    /// `None` is built-in FCFS — `start_prefill` pops the queue head without
    /// a policy call, and the prefill queues skip the per-tenant sub-queue
    /// bookkeeping entirely.
    pub scheduling: Option<Box<dyn SchedulingPolicy>>,
    pub requests: Arc<Vec<Request>>,
    pub prefill: Vec<PrefillReplicaState>,
    pub decode: Vec<DecodeReplicaState>,
    pub states: Vec<ReqState>,
    pub waiting_for_memory: VecDeque<usize>,
    /// Requests that could not route to any live prefill replica (whole
    /// prefill fleet down); drained on prefill recovery.
    pub waiting_for_prefill: VecDeque<usize>,
    pub fabric: network::NetworkFabric,
    pub completed: usize,
    pub rejected: usize,
    /// Admission rejections per tenant (index = tenant id).
    pub rejected_per_tenant: [usize; crate::policy::MAX_TENANTS],
    pub swapped: usize,
    pub requeued: usize,
    pub injected_failures: usize,
    /// Total transfer retries scheduled (aborts + failed restarts).
    pub retries: usize,
    /// Requests permanently aborted after exhausting retries and
    /// re-admissions.
    pub gave_up: usize,
    /// One tally per event of the run's fault plan (empty without faults).
    pub fault_tallies: Vec<FaultTally>,
    /// Faults whose recovery is waiting for the memory-wait queue to drain:
    /// `(fault index, recovery time)`.
    pub pending_drain: Vec<(usize, f64)>,
    /// Engine address of the frontend (destination of re-admissions and
    /// transfer retries). `None` only during construction.
    pub frontend_id: Option<ComponentId>,
    /// Decode seconds wasted by failure-aborted attempts, per decode *group*
    /// — the group that actually spent the time, which under re-dispatch can
    /// differ from the group that eventually completes the request (the
    /// per-request `aborted_decode` charge follows the request; this follows
    /// the hardware, for the per-group utilization report).
    pub aborted_decode_by_group: Vec<f64>,
    /// Per-prefill-replica contexts (engine address + emitter of
    /// `PrefillFinished` for each replica).
    pub prefill_ctxs: Vec<SimulationContext>,
    /// Per-decode-replica contexts (engine address + emitter of
    /// `DecodeFinished` for each replica).
    pub decode_ctxs: Vec<SimulationContext>,
    /// Telemetry recording state — `None` when telemetry is off, keeping the
    /// default run path identical to the pre-telemetry simulator.
    pub tel: Option<crate::telemetry::TelemetryState>,
    /// When each decode replica's current billed interval opened (`Some(t)`
    /// while racked — live, draining or failed — `None` while scaled out).
    /// All replicas open at 0.0; without a scaling policy nothing ever
    /// closes, so the static fleet bills the full makespan.
    pub decode_up_since: Vec<Option<f64>>,
    /// Closed billed intervals accrued by each decode replica (seconds).
    pub decode_uptime: Vec<f64>,
    /// Scale-up orders issued by the autoscaling controller.
    pub scale_ups: usize,
    /// Scale-down drains completed by the autoscaling controller.
    pub scale_downs: usize,
    /// Session prefix-cache state — `None` when the cache is off, keeping the
    /// default run path identical to the pre-cache simulator.
    pub cache: Option<SessionCacheState>,
    /// `session_children[req]`: children gated on request `req`'s completion.
    /// Empty (outer `Vec`) when the trace has no session parents, so
    /// non-session runs pay one `is_empty` check per terminal request.
    pub session_children: Vec<Vec<usize>>,
}

impl ClusterState {
    pub fn profile(&self) -> &KvMethodProfile {
        &self.config.profile
    }

    pub fn kv_reserve_bytes(&self, request: &Request) -> f64 {
        // KV bytes depend only on the model architecture (identical across
        // decode groups); any group's model computes the same value.
        self.decode_models[0].kv_fp16_bytes(request.total_tokens()) * self.profile().kv_size_factor
    }

    /// The KV bytes `req`'s decode reservation must cover: the full
    /// sequence, minus the shared prefix already resident on the target
    /// replica when the request holds a prefix-cache hit.
    pub fn request_kv_bytes(&self, req: usize) -> f64 {
        let full = self.kv_reserve_bytes(&self.requests[req]);
        match self.states[req].prefix {
            Some(hit) => (full - hit.bytes).max(0.0),
            None => full,
        }
    }

    /// The prompt tokens `req`'s prefill/transfer actually covers: the full
    /// prompt, or only the suffix past the cached prefix on a hit.
    pub fn effective_prompt(&self, req: usize) -> usize {
        let input = self.requests[req].input_len;
        match self.states[req].prefix {
            Some(hit) => input - hit.tokens,
            None => input,
        }
    }

    /// Total (decode, dequant/approx) time of `request`'s decode iterations on
    /// a replica of decode group `group` — two prefix subtractions in the
    /// group's decode cost table (O(1) per request), or the reference
    /// summation loop under [`CostMode::Reference`].
    pub fn decode_durations(&self, group: usize, request: &Request) -> (f64, f64) {
        match self.costs.mode {
            CostMode::Table => self
                .costs
                .decode_table(group)
                .decode_durations(request.input_len, request.output_len),
            CostMode::Reference => self.decode_durations_reference(group, request),
        }
    }

    /// The pre-table sequential summation over decode iterations, kept as the
    /// oracle the table path is pinned against.
    pub fn decode_durations_reference(&self, group: usize, request: &Request) -> (f64, f64) {
        let model = &self.decode_models[group];
        model.decode_durations_reference(
            self.profile(),
            model.params.decode_batch,
            request.input_len,
            request.output_len,
        )
    }

    /// Prefill and quantization service times of a prompt on prefill group
    /// `group`, memoized by prompt length (lengths repeat heavily across a
    /// trace).
    pub fn prefill_service_times(&self, group: usize, prompt: usize) -> (f64, f64) {
        if self.costs.mode == CostMode::Table {
            if let Some(costs) = self.costs.prefill_table(group, 0).get(prompt) {
                return (costs.prefill, costs.quantization);
            }
        }
        let profile = self.profile();
        let model = &self.prefill_models[group];
        (
            model.prefill_time(prompt, profile),
            model.quantization_time(prompt, profile),
        )
    }

    /// Uncontended wire time of `request`'s KV transfer from prefill group
    /// `prefill_group` to decode group `decode_group`, bottlenecked by the
    /// slower of the two groups' NICs and memoized by prompt length (the NIC
    /// serialization on top of it is per-request state in the fabric).
    pub fn transfer_duration(
        &self,
        prefill_group: usize,
        decode_group: usize,
        request: &Request,
    ) -> f64 {
        self.transfer_duration_len(prefill_group, decode_group, request.input_len)
    }

    /// [`Self::transfer_duration`] for an explicit prompt length — the
    /// prefix-cache hit path transfers only the suffix past the cached
    /// prefix. Off-table lengths fall through to the direct formula, so
    /// suffix lengths need no table entries.
    pub fn transfer_duration_len(
        &self,
        prefill_group: usize,
        decode_group: usize,
        prompt: usize,
    ) -> f64 {
        if self.costs.mode == CostMode::Table {
            if let Some(costs) = self
                .costs
                .prefill_table(prefill_group, decode_group)
                .get(prompt)
            {
                return costs.transfer;
            }
        }
        let fleet = &self.config.cluster.fleet;
        let gbps = fleet
            .prefill
            .get(prefill_group)
            .network_gbps
            .min(fleet.decode.get(decode_group).network_gbps);
        self.prefill_models[prefill_group].transfer_time(prompt, self.profile(), gbps)
    }

    /// Hands `req` to the transfer/decode pipeline: reserve decode memory and
    /// serialize the KV transfer onto the prefill NIC, or spill to prefill CPU
    /// memory and join the FIFO memory-wait queue (§4). A prefix-cache hit
    /// forces the target onto the replica holding the prefix.
    pub fn try_dispatch_to_decode(&mut self, req: usize, now: f64) {
        self.downgrade_dead_hit(req);
        let bytes = self.request_kv_bytes(req);
        if let Some(target) = self.dispatch_target(req, bytes) {
            self.reserve_and_transfer(req, target, bytes, now);
        } else {
            self.states[req].memory_wait_start = Some(now);
            // Count each *request* that ever waited for memory once, even if a
            // replica failure sends it through this path a second time.
            if !self.states[req].swapped {
                self.states[req].swapped = true;
                self.swapped += 1;
            }
            self.waiting_for_memory.push_back(req);
        }
    }

    /// Reserves `bytes` of KV memory for `req` on decode replica `target` and
    /// starts its transfer over the prefill replica's NIC. `bytes` is the
    /// caller's `kv_reserve_bytes` for the request, computed once per dispatch
    /// attempt.
    pub fn reserve_and_transfer(&mut self, req: usize, target: usize, bytes: f64, now: f64) {
        // Cache occupancy yields to decode memory demand: a reservation that
        // does not fit under the raw budget first reclaims unpinned cached
        // prefixes on the target (no-op branch when the cache is off).
        if self.cache.is_some() {
            let overflow = self.decode[target].kv_used + bytes - self.decode[target].kv_capacity;
            if overflow > 0.0 {
                self.reclaim_cache(target, overflow);
            }
        }
        self.decode[target].kv_used += bytes;
        self.decode[target].peak_kv = self.decode[target].peak_kv.max(self.decode[target].kv_used);
        self.decode[target].reservations += 1;
        self.states[req].decode_replica = target;
        self.states[req].kv_reserve_bytes = bytes;
        self.states[req].reserved = true;

        let replica = self.states[req].prefill_replica;
        if self.fabric.graph_enabled() {
            self.start_transfer_flow(req, replica, target, now);
            return;
        }
        let duration = self.transfer_duration_len(
            self.prefill[replica].group,
            self.decode[target].group,
            self.effective_prompt(req),
        );
        let end = self.fabric.reserve_nic(replica, now, duration);
        // Communication time as experienced by the request: waiting for the NIC
        // plus the wire time.
        self.states[req].comm_time += end - now;
        if let Some(tel) = &mut self.tel {
            tel.transfer_started(replica, req, now, end - duration, end);
        }
        self.fabric.deliver(
            TransferCompleted { req },
            self.decode_ctxs[target].id(),
            end,
        );
    }

    /// The volume of `req`'s KV transfer in Gbps-seconds: the wire time is
    /// linear in inverse bandwidth, so the memoized min-NIC duration times
    /// that bandwidth is the bandwidth-independent volume a fair-shared flow
    /// must move.
    pub fn transfer_volume(&self, prefill_group: usize, decode_group: usize, req: usize) -> f64 {
        let fleet = &self.config.cluster.fleet;
        let gbps = fleet
            .prefill
            .get(prefill_group)
            .network_gbps
            .min(fleet.decode.get(decode_group).network_gbps);
        self.transfer_duration_len(prefill_group, decode_group, self.effective_prompt(req)) * gbps
    }

    /// Starts (or fails to start) the fair-shared flow of `req` from prefill
    /// replica `replica` to decode replica `target` (link-graph fabric). A
    /// dead path schedules a seeded-backoff retry instead.
    pub fn start_transfer_flow(&mut self, req: usize, replica: usize, target: usize, now: f64) {
        debug_assert!(
            !self.fabric.has_flow(req),
            "request {req} already has an active flow"
        );
        let volume = self.states[req]
            .transfer_remaining
            .take()
            .unwrap_or_else(|| {
                self.transfer_volume(self.prefill[replica].group, self.decode[target].group, req)
            });
        self.states[req].transfer_start = Some(now);
        if self.fabric.start_flow(
            req,
            replica,
            target,
            self.decode_ctxs[target].id(),
            volume,
            now,
        ) {
            if let Some(tel) = &mut self.tel {
                tel.flow_started(replica);
            }
        } else {
            self.states[req].transfer_remaining = Some(volume);
            self.schedule_retry(req, now);
        }
    }

    /// Schedules the next retry of `req`'s transfer after a deterministic
    /// seeded backoff, or — once the policy's transfer attempts are spent —
    /// gives the reservation up and sends the request back through admission.
    pub fn schedule_retry(&mut self, req: usize, now: f64) {
        let policy = self.config.policy.retry;
        if self.states[req].transfer_attempts >= policy.max_transfer_attempts {
            self.give_up_transfer(req, now);
            return;
        }
        self.states[req].transfer_attempts += 1;
        self.retries += 1;
        let attempt = self.states[req].transfer_attempts;
        let delay = retry_backoff(&policy, self.config.trace.seed, req, attempt);
        let frontend = self.frontend_id.expect("frontend registered before events");
        self.fabric
            .deliver(TransferRetry { req }, frontend, now + delay);
        if let Some(tel) = &mut self.tel {
            tel.transfer_retry_scheduled(self.states[req].prefill_replica, req, now, attempt);
        }
    }

    /// Exhausted transfer retries: drop the KV reservation and re-enter
    /// admission, or permanently abort once the policy's re-admissions are
    /// spent.
    pub fn give_up_transfer(&mut self, req: usize, now: f64) {
        let target = self.states[req].decode_replica;
        if self.states[req].reserved {
            // The reservation is only still held when the target is alive (a
            // replica failure zeroes its accounting and clears the flag).
            self.decode[target].kv_used -= self.states[req].kv_reserve_bytes;
            self.decode[target].reservations -= 1;
            self.states[req].reserved = false;
            if self.decode[target].draining {
                self.maybe_finish_drain(target, now);
            }
        }
        self.states[req].transfer_remaining = None;
        self.states[req].transfer_start = None;
        if self.states[req].pending_prefill.is_some() {
            // A pipelined flow exhausted its retries while the prefill is
            // still in service: drop only the transfer state — the request
            // never left its prefill replica, so `PrefillFinished` dispatches
            // it through the normal path (no re-admission).
            self.states[req].pipelined_transfer_end = None;
            return;
        }
        // The next journey re-resolves the prefix from scratch (and must not
        // leak this journey's pin).
        self.release_hit(req);
        self.states[req].readmissions += 1;
        if self.states[req].readmissions > self.config.policy.retry.max_readmissions {
            self.states[req].abandoned = true;
            self.gave_up += 1;
            if let Some(tel) = &mut self.tel {
                tel.request_abandoned(req, now);
            }
            // Permanent abort is terminal: gated children would strand
            // otherwise.
            self.release_children(req, now);
            return;
        }
        // Everything spent so far collapses into queueing time at the next
        // prefill start, keeping the breakdown equal to the JCT.
        self.states[req].reset_for_readmission();
        self.states[req].requeues += 1;
        self.requeued += 1;
        let frontend = self.frontend_id.expect("frontend registered before events");
        self.fabric.deliver(RequestArrived { req }, frontend, now);
        if let Some(tel) = &mut self.tel {
            tel.requeued(target, req, now);
        }
    }

    /// Freed memory (or a recovered replica): admit waiting requests in FIFO
    /// order while they fit somewhere (a head holding a prefix-cache hit
    /// waits specifically for the replica holding its prefix).
    pub fn drain_waiting(&mut self, now: f64) {
        while let Some(&head) = self.waiting_for_memory.front() {
            self.downgrade_dead_hit(head);
            let bytes = self.request_kv_bytes(head);
            if let Some(target) = self.dispatch_target(head, bytes) {
                self.waiting_for_memory.pop_front();
                let wait_start = self.states[head].memory_wait_start.take().unwrap_or(now);
                self.states[head].memory_wait += now - wait_start;
                if let Some(tel) = &mut self.tel {
                    tel.memory_wait_over(target, head, wait_start, now);
                }
                self.reserve_and_transfer(head, target, bytes, now);
            } else {
                break;
            }
        }
        // Recovery-drain accounting: a recovered fault waits here until the
        // memory-wait queue next empties (no-op — one empty-vec check — in
        // fault-free runs).
        if !self.pending_drain.is_empty() && self.waiting_for_memory.is_empty() {
            for (fault, recovered_at) in std::mem::take(&mut self.pending_drain) {
                let drain = now - recovered_at;
                let tally = &mut self.fault_tallies[fault];
                tally.recovery_drain = tally.recovery_drain.max(drain);
            }
        }
    }

    /// Picks the live decode replica with the fewest resident tokens among those
    /// that can fit `bytes` of new KV data, de-prioritizing replicas behind a
    /// degraded ToR uplink or NIC (the sort key is `(degraded, tokens)`, which
    /// collapses to the plain token order when no link is degraded — the
    /// bit-identical default). A request too large to ever fit an *empty*
    /// replica is force-admitted to the emptiest idle one (modelling partial
    /// host offload) so the simulation always terminates. Failed replicas
    /// never qualify.
    pub fn best_decode_replica(&self, bytes: f64) -> Option<usize> {
        let fit = self
            .decode
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                d.dispatchable() && d.kv_used + bytes <= d.kv_capacity + self.cache_evictable(*i)
            })
            .min_by_key(|(i, d)| (self.fabric.decode_path_degraded(*i), d.resident_tokens))
            .map(|(i, _)| i);
        if fit.is_some() {
            return fit;
        }
        if self
            .decode
            .iter()
            .filter(|d| d.dispatchable())
            .all(|d| bytes > d.kv_capacity)
        {
            // Oversized even for an empty replica: admit to the one with the
            // most free space once it is idle.
            return self
                .decode
                .iter()
                .enumerate()
                .filter(|(_, d)| d.dispatchable() && d.active == 0)
                .min_by_key(|(_, d)| d.resident_tokens)
                .map(|(i, _)| i);
        }
        None
    }

    // --- Session prefix cache (every entry point below is a no-op or a
    // --- single `Option`/`is_empty` check when the cache is off / the trace
    // --- has no sessions, keeping the default path bit-identical). ---

    /// Bytes reclaimable from replica `d`'s prefix cache (0 when off).
    fn cache_evictable(&self, d: usize) -> f64 {
        match &self.cache {
            Some(cache) => cache.caches[d].evictable_bytes(),
            None => 0.0,
        }
    }

    /// The decode replica `req` must land on: the replica holding its prefix
    /// on a hit (waiting for it rather than paying a full transfer
    /// elsewhere), otherwise [`Self::best_decode_replica`].
    fn dispatch_target(&self, req: usize, bytes: f64) -> Option<usize> {
        match self.states[req].prefix {
            Some(hit) => {
                let d = &self.decode[hit.replica];
                (d.kv_used + bytes <= d.kv_capacity + self.cache_evictable(hit.replica))
                    .then_some(hit.replica)
            }
            None => self.best_decode_replica(bytes),
        }
    }

    /// Releases `req`'s prefix-cache pin (if any) and forgets the hit — the
    /// request will pay full price on its next dispatch/journey.
    pub fn release_hit(&mut self, req: usize) {
        if let Some(hit) = self.states[req].prefix.take() {
            if let Some(cache) = &mut self.cache {
                cache.caches[hit.replica].unpin(self.requests[req].session);
            }
        }
    }

    /// Downgrades `req`'s hit to the miss path when the replica holding its
    /// prefix has meanwhile failed or drained away. The prefill savings are
    /// already banked — a deliberate modeling artifact of this failure race
    /// — but the reservation and transfer revert to full price.
    fn downgrade_dead_hit(&mut self, req: usize) {
        if let Some(hit) = self.states[req].prefix {
            if !self.decode[hit.replica].dispatchable() {
                self.release_hit(req);
            }
        }
    }

    /// Evicts unpinned prefixes on `d` until `need` bytes are freed (or
    /// nothing evictable remains), mirroring the bytes into `kv_used`.
    fn reclaim_cache(&mut self, d: usize, need: f64) {
        let Some(cache) = &mut self.cache else { return };
        let (freed, evicted) = cache.caches[d].evict_until(need);
        if evicted.is_empty() {
            return;
        }
        for session in &evicted {
            cache.resident.remove(session);
        }
        cache.evictions += evicted.len();
        self.decode[d].kv_used = (self.decode[d].kv_used - freed).max(0.0);
        if let Some(tel) = &mut self.tel {
            tel.prefix_evicted(evicted.len());
        }
    }

    /// Drops every cached prefix on replica `d` (failure or scale-down power
    /// off) and forgets its residency; returns the bytes that were resident
    /// (the caller decides whether `kv_used` still needs the subtraction —
    /// a failure zeroes the replica's accounting wholesale).
    pub fn invalidate_replica_cache(&mut self, d: usize) -> f64 {
        let Some(cache) = &mut self.cache else {
            return 0.0;
        };
        let before = cache.evictions;
        let freed = cache.invalidate_replica(d);
        let dropped = cache.evictions - before;
        if dropped > 0 {
            if let Some(tel) = &mut self.tel {
                tel.prefix_evicted(dropped);
            }
        }
        freed
    }

    /// Prefill-side prefix lookup for `req` on prefill group `group`:
    /// returns the prompt length prefill must actually compute — the suffix
    /// past the cached prefix on a hit (recording the hit on the request and
    /// pinning the prefix until decode completes), the full prompt
    /// otherwise. Misses are counted only for genuine session follow-ups.
    pub fn resolve_prefix(&mut self, req: usize, group: usize, now: f64) -> usize {
        let request = self.requests[req];
        let full = request.input_len;
        if self.cache.is_none() || request.parent.is_none() || request.shared_prefix_tokens == 0 {
            return full;
        }
        let found = {
            let cache = self.cache.as_mut().expect("checked above");
            match cache.resident.get(&request.session).copied() {
                Some(replica) => match cache.caches[replica].lookup(request.session) {
                    Some((tokens, _)) => Some((replica, tokens)),
                    None => {
                        cache.resident.remove(&request.session);
                        None
                    }
                },
                None => None,
            }
        };
        let hit = found.and_then(|(replica, tokens)| {
            if !self.decode[replica].dispatchable() {
                return None;
            }
            // Keep at least one suffix token: a prefill must still run to
            // produce the turn's first output token.
            let saved = tokens
                .min(request.shared_prefix_tokens)
                .min(full.saturating_sub(1));
            (saved > 0).then_some((replica, saved))
        });
        let Some((replica, saved)) = hit else {
            let cache = self.cache.as_mut().expect("checked above");
            cache.misses += 1;
            if let Some(tel) = &mut self.tel {
                tel.prefix_miss(req, now);
            }
            return full;
        };
        let suffix = full - saved;
        let (full_prefill, full_quant) = self.prefill_service_times(group, full);
        let (suffix_prefill, suffix_quant) = self.prefill_service_times(group, suffix);
        let bytes = self.decode_models[0].kv_fp16_bytes(saved) * self.profile().kv_size_factor;
        let cache = self.cache.as_mut().expect("checked above");
        cache.caches[replica].pin(request.session);
        cache.hits += 1;
        cache.prefill_secs_saved += (full_prefill + full_quant) - (suffix_prefill + suffix_quant);
        cache.bytes_saved += bytes;
        self.states[req].prefix = Some(PrefixHit {
            replica,
            tokens: saved,
            bytes,
        });
        if let Some(tel) = &mut self.tel {
            tel.prefix_hit(replica, req, now);
        }
        suffix
    }

    /// Decode-completion bookkeeping of a session request on replica `d`:
    /// release the hit's pin, then insert (or grow) the session's prefix on
    /// `d` — the replica now holding the request's full context — updating
    /// residency and mirroring the byte deltas into `kv_used`.
    pub fn cache_on_decode_finished(&mut self, req: usize, d: usize, now: f64) {
        let request = self.requests[req];
        if request.session == 0 || self.cache.is_none() {
            return;
        }
        self.release_hit(req);
        let bytes = self.decode_models[0].kv_fp16_bytes(request.total_tokens())
            * self.profile().kv_size_factor;
        let cache = self.cache.as_mut().expect("checked above");
        let mut dropped = 0usize;
        if let Some(prev) = cache.resident.get(&request.session).copied() {
            if prev != d {
                if cache.caches[prev].is_pinned(request.session) {
                    // A sibling in flight was promised the old copy; it stays
                    // authoritative and this newer context is not cached.
                    return;
                }
                if let Some(freed) = cache.caches[prev].remove(request.session) {
                    self.decode[prev].kv_used = (self.decode[prev].kv_used - freed).max(0.0);
                    cache.evictions += 1;
                    dropped += 1;
                }
                cache.resident.remove(&request.session);
            }
        }
        let report = cache.caches[d].insert(request.session, request.total_tokens(), bytes);
        for session in &report.evicted {
            cache.resident.remove(session);
        }
        cache.evictions += report.evicted.len();
        dropped += report.evicted.len();
        if report.accepted {
            cache.resident.insert(request.session, d);
        } else {
            cache.resident.remove(&request.session);
        }
        self.decode[d].kv_used += report.bytes_delta;
        self.decode[d].peak_kv = self.decode[d].peak_kv.max(self.decode[d].kv_used);
        if dropped > 0 {
            if let Some(tel) = &mut self.tel {
                tel.prefix_evicted(dropped);
            }
        }
        let _ = now;
    }

    /// Releases the children gated on `req`'s terminal state: each arrives at
    /// the frontend at `max(its nominal arrival, now)` — think time already
    /// baked into the nominal arrival, causality enforced here.
    pub fn release_children(&mut self, req: usize, now: f64) {
        if self.session_children.is_empty() {
            return;
        }
        let frontend = self.frontend_id.expect("frontend registered before events");
        for child in std::mem::take(&mut self.session_children[req]) {
            let at = self.requests[child].arrival.max(now);
            self.fabric
                .deliver(RequestArrived { req: child }, frontend, at);
        }
    }

    // --- Autoscaling bookkeeping (no-ops in runs without a scaling policy:
    // --- `draining`/`scaled_out` stay false and nothing below ever fires). ---

    /// Completes decode replica `d`'s scale-down drain if it is draining and
    /// idle: close its billed interval, power it down, and record the drain.
    pub fn maybe_finish_drain(&mut self, d: usize, now: f64) {
        let state = &mut self.decode[d];
        if !state.draining || state.active != 0 || state.reservations != 0 {
            return;
        }
        state.draining = false;
        state.scaled_out = true;
        if let Some(opened) = self.decode_up_since[d].take() {
            self.decode_uptime[d] += now - opened;
        }
        self.scale_downs += 1;
        if let Some(tel) = &mut self.tel {
            tel.replica_drained(d, now);
        }
        // A powered-off replica keeps no cached prefixes.
        let freed = self.invalidate_replica_cache(d);
        if freed > 0.0 {
            self.decode[d].kv_used = (self.decode[d].kv_used - freed).max(0.0);
        }
    }

    /// A provisioned decode replica joins the dispatchable fleet: open its
    /// billed interval, make it routable, and admit waiting work.
    pub fn replica_join(&mut self, d: usize, now: f64) {
        debug_assert!(self.decode[d].scaled_out, "only scaled-out replicas join");
        self.decode[d].scaled_out = false;
        self.decode_up_since[d] = Some(now);
        if let Some(tel) = &mut self.tel {
            tel.replica_joined(d, now);
        }
        self.drain_waiting(now);
    }
}
