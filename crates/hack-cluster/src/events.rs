//! Typed event payloads exchanged by the cluster components on the
//! [`hack_sim`] engine.
//!
//! Each payload is addressed to one component: arrivals go to the `Frontend`,
//! prefill completions to the owning `PrefillReplica`, transfer completions and
//! decode completions to the owning `DecodeReplica`, and failure/recovery
//! control events to the affected `DecodeReplica`. New scenarios extend the
//! simulator by adding payload types and handlers rather than editing a
//! central event enum.

/// A request entered the cluster (delivered to the frontend at its arrival time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestArrived {
    /// Index of the request in the trace.
    pub req: usize,
}

/// A prefill replica finished prefill (+ quantization) of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillFinished {
    /// Index of the request in the trace.
    pub req: usize,
}

/// A request's KV data has fully arrived at its decode replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferCompleted {
    /// Index of the request in the trace.
    pub req: usize,
}

/// A request generated its last token on its decode replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeFinished {
    /// Index of the request in the trace.
    pub req: usize,
}

/// Periodic telemetry tick, self-addressed by the
/// [`crate::telemetry::TelemetrySampler`]. Only exists in telemetry-enabled
/// runs; the sampler re-arms itself each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleTick;

/// Fault injection: the destination decode replica goes down. Its in-flight
/// requests are aborted and re-queued onto the remaining fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFailed {
    /// Index of the causing fault in the run's
    /// [`FaultPlan`](crate::topology::FaultPlan) (blast-radius attribution).
    pub fault: usize,
}

/// Fault injection: the destination decode replica comes back empty and starts
/// admitting requests again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaRecovered {
    /// Index of the recovering fault in the run's fault plan.
    pub fault: usize,
}

/// Fault injection: the destination prefill replica goes down. Its queue
/// re-routes to live replicas and its in-flight prefill re-enters admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillFailed {
    /// Index of the causing fault in the run's fault plan.
    pub fault: usize,
}

/// Fault injection: the destination prefill replica rejoins the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillRecovered {
    /// Index of the recovering fault in the run's fault plan.
    pub fault: usize,
}

/// Fault injection (link-graph fabric only, delivered to the frontend): the
/// fault's links go down and every in-flight transfer crossing them aborts
/// with partial progress, then retries with seeded backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricFault {
    /// Index of the causing fault in the run's fault plan.
    pub fault: usize,
}

/// The links of a fabric fault come back up (delivered to the frontend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricRecovered {
    /// Index of the recovering fault in the run's fault plan.
    pub fault: usize,
}

/// A previously aborted KV transfer retries (delivered to the frontend at the
/// end of its deterministic seeded backoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRetry {
    /// Index of the request in the trace.
    pub req: usize,
}

/// A fair-shared transfer flow delivered its last byte (link-graph fabric
/// only; the flat fabric uses [`TransferCompleted`] at a precomputed time).
/// Delivered to the destination decode replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCompleted {
    /// Index of the request in the trace.
    pub req: usize,
}

/// Periodic autoscaling tick, self-addressed by the
/// [`crate::components::scaling::ScalingController`]. Only exists in runs
/// with a scaling policy; the controller re-arms itself each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleTick;

/// A scale-up order finished paying its provisioning delay: the destination
/// decode replica joins the dispatchable fleet (delivered to the controller,
/// which flips the replica live and kicks queued work at it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaProvisioned {
    /// Global decode replica index of the joining replica.
    pub replica: usize,
}
