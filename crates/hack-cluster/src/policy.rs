//! Pluggable admission and scheduling policies of the [`Frontend`].
//!
//! Multi-tenant serving separates *whether* a request enters the cluster
//! ([`AdmissionPolicy`]) from *which* queued request a freed prefill replica
//! serves next ([`SchedulingPolicy`]). Both are chosen per run through the
//! serializable, `Copy` [`PolicyConfig`] on
//! [`crate::config::SimulationConfig`]; the trait objects themselves are
//! built fresh for every run so policy state (round-robin credit, token
//! buckets) never leaks across runs.
//!
//! Shipped scheduling policies:
//!
//! * [`Fcfs`] — first-come-first-served, **bit-identical** to the pre-policy
//!   simulator (the frontend queues are already in arrival order, and `Fcfs`
//!   always picks the head; pinned by `tests/seed_equivalence.rs`).
//! * [`WeightedRoundRobin`] — smooth weighted round-robin over the tenants
//!   present in the queue: each tenant's wait is bounded by the backlog of
//!   one "turn" of the other tenants instead of the whole FCFS backlog.
//! * [`SloEdf`] — earliest-deadline-first with per-tenant deadlines
//!   `arrival + slo_jct`, prioritising tight-SLO tenants under contention.
//!
//! Shipped admission policies: [`AdmitAll`] (default) and
//! [`TenantTokenBucket`] — a per-tenant token bucket whose refill rate is
//! proportional to the tenant's scheduling weight, turning overload into
//! bounded per-tenant rejection instead of unbounded queueing.
//!
//! [`Frontend`]: crate::components::frontend::Frontend

use hack_workload::trace::{Request, TenantId};
use serde::{Serialize, Value};
use std::collections::VecDeque;

/// Upper bound on distinct tenants per simulation (sizes the fixed per-tenant
/// state so [`PolicyConfig`] stays `Copy`).
pub const MAX_TENANTS: usize = 8;

/// Service class of one tenant: scheduling weight and SLO target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantClass {
    /// Relative scheduling weight (share under [`WeightedRoundRobin`], token
    /// rate under [`TenantTokenBucket`]).
    pub weight: f64,
    /// Target job completion time in seconds ([`SloEdf`]'s deadline offset
    /// and the SLO-attainment threshold in the metrics).
    pub slo_jct: f64,
}

impl Default for TenantClass {
    fn default() -> Self {
        Self {
            weight: 1.0,
            slo_jct: f64::INFINITY,
        }
    }
}

/// The per-tenant service classes of a run: class `i` applies to
/// [`TenantId`]`(i)`. Fixed capacity ([`MAX_TENANTS`]) so the containing
/// configuration stays `Copy`; tenants beyond the configured set fall back to
/// [`TenantClass::default`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantClasses {
    classes: [TenantClass; MAX_TENANTS],
    len: usize,
}

impl TenantClasses {
    /// A single default tenant (weight 1, no SLO target).
    pub fn single_tenant() -> Self {
        Self::new(&[TenantClass::default()])
    }

    /// Classes for tenants `0..classes.len()`.
    ///
    /// # Panics
    /// Panics when more than [`MAX_TENANTS`] classes are supplied or a weight
    /// is not positive.
    pub fn new(classes: &[TenantClass]) -> Self {
        assert!(
            classes.len() <= MAX_TENANTS,
            "at most {MAX_TENANTS} tenants per simulation, got {}",
            classes.len()
        );
        assert!(
            classes.iter().all(|c| c.weight > 0.0),
            "tenant weights must be positive"
        );
        let mut fixed = [TenantClass::default(); MAX_TENANTS];
        fixed[..classes.len()].copy_from_slice(classes);
        Self {
            classes: fixed,
            len: classes.len().max(1),
        }
    }

    /// Number of configured tenant classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no class beyond the implicit default tenant is configured.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The class of `tenant` (the default class when unconfigured).
    pub fn get(&self, tenant: TenantId) -> TenantClass {
        self.classes
            .get(tenant.index())
            .copied()
            .filter(|_| tenant.index() < self.len)
            .unwrap_or_default()
    }

    /// The configured classes, in tenant order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, TenantClass)> + '_ {
        (0..self.len).map(|i| (TenantId(i as u32), self.classes[i]))
    }
}

impl Default for TenantClasses {
    fn default() -> Self {
        Self::single_tenant()
    }
}

// Serialize only the live prefix (the derive would emit all MAX_TENANTS slots).
impl Serialize for TenantClasses {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.classes[..self.len]
                .iter()
                .map(Serialize::serialize_value)
                .collect(),
        )
    }
}

/// Decides whether an arriving request enters the cluster at all.
///
/// Rejected requests never occupy a prefill queue; the simulator counts them
/// per run (and per tenant) in the result.
pub trait AdmissionPolicy {
    /// Called once per arrival, in arrival order. `now` is the arrival time.
    fn admit(&mut self, request: &Request, now: f64) -> bool;
}

/// Picks which queued request a prefill replica serves next.
pub trait SchedulingPolicy {
    /// Returns the position in `queue` (non-empty, arrival-ordered) of the
    /// request to start next. `requests` is the full trace, `classes` the
    /// per-tenant service classes, `now` the decision time.
    fn select(
        &mut self,
        queue: &VecDeque<usize>,
        requests: &[Request],
        classes: &TenantClasses,
        now: f64,
    ) -> usize;
}

/// Admits everything (the default, and the pre-policy behaviour).
#[derive(Debug, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(&mut self, _request: &Request, _now: f64) -> bool {
        true
    }
}

/// Per-tenant token bucket: tenant `t` accrues `rate_per_weight * weight(t)`
/// tokens per second up to `burst`, and each admission spends one token.
///
/// Buckets start full, so short bursts are absorbed; a tenant that sustains
/// more than its configured rate sees deterministic rejections instead of
/// inflating every other tenant's queueing time.
#[derive(Debug)]
pub struct TenantTokenBucket {
    rates: [f64; MAX_TENANTS],
    burst: f64,
    tokens: [f64; MAX_TENANTS],
    refilled_at: [f64; MAX_TENANTS],
}

impl TenantTokenBucket {
    /// Builds the bucket set from the run's tenant classes.
    pub fn new(rate_per_weight: f64, burst: f64, classes: &TenantClasses) -> Self {
        assert!(rate_per_weight > 0.0, "token rate must be positive");
        assert!(burst >= 1.0, "burst must admit at least one request");
        let mut rates = [rate_per_weight; MAX_TENANTS];
        for (tenant, class) in classes.iter() {
            rates[tenant.index()] = rate_per_weight * class.weight;
        }
        Self {
            rates,
            burst,
            tokens: [burst; MAX_TENANTS],
            refilled_at: [0.0; MAX_TENANTS],
        }
    }
}

impl AdmissionPolicy for TenantTokenBucket {
    fn admit(&mut self, request: &Request, now: f64) -> bool {
        let t = request.tenant.index().min(MAX_TENANTS - 1);
        let elapsed = (now - self.refilled_at[t]).max(0.0);
        self.tokens[t] = (self.tokens[t] + elapsed * self.rates[t]).min(self.burst);
        self.refilled_at[t] = now;
        if self.tokens[t] >= 1.0 {
            self.tokens[t] -= 1.0;
            true
        } else {
            false
        }
    }
}

/// First-come-first-served: always the queue head. Bit-identical to the
/// pre-policy simulator.
#[derive(Debug, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    fn select(
        &mut self,
        _queue: &VecDeque<usize>,
        _requests: &[Request],
        _classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        0
    }
}

/// Smooth weighted round-robin over the tenants currently present in the
/// queue; within a tenant, requests are served in arrival order.
///
/// Classic smooth-WRR: every selection first credits each *present* tenant by
/// its weight, picks the present tenant with the highest accumulated credit
/// (ties to the lowest tenant id), then debits the winner by the total weight
/// credited this round. Absent tenants accrue nothing, so a tenant cannot
/// bank service while idle.
#[derive(Debug, Default)]
pub struct WeightedRoundRobin {
    credit: [f64; MAX_TENANTS],
}

impl SchedulingPolicy for WeightedRoundRobin {
    fn select(
        &mut self,
        queue: &VecDeque<usize>,
        requests: &[Request],
        classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        let mut present = [false; MAX_TENANTS];
        for &req in queue {
            present[requests[req].tenant.index().min(MAX_TENANTS - 1)] = true;
        }
        let mut round_total = 0.0;
        let mut winner = MAX_TENANTS;
        for (t, _) in present.iter().enumerate().filter(|(_, &p)| p) {
            let weight = classes.get(TenantId(t as u32)).weight;
            self.credit[t] += weight;
            round_total += weight;
            if winner == MAX_TENANTS || self.credit[t] > self.credit[winner] {
                winner = t;
            }
        }
        debug_assert!(winner < MAX_TENANTS, "queue is non-empty");
        self.credit[winner] -= round_total;
        queue
            .iter()
            .position(|&req| requests[req].tenant.index().min(MAX_TENANTS - 1) == winner)
            .expect("winner was marked present from this queue")
    }
}

/// Earliest-deadline-first with per-tenant deadlines `arrival + slo_jct`.
///
/// Tenants without a finite SLO target effectively yield to every tenant with
/// one; among equal deadlines the earliest queue position (arrival order)
/// wins, so single-tenant traces degrade to FCFS.
#[derive(Debug, Default)]
pub struct SloEdf;

impl SchedulingPolicy for SloEdf {
    fn select(
        &mut self,
        queue: &VecDeque<usize>,
        requests: &[Request],
        classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        let deadline = |req: usize| {
            let r = &requests[req];
            r.arrival + classes.get(r.tenant).slo_jct
        };
        let mut best = 0;
        for pos in 1..queue.len() {
            if deadline(queue[pos]) < deadline(queue[best]) {
                best = pos;
            }
        }
        best
    }
}

/// Serializable selector of the run's [`AdmissionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum AdmissionPolicyKind {
    /// Admit everything (the pre-policy behaviour).
    #[default]
    AdmitAll,
    /// Per-tenant token bucket: `rate_per_weight * weight(t)` admissions per
    /// second sustained, bursts up to `burst`.
    TokenBucket {
        /// Sustained admission rate per unit of tenant weight (requests/s).
        rate_per_weight: f64,
        /// Bucket capacity in requests (≥ 1).
        burst: f64,
    },
}

impl AdmissionPolicyKind {
    /// Builds the policy instance for one run.
    pub fn build(self, classes: &TenantClasses) -> Box<dyn AdmissionPolicy> {
        match self {
            AdmissionPolicyKind::AdmitAll => Box::new(AdmitAll),
            AdmissionPolicyKind::TokenBucket {
                rate_per_weight,
                burst,
            } => Box::new(TenantTokenBucket::new(rate_per_weight, burst, classes)),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means the
    /// built-in admit-everything default, which the frontend handles without
    /// any per-arrival policy call (keeping the single-tenant path identical
    /// in cost, not just in outcome, to the pre-policy simulator).
    pub(crate) fn instantiate(self, classes: &TenantClasses) -> Option<Box<dyn AdmissionPolicy>> {
        match self {
            AdmissionPolicyKind::AdmitAll => None,
            other => Some(other.build(classes)),
        }
    }
}

/// Serializable selector of the run's [`SchedulingPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum SchedulingPolicyKind {
    /// First-come-first-served (the pre-policy behaviour, bit-identical).
    #[default]
    Fcfs,
    /// Smooth weighted round-robin over the tenants present in each queue.
    WeightedRoundRobin,
    /// Earliest-deadline-first on per-tenant SLO deadlines.
    SloEdf,
}

impl SchedulingPolicyKind {
    /// Builds the policy instance for one run.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            SchedulingPolicyKind::Fcfs => Box::<Fcfs>::default(),
            SchedulingPolicyKind::WeightedRoundRobin => Box::<WeightedRoundRobin>::default(),
            SchedulingPolicyKind::SloEdf => Box::<SloEdf>::default(),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means the
    /// built-in FCFS default, which `start_prefill` serves with a plain
    /// `pop_front` — no per-selection policy call, so the single-tenant path
    /// costs exactly what it did before policies existed.
    pub(crate) fn instantiate(self) -> Option<Box<dyn SchedulingPolicy>> {
        match self {
            SchedulingPolicyKind::Fcfs => None,
            other => Some(other.build()),
        }
    }

    /// Display name (bench/table row labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicyKind::Fcfs => "fcfs",
            SchedulingPolicyKind::WeightedRoundRobin => "wrr",
            SchedulingPolicyKind::SloEdf => "slo-edf",
        }
    }

    /// Every shipped scheduling policy (grid/bench sweeps).
    pub fn all() -> [SchedulingPolicyKind; 3] {
        [
            SchedulingPolicyKind::Fcfs,
            SchedulingPolicyKind::WeightedRoundRobin,
            SchedulingPolicyKind::SloEdf,
        ]
    }
}

/// The frontend policy of one run: tenant classes plus the admission and
/// scheduling policies operating on them. `Copy` and serializable so it rides
/// inside [`crate::config::SimulationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct PolicyConfig {
    /// Per-tenant service classes (weight, SLO target).
    pub tenants: TenantClasses,
    /// Admission policy.
    pub admission: AdmissionPolicyKind,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicyKind,
}

impl PolicyConfig {
    /// A multi-tenant policy with the given classes and scheduling policy,
    /// admitting everything.
    pub fn scheduled(classes: &[TenantClass], scheduling: SchedulingPolicyKind) -> Self {
        Self {
            tenants: TenantClasses::new(classes),
            admission: AdmissionPolicyKind::AdmitAll,
            scheduling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, tenant: u32, arrival: f64) -> Request {
        Request {
            id,
            tenant: TenantId(tenant),
            arrival,
            input_len: 100,
            output_len: 10,
        }
    }

    fn queue_of(ids: &[usize]) -> VecDeque<usize> {
        ids.iter().copied().collect()
    }

    #[test]
    fn tenant_classes_default_beyond_configured_set() {
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 3.0,
                slo_jct: 60.0,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: 600.0,
            },
        ]);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes.get(TenantId(0)).weight, 3.0);
        assert_eq!(classes.get(TenantId(1)).slo_jct, 600.0);
        // Unconfigured tenant falls back to the default class.
        assert_eq!(classes.get(TenantId(5)).weight, 1.0);
        assert!(classes.get(TenantId(5)).slo_jct.is_infinite());
    }

    #[test]
    fn fcfs_always_picks_the_head() {
        let requests = vec![request(0, 1, 0.0), request(1, 0, 1.0)];
        let classes = TenantClasses::single_tenant();
        let mut fcfs = Fcfs;
        assert_eq!(fcfs.select(&queue_of(&[1, 0]), &requests, &classes, 5.0), 0);
    }

    #[test]
    fn wrr_shares_service_by_weight() {
        // Tenant 0 (weight 2) and tenant 1 (weight 1), both always backlogged:
        // over 3 selections tenant 0 must win twice, tenant 1 once.
        let requests: Vec<Request> = (0..12)
            .map(|i| request(i, (i % 2) as u32, i as f64))
            .collect();
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 2.0,
                slo_jct: f64::INFINITY,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: f64::INFINITY,
            },
        ]);
        let mut wrr = WeightedRoundRobin::default();
        let queue = queue_of(&[0, 1, 2, 3, 4, 5]); // tenants 0,1,0,1,0,1
        let mut wins = [0usize; 2];
        for _ in 0..6 {
            let pos = wrr.select(&queue, &requests, &classes, 0.0);
            wins[requests[queue[pos]].tenant.index()] += 1;
        }
        assert_eq!(wins, [4, 2], "2:1 weights over 6 turns");
    }

    #[test]
    fn wrr_serves_a_lone_tenant_in_arrival_order() {
        let requests: Vec<Request> = (0..4).map(|i| request(i, 0, i as f64)).collect();
        let classes = TenantClasses::single_tenant();
        let mut wrr = WeightedRoundRobin::default();
        // Only tenant 0 present: always position 0 (the earliest arrival).
        for _ in 0..4 {
            assert_eq!(
                wrr.select(&queue_of(&[0, 1, 2, 3]), &requests, &classes, 0.0),
                0
            );
        }
    }

    #[test]
    fn slo_edf_prioritises_tight_deadlines_and_breaks_ties_by_position() {
        let requests = vec![
            request(0, 0, 0.0), // deadline 0 + 1000
            request(1, 1, 5.0), // deadline 5 + 10 = 15
            request(2, 1, 8.0), // deadline 8 + 10 = 18
        ];
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 1.0,
                slo_jct: 1000.0,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: 10.0,
            },
        ]);
        let mut edf = SloEdf;
        assert_eq!(
            edf.select(&queue_of(&[0, 1, 2]), &requests, &classes, 9.0),
            1
        );
        // Equal deadlines: earliest queue position wins.
        let twins = vec![request(0, 0, 1.0), request(1, 0, 1.0)];
        assert_eq!(
            edf.select(
                &queue_of(&[0, 1]),
                &twins,
                &TenantClasses::single_tenant(),
                2.0
            ),
            0
        );
    }

    #[test]
    fn token_bucket_enforces_weighted_rates_and_bursts() {
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 2.0,
                slo_jct: f64::INFINITY,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: f64::INFINITY,
            },
        ]);
        let mut bucket = TenantTokenBucket::new(0.5, 2.0, &classes);
        // Burst of 2 admitted at t=0; the third is rejected.
        assert!(bucket.admit(&request(0, 1, 0.0), 0.0));
        assert!(bucket.admit(&request(1, 1, 0.0), 0.0));
        assert!(!bucket.admit(&request(2, 1, 0.0), 0.0));
        // Tenant 1 refills at 0.5/s: one token back after 2 s.
        assert!(bucket.admit(&request(3, 1, 2.0), 2.0));
        assert!(!bucket.admit(&request(4, 1, 2.0), 2.0));
        // Tenant 0 (weight 2) refills twice as fast — its own bucket is
        // untouched by tenant 1's spending.
        assert!(bucket.admit(&request(5, 0, 0.0), 0.0));
        assert!(bucket.admit(&request(6, 0, 0.0), 0.0));
        assert!(!bucket.admit(&request(7, 0, 0.0), 0.0));
        assert!(bucket.admit(&request(8, 0, 1.0), 1.0));
    }

    #[test]
    fn kinds_build_their_policies() {
        let classes = TenantClasses::single_tenant();
        let mut requestq = queue_of(&[0]);
        requestq.make_contiguous();
        let requests = vec![request(0, 0, 0.0)];
        for kind in SchedulingPolicyKind::all() {
            let mut policy = kind.build();
            assert_eq!(policy.select(&requestq, &requests, &classes, 0.0), 0);
            assert!(!kind.name().is_empty());
        }
        let mut admit = AdmissionPolicyKind::AdmitAll.build(&classes);
        assert!(admit.admit(&requests[0], 0.0));
        let mut bucket = AdmissionPolicyKind::TokenBucket {
            rate_per_weight: 1.0,
            burst: 1.0,
        }
        .build(&classes);
        assert!(bucket.admit(&requests[0], 0.0));
        assert!(!bucket.admit(&requests[0], 0.0));
    }
}
