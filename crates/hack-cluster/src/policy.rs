//! Pluggable dispatch, admission and scheduling policies of the [`Frontend`].
//!
//! The frontend makes three per-request decisions, each behind its own trait:
//!
//! * [`DispatchPolicy`] — *which prefill replica* an admitted request queues
//!   on. Replica-aware: policies see every replica's group, backlog and the
//!   request's estimated service time on that replica's group, so
//!   heterogeneous fleets can route around slow groups.
//! * [`AdmissionPolicy`] — *whether* a request enters the cluster at all.
//! * [`SchedulingPolicy`] — *which queued request* a freed prefill replica
//!   serves next. Since the per-tenant sub-queue redesign the policy picks a
//!   **tenant** from the sub-queue heads (O(tenants) per decision) and the
//!   replica serves that tenant's earliest-queued request; the old
//!   O(queue)-scan + `VecDeque::remove` selection is gone, with the scan kept
//!   as a test oracle pinning the selections bit-identical.
//!
//! All three are chosen per run through the serializable, `Copy`
//! [`PolicyConfig`] on [`crate::config::SimulationConfig`]; the trait objects
//! themselves are built fresh for every run so policy state (round-robin
//! credit, token buckets) never leaks across runs. Every default
//! ([`DispatchPolicyKind::LeastLoaded`], [`AdmissionPolicyKind::AdmitAll`],
//! [`SchedulingPolicyKind::Fcfs`]) instantiates to `None` and keeps the
//! built-in hot path, bit-identical *and* cost-identical to the pre-policy
//! simulator.
//!
//! Shipped dispatch policies:
//!
//! * [`LeastLoaded`] — shortest queue by pending tokens (§7.1), the default;
//!   **bit-identical** to the pre-fleet frontend routing.
//! * [`FastestEligible`] — least estimated completion time: the token backlog
//!   scaled by the replica group's service speed for this request, so a fast
//!   L4 group absorbs more load than an A10G group of equal queue length.
//! * [`GroupAffinity`] — tenants are pinned to prefill groups round-robin
//!   (`tenant mod groups`), least-loaded within the preferred group; gives
//!   noisy tenants a blast radius of one group.
//!
//! Shipped scheduling policies: [`Fcfs`] (default), [`WeightedRoundRobin`],
//! [`SloEdf`]. Shipped admission policies: [`AdmitAll`] (default) and
//! [`TenantTokenBucket`].
//!
//! [`Frontend`]: crate::components::frontend::Frontend

use hack_workload::trace::{Request, TenantId};
use serde::{Serialize, Value};

/// Upper bound on distinct tenants per simulation (sizes the fixed per-tenant
/// state so [`PolicyConfig`] stays `Copy`).
pub const MAX_TENANTS: usize = 8;

/// Service class of one tenant: scheduling weight and SLO target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantClass {
    /// Relative scheduling weight (share under [`WeightedRoundRobin`], token
    /// rate under [`TenantTokenBucket`]).
    pub weight: f64,
    /// Target job completion time in seconds ([`SloEdf`]'s deadline offset
    /// and the SLO-attainment threshold in the metrics).
    pub slo_jct: f64,
}

impl Default for TenantClass {
    fn default() -> Self {
        Self {
            weight: 1.0,
            slo_jct: f64::INFINITY,
        }
    }
}

/// The per-tenant service classes of a run: class `i` applies to
/// [`TenantId`]`(i)`. Fixed capacity ([`MAX_TENANTS`]) so the containing
/// configuration stays `Copy`; tenants beyond the configured set fall back to
/// [`TenantClass::default`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantClasses {
    classes: [TenantClass; MAX_TENANTS],
    len: usize,
}

impl TenantClasses {
    /// A single default tenant (weight 1, no SLO target).
    pub fn single_tenant() -> Self {
        Self::new(&[TenantClass::default()])
    }

    /// Classes for tenants `0..classes.len()`.
    ///
    /// # Panics
    /// Panics when more than [`MAX_TENANTS`] classes are supplied or a weight
    /// is not positive.
    pub fn new(classes: &[TenantClass]) -> Self {
        assert!(
            classes.len() <= MAX_TENANTS,
            "at most {MAX_TENANTS} tenants per simulation, got {}",
            classes.len()
        );
        assert!(
            classes.iter().all(|c| c.weight > 0.0),
            "tenant weights must be positive"
        );
        let mut fixed = [TenantClass::default(); MAX_TENANTS];
        fixed[..classes.len()].copy_from_slice(classes);
        Self {
            classes: fixed,
            len: classes.len().max(1),
        }
    }

    /// Number of configured tenant classes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no class beyond the implicit default tenant is configured.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The class of `tenant` (the default class when unconfigured).
    pub fn get(&self, tenant: TenantId) -> TenantClass {
        self.classes
            .get(tenant.index())
            .copied()
            .filter(|_| tenant.index() < self.len)
            .unwrap_or_default()
    }

    /// The configured classes, in tenant order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, TenantClass)> + '_ {
        (0..self.len).map(|i| (TenantId(i as u32), self.classes[i]))
    }
}

impl Default for TenantClasses {
    fn default() -> Self {
        Self::single_tenant()
    }
}

// Serialize only the live prefix (the derive would emit all MAX_TENANTS slots).
impl Serialize for TenantClasses {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.classes[..self.len]
                .iter()
                .map(Serialize::serialize_value)
                .collect(),
        )
    }
}

// --- Dispatch: which prefill replica an admitted request queues on. ---

/// The frontend's per-replica view when routing one request: group membership,
/// current backlog and the request's estimated service time on the replica's
/// group (heterogeneous groups differ in speed, not just load).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaLoad {
    /// Prefill group of the replica.
    pub group: usize,
    /// Prompt tokens pending on the replica. While the replica is `busy`
    /// this still *includes* the in-service request's prompt (it is released
    /// only when its prefill finishes), so policies should not add their own
    /// in-service estimate on top of it — [`ReplicaLoad::backlog_tokens`]'s
    /// extra `busy` addend is the pre-fleet router's deliberate pessimism
    /// (the in-service request counted *again*, at the arriving request's
    /// length), kept for bit-compatibility.
    pub queued_tokens: usize,
    /// Requests queued on the replica (the in-service one excluded).
    pub queue_len: usize,
    /// Whether the replica is currently serving a prefill.
    pub busy: bool,
    /// Estimated (prefill + quantization) service seconds of the *arriving*
    /// request on this replica's group.
    pub service_secs: f64,
}

impl ReplicaLoad {
    /// The pre-fleet routing metric: pending tokens, penalising a busy
    /// replica by the arriving request's own length on top of
    /// [`Self::queued_tokens`] (which already holds the in-service prompt).
    fn backlog_tokens(&self, input_len: usize) -> usize {
        self.queued_tokens + if self.busy { input_len } else { 0 }
    }
}

/// Picks the prefill replica an admitted request queues on.
pub trait DispatchPolicy {
    /// Returns the index (into `loads`) of the replica to route `request` to.
    /// `loads` is non-empty and ordered by global replica index (group-major).
    fn route(&mut self, loads: &[ReplicaLoad], request: &Request, now: f64) -> usize;
}

/// Shortest queue by pending tokens (§7.1) — the default, bit-identical to
/// the pre-fleet frontend (first replica wins ties).
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl DispatchPolicy for LeastLoaded {
    fn route(&mut self, loads: &[ReplicaLoad], request: &Request, _now: f64) -> usize {
        loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.backlog_tokens(request.input_len))
            .map(|(i, _)| i)
            .expect("cluster has at least one prefill replica")
    }
}

/// Least estimated completion time: the token backlog (plus this request)
/// scaled by the group's per-token service speed for this request. On a
/// homogeneous fleet this degrades to [`LeastLoaded`] with a constant extra
/// addend; on a mixed fleet the faster group absorbs proportionally more load.
#[derive(Debug, Default)]
pub struct FastestEligible;

impl DispatchPolicy for FastestEligible {
    fn route(&mut self, loads: &[ReplicaLoad], request: &Request, _now: f64) -> usize {
        let input = request.input_len.max(1);
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, l) in loads.iter().enumerate() {
            let backlog = (l.backlog_tokens(request.input_len) + request.input_len) as f64;
            // Seconds to drain the backlog at this group's speed for prompts
            // like this one (service_secs / input tokens).
            let score = backlog * l.service_secs / input as f64;
            // Strict `<` keeps the first minimum, matching LeastLoaded's
            // deterministic tie-break.
            if score < best_score {
                best = i;
                best_score = score;
            }
        }
        best
    }
}

/// Pins tenants to prefill groups round-robin (`tenant mod groups`) and
/// routes least-loaded *within* the preferred group, so one tenant's burst
/// only queues behind its own group.
#[derive(Debug, Default)]
pub struct GroupAffinity;

impl DispatchPolicy for GroupAffinity {
    fn route(&mut self, loads: &[ReplicaLoad], request: &Request, _now: f64) -> usize {
        let groups = loads.iter().map(|l| l.group + 1).max().unwrap_or(1);
        let preferred = request.tenant.index() % groups;
        loads
            .iter()
            .enumerate()
            .filter(|(_, l)| l.group == preferred)
            .min_by_key(|(_, l)| l.backlog_tokens(request.input_len))
            .map(|(i, _)| i)
            .expect("every group has at least one replica")
    }
}

/// Factor by which a session's pinned prefill replica may exceed the
/// least-loaded replica's backlog before [`SessionAffinity`] spills the
/// session elsewhere.
pub const SESSION_SPILL_FACTOR: f64 = 2.0;

/// Keeps each session's turns on the prefill replica that served the session
/// last (warm locality: the session's KV prefix lands on one decode path and
/// the prefill replica re-serves familiar context), spilling to the
/// least-loaded replica — and re-pinning there — when the pinned replica's
/// backlog exceeds [`SESSION_SPILL_FACTOR`] × the least-loaded backlog plus
/// the request's own length. Independent requests (session 0) route
/// least-loaded. This is the prefill-side half of session affinity; on the
/// decode side, a prefix-cache hit independently forces placement onto the
/// replica holding the prefix.
#[derive(Debug)]
pub struct SessionAffinity {
    spill_factor: f64,
    pinned: std::collections::HashMap<u64, usize>,
}

impl Default for SessionAffinity {
    fn default() -> Self {
        Self {
            spill_factor: SESSION_SPILL_FACTOR,
            pinned: std::collections::HashMap::new(),
        }
    }
}

impl DispatchPolicy for SessionAffinity {
    fn route(&mut self, loads: &[ReplicaLoad], request: &Request, _now: f64) -> usize {
        let fallback = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.backlog_tokens(request.input_len))
            .map(|(i, _)| i)
            .expect("cluster has at least one prefill replica");
        if request.session == 0 {
            return fallback;
        }
        match self.pinned.get(&request.session) {
            Some(&pinned) if pinned < loads.len() => {
                let pinned_backlog = loads[pinned].backlog_tokens(request.input_len) as f64;
                let best_backlog = loads[fallback].backlog_tokens(request.input_len) as f64;
                let limit = self.spill_factor * best_backlog + request.input_len as f64;
                if pinned_backlog <= limit {
                    pinned
                } else {
                    self.pinned.insert(request.session, fallback);
                    fallback
                }
            }
            _ => {
                self.pinned.insert(request.session, fallback);
                fallback
            }
        }
    }
}

/// Serializable selector of the run's [`DispatchPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum DispatchPolicyKind {
    /// Shortest queue by pending tokens (the pre-fleet routing, bit-identical).
    #[default]
    LeastLoaded,
    /// Least estimated completion time under the group's cost model.
    FastestEligible,
    /// Tenant-to-group pinning, least-loaded within the preferred group.
    GroupAffinity,
    /// Session-to-replica pinning with a load-spill threshold; independent
    /// requests route least-loaded.
    SessionAffinity,
}

impl DispatchPolicyKind {
    /// Builds the policy instance for one run.
    pub fn build(self) -> Box<dyn DispatchPolicy> {
        match self {
            DispatchPolicyKind::LeastLoaded => Box::<LeastLoaded>::default(),
            DispatchPolicyKind::FastestEligible => Box::<FastestEligible>::default(),
            DispatchPolicyKind::GroupAffinity => Box::<GroupAffinity>::default(),
            DispatchPolicyKind::SessionAffinity => Box::<SessionAffinity>::default(),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means the
    /// built-in least-loaded default, which the frontend routes without a
    /// policy call or load-view assembly.
    pub(crate) fn instantiate(self) -> Option<Box<dyn DispatchPolicy>> {
        match self {
            DispatchPolicyKind::LeastLoaded => None,
            other => Some(other.build()),
        }
    }

    /// Display name (bench/table row labels).
    pub fn name(self) -> &'static str {
        match self {
            DispatchPolicyKind::LeastLoaded => "least-loaded",
            DispatchPolicyKind::FastestEligible => "fastest-eligible",
            DispatchPolicyKind::GroupAffinity => "group-affinity",
            DispatchPolicyKind::SessionAffinity => "session-affinity",
        }
    }

    /// Every shipped dispatch policy (grid/bench sweeps).
    pub fn all() -> [DispatchPolicyKind; 4] {
        [
            DispatchPolicyKind::LeastLoaded,
            DispatchPolicyKind::FastestEligible,
            DispatchPolicyKind::GroupAffinity,
            DispatchPolicyKind::SessionAffinity,
        ]
    }
}

// --- Admission: whether an arriving request enters the cluster. ---

/// Decides whether an arriving request enters the cluster at all.
///
/// Rejected requests never occupy a prefill queue; the simulator counts them
/// per run (and per tenant) in the result.
pub trait AdmissionPolicy {
    /// Called once per arrival, in arrival order. `now` is the arrival time.
    fn admit(&mut self, request: &Request, now: f64) -> bool;
}

/// Picks which tenant a prefill replica serves next.
///
/// `heads[t]` is the request index of tenant `t`'s earliest-queued request on
/// the replica, or `None` when the tenant has nothing queued there (at least
/// one entry is `Some`). Within a tenant, service order is always arrival
/// order — the policy only arbitrates *between* tenants, which is what makes
/// each decision O(tenants) instead of an O(queue) scan.
pub trait SchedulingPolicy {
    /// Returns the tenant (index into `heads`, `Some` entry) to serve next.
    /// `requests` is the full trace, `classes` the per-tenant service
    /// classes, `now` the decision time.
    fn select_tenant(
        &mut self,
        heads: &[Option<usize>; MAX_TENANTS],
        requests: &[Request],
        classes: &TenantClasses,
        now: f64,
    ) -> usize;
}

/// Admits everything (the default, and the pre-policy behaviour).
#[derive(Debug, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(&mut self, _request: &Request, _now: f64) -> bool {
        true
    }
}

/// Per-tenant token bucket: tenant `t` accrues `rate_per_weight * weight(t)`
/// tokens per second up to `burst`, and each admission spends one token.
///
/// Buckets start full, so short bursts are absorbed; a tenant that sustains
/// more than its configured rate sees deterministic rejections instead of
/// inflating every other tenant's queueing time.
#[derive(Debug)]
pub struct TenantTokenBucket {
    rates: [f64; MAX_TENANTS],
    burst: f64,
    tokens: [f64; MAX_TENANTS],
    refilled_at: [f64; MAX_TENANTS],
}

impl TenantTokenBucket {
    /// Builds the bucket set from the run's tenant classes.
    pub fn new(rate_per_weight: f64, burst: f64, classes: &TenantClasses) -> Self {
        assert!(rate_per_weight > 0.0, "token rate must be positive");
        assert!(burst >= 1.0, "burst must admit at least one request");
        let mut rates = [rate_per_weight; MAX_TENANTS];
        for (tenant, class) in classes.iter() {
            rates[tenant.index()] = rate_per_weight * class.weight;
        }
        Self {
            rates,
            burst,
            tokens: [burst; MAX_TENANTS],
            refilled_at: [0.0; MAX_TENANTS],
        }
    }
}

impl AdmissionPolicy for TenantTokenBucket {
    fn admit(&mut self, request: &Request, now: f64) -> bool {
        let t = request.tenant.index().min(MAX_TENANTS - 1);
        let elapsed = (now - self.refilled_at[t]).max(0.0);
        self.tokens[t] = (self.tokens[t] + elapsed * self.rates[t]).min(self.burst);
        self.refilled_at[t] = now;
        if self.tokens[t] >= 1.0 {
            self.tokens[t] -= 1.0;
            true
        } else {
            false
        }
    }
}

/// First-come-first-served: the tenant whose head arrived first (queue pushes
/// are arrival-ordered, so request indices order arrivals). Bit-identical to
/// the pre-policy simulator.
#[derive(Debug, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    fn select_tenant(
        &mut self,
        heads: &[Option<usize>; MAX_TENANTS],
        _requests: &[Request],
        _classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        heads
            .iter()
            .enumerate()
            .filter_map(|(t, head)| head.map(|req| (req, t)))
            .min()
            .map(|(_, t)| t)
            .expect("the queue is non-empty")
    }
}

/// Smooth weighted round-robin over the tenants currently present in the
/// queue; within a tenant, requests are served in arrival order.
///
/// Classic smooth-WRR: every selection first credits each *present* tenant by
/// its weight, picks the present tenant with the highest accumulated credit
/// (ties to the lowest tenant id), then debits the winner by the total weight
/// credited this round. Absent tenants accrue nothing, so a tenant cannot
/// bank service while idle. O(tenants) per decision.
#[derive(Debug, Default)]
pub struct WeightedRoundRobin {
    credit: [f64; MAX_TENANTS],
}

impl SchedulingPolicy for WeightedRoundRobin {
    fn select_tenant(
        &mut self,
        heads: &[Option<usize>; MAX_TENANTS],
        _requests: &[Request],
        classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        let mut round_total = 0.0;
        let mut winner = MAX_TENANTS;
        for (t, head) in heads.iter().enumerate() {
            if head.is_none() {
                continue;
            }
            let weight = classes.get(TenantId(t as u32)).weight;
            self.credit[t] += weight;
            round_total += weight;
            if winner == MAX_TENANTS || self.credit[t] > self.credit[winner] {
                winner = t;
            }
        }
        debug_assert!(winner < MAX_TENANTS, "queue is non-empty");
        self.credit[winner] -= round_total;
        winner
    }
}

/// Earliest-deadline-first with per-tenant deadlines `arrival + slo_jct`.
///
/// Tenants without a finite SLO target effectively yield to every tenant with
/// one; among equal deadlines the earliest arrival (smallest request index)
/// wins, so single-tenant traces degrade to FCFS. Each tenant's head carries
/// the tenant's earliest deadline (arrival order within a tenant is deadline
/// order), so the decision is O(tenants).
#[derive(Debug, Default)]
pub struct SloEdf;

impl SchedulingPolicy for SloEdf {
    fn select_tenant(
        &mut self,
        heads: &[Option<usize>; MAX_TENANTS],
        requests: &[Request],
        classes: &TenantClasses,
        _now: f64,
    ) -> usize {
        let mut best_tenant = MAX_TENANTS;
        let mut best = (f64::INFINITY, usize::MAX);
        for (t, head) in heads.iter().enumerate() {
            let Some(req) = *head else { continue };
            let r = &requests[req];
            let deadline = r.arrival + classes.get(r.tenant).slo_jct;
            // Strict lexicographic minimum on (deadline, request index): ties
            // resolve to the earliest-queued request, as the old scan did.
            if deadline < best.0 || (deadline == best.0 && req < best.1) {
                best = (deadline, req);
                best_tenant = t;
            }
        }
        debug_assert!(best_tenant < MAX_TENANTS, "queue is non-empty");
        best_tenant
    }
}

/// Serializable selector of the run's [`AdmissionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum AdmissionPolicyKind {
    /// Admit everything (the pre-policy behaviour).
    #[default]
    AdmitAll,
    /// Per-tenant token bucket: `rate_per_weight * weight(t)` admissions per
    /// second sustained, bursts up to `burst`.
    TokenBucket {
        /// Sustained admission rate per unit of tenant weight (requests/s).
        rate_per_weight: f64,
        /// Bucket capacity in requests (≥ 1).
        burst: f64,
    },
}

impl AdmissionPolicyKind {
    /// Builds the policy instance for one run.
    pub fn build(self, classes: &TenantClasses) -> Box<dyn AdmissionPolicy> {
        match self {
            AdmissionPolicyKind::AdmitAll => Box::new(AdmitAll),
            AdmissionPolicyKind::TokenBucket {
                rate_per_weight,
                burst,
            } => Box::new(TenantTokenBucket::new(rate_per_weight, burst, classes)),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means the
    /// built-in admit-everything default, which the frontend handles without
    /// any per-arrival policy call (keeping the single-tenant path identical
    /// in cost, not just in outcome, to the pre-policy simulator).
    pub(crate) fn instantiate(self, classes: &TenantClasses) -> Option<Box<dyn AdmissionPolicy>> {
        match self {
            AdmissionPolicyKind::AdmitAll => None,
            other => Some(other.build(classes)),
        }
    }
}

/// Serializable selector of the run's [`SchedulingPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum SchedulingPolicyKind {
    /// First-come-first-served (the pre-policy behaviour, bit-identical).
    #[default]
    Fcfs,
    /// Smooth weighted round-robin over the tenants present in each queue.
    WeightedRoundRobin,
    /// Earliest-deadline-first on per-tenant SLO deadlines.
    SloEdf,
}

impl SchedulingPolicyKind {
    /// Builds the policy instance for one run.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            SchedulingPolicyKind::Fcfs => Box::<Fcfs>::default(),
            SchedulingPolicyKind::WeightedRoundRobin => Box::<WeightedRoundRobin>::default(),
            SchedulingPolicyKind::SloEdf => Box::<SloEdf>::default(),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means the
    /// built-in FCFS default, which `start_prefill` serves with a plain
    /// `pop_front` — no per-selection policy call, so the single-tenant path
    /// costs exactly what it did before policies existed.
    pub(crate) fn instantiate(self) -> Option<Box<dyn SchedulingPolicy>> {
        match self {
            SchedulingPolicyKind::Fcfs => None,
            other => Some(other.build()),
        }
    }

    /// Display name (bench/table row labels).
    pub fn name(self) -> &'static str {
        match self {
            SchedulingPolicyKind::Fcfs => "fcfs",
            SchedulingPolicyKind::WeightedRoundRobin => "wrr",
            SchedulingPolicyKind::SloEdf => "slo-edf",
        }
    }

    /// Every shipped scheduling policy (grid/bench sweeps).
    pub fn all() -> [SchedulingPolicyKind; 3] {
        [
            SchedulingPolicyKind::Fcfs,
            SchedulingPolicyKind::WeightedRoundRobin,
            SchedulingPolicyKind::SloEdf,
        ]
    }
}

// --- Scaling: how many decode replicas each group keeps live. ---

/// The autoscaling controller's per-group snapshot at one scaling tick.
/// `live` replicas are dispatchable, `provisioning` ones were ordered but are
/// still paying the provisioning delay, `draining` ones are finishing their
/// in-flight batches before leaving; the three never overlap and never exceed
/// `capacity` (the group's configured replica count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupScalingView {
    /// Decode group index.
    pub group: usize,
    /// Dispatchable (non-failed, non-drained) replicas.
    pub live: usize,
    /// Replicas ordered but not yet dispatchable.
    pub provisioning: usize,
    /// Replicas draining towards scale-down.
    pub draining: usize,
    /// Configured replica count — the fleet the operator paid to rack.
    pub capacity: usize,
    /// Requests currently decoding across the group's live replicas.
    pub active: usize,
    /// Decode batch slots per replica.
    pub batch: usize,
    /// Requests queued for decode admission (waiting for memory or a batch
    /// slot) plus those still in prefill/transfer — demand that has entered
    /// the cluster but not yet finished decoding.
    pub queued: usize,
    /// Requests that arrived at the cluster since the previous scaling tick.
    pub arrived: usize,
}

impl GroupScalingView {
    /// Replicas already committed to serving (live or on the way up).
    pub fn committed(&self) -> usize {
        self.live + self.provisioning
    }
}

/// Picks each decode group's desired replica count at every scaling tick.
/// The controller clamps the answer to `[1, capacity]` and turns the delta
/// into provisioning orders (scale-up) or drains (scale-down).
pub trait ScalingPolicy {
    /// Desired replica count for the group described by `view` at time `now`.
    fn desired(&mut self, view: &GroupScalingView, now: f64) -> usize;
}

/// Holds the committed replica count steady (the inert controller: every
/// tick's machinery runs but no scale event ever fires).
#[derive(Debug, Default)]
pub struct HoldSteady;

impl ScalingPolicy for HoldSteady {
    fn desired(&mut self, view: &GroupScalingView, _now: f64) -> usize {
        view.committed()
    }
}

/// Queue-depth watermarks: grow by one replica while the backlog per
/// committed replica exceeds `high`, shrink by one while it sits below `low`.
#[derive(Debug)]
pub struct ThresholdScaler {
    high: f64,
    low: f64,
}

impl ThresholdScaler {
    /// Watermarks in queued requests per committed replica (`low < high`).
    pub fn new(high: f64, low: f64) -> Self {
        assert!(low < high, "low watermark must sit below high");
        Self { high, low }
    }
}

impl ScalingPolicy for ThresholdScaler {
    fn desired(&mut self, view: &GroupScalingView, _now: f64) -> usize {
        let committed = view.committed();
        let backlog = view.queued as f64 / committed.max(1) as f64;
        if backlog > self.high {
            committed + 1
        } else if backlog < self.low {
            committed.saturating_sub(1)
        } else {
            committed
        }
    }
}

/// Busy-fraction setpoint with hysteresis: utilization is active decodes over
/// the committed fleet's batch slots; outside `setpoint ± band` the group
/// grows or shrinks by one replica per tick, inside the band it holds (the
/// band is what keeps a noisy trace from thrashing up and down every tick).
#[derive(Debug)]
pub struct TargetUtilizationScaler {
    setpoint: f64,
    band: f64,
}

impl TargetUtilizationScaler {
    /// Setpoint and hysteresis half-width, both in (0, 1).
    pub fn new(setpoint: f64, band: f64) -> Self {
        assert!(
            setpoint > 0.0 && setpoint < 1.0,
            "setpoint must be in (0,1)"
        );
        assert!(
            band >= 0.0 && band < setpoint,
            "band must fit under setpoint"
        );
        Self { setpoint, band }
    }
}

impl ScalingPolicy for TargetUtilizationScaler {
    fn desired(&mut self, view: &GroupScalingView, _now: f64) -> usize {
        let committed = view.committed();
        let slots = (committed * view.batch.max(1)).max(1) as f64;
        let util = (view.active + view.queued) as f64 / slots;
        if util > self.setpoint + self.band {
            committed + 1
        } else if util < self.setpoint - self.band {
            committed.saturating_sub(1)
        } else {
            committed
        }
    }
}

/// EWMA of the arrival rate (fed by the same tick cadence the telemetry
/// sampler uses): desired replicas are the smoothed rate, padded by
/// `headroom`, divided by one replica's sustainable throughput.
#[derive(Debug)]
pub struct PredictiveScaler {
    alpha: f64,
    per_replica_rps: f64,
    headroom: f64,
    ewma: f64,
    last_now: f64,
    primed: bool,
}

impl PredictiveScaler {
    /// `alpha` is the EWMA smoothing factor in (0, 1], `per_replica_rps` one
    /// replica's sustainable request rate, `headroom` the safety multiplier.
    pub fn new(alpha: f64, per_replica_rps: f64, headroom: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(per_replica_rps > 0.0, "per-replica rate must be positive");
        assert!(
            headroom >= 1.0,
            "headroom below 1 would plan to fall behind"
        );
        Self {
            alpha,
            per_replica_rps,
            headroom,
            ewma: 0.0,
            last_now: 0.0,
            primed: false,
        }
    }
}

impl ScalingPolicy for PredictiveScaler {
    fn desired(&mut self, view: &GroupScalingView, now: f64) -> usize {
        let dt = now - self.last_now;
        self.last_now = now;
        if dt <= 0.0 {
            return view.committed();
        }
        let rate = view.arrived as f64 / dt;
        // The first observation seeds the average instead of decaying from 0.
        self.ewma = if self.primed {
            self.alpha * rate + (1.0 - self.alpha) * self.ewma
        } else {
            self.primed = true;
            rate
        };
        (self.ewma * self.headroom / self.per_replica_rps).ceil() as usize
    }
}

/// Serializable selector of the run's [`ScalingPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum ScalingPolicyKind {
    /// No autoscaling: the fleet stays at its configured size and the
    /// simulator skips the controller entirely (the pre-scaling behaviour,
    /// bit- and cost-identical).
    #[default]
    Off,
    /// Queue-depth watermarks per committed replica.
    Threshold {
        /// Grow while queued-per-replica exceeds this.
        high: f64,
        /// Shrink while queued-per-replica sits below this.
        low: f64,
    },
    /// Busy-fraction setpoint with hysteresis.
    TargetUtilization {
        /// Target busy fraction of the committed batch slots.
        setpoint: f64,
        /// Hysteresis half-width around the setpoint.
        band: f64,
    },
    /// EWMA arrival-rate forecast over per-replica throughput.
    Predictive {
        /// EWMA smoothing factor in (0, 1].
        alpha: f64,
        /// One replica's sustainable request rate (requests/s).
        per_replica_rps: f64,
        /// Safety multiplier on the forecast rate (≥ 1).
        headroom: f64,
    },
}

impl ScalingPolicyKind {
    /// Builds the policy instance for one run ([`Off`](Self::Off) builds the
    /// inert [`HoldSteady`], useful for measuring pure controller overhead).
    pub fn build(self) -> Box<dyn ScalingPolicy> {
        match self {
            ScalingPolicyKind::Off => Box::<HoldSteady>::default(),
            ScalingPolicyKind::Threshold { high, low } => Box::new(ThresholdScaler::new(high, low)),
            ScalingPolicyKind::TargetUtilization { setpoint, band } => {
                Box::new(TargetUtilizationScaler::new(setpoint, band))
            }
            ScalingPolicyKind::Predictive {
                alpha,
                per_replica_rps,
                headroom,
            } => Box::new(PredictiveScaler::new(alpha, per_replica_rps, headroom)),
        }
    }

    /// Builds the policy for the simulator's hot path: `None` means no
    /// controller at all — no scaling ticks on the event queue, no uptime
    /// bookkeeping beyond the static fleet's, bit- *and* cost-identical to
    /// the pre-scaling simulator.
    pub(crate) fn instantiate(self) -> Option<Box<dyn ScalingPolicy>> {
        match self {
            ScalingPolicyKind::Off => None,
            other => Some(other.build()),
        }
    }

    /// Display name (bench/table row labels).
    pub fn name(self) -> &'static str {
        match self {
            ScalingPolicyKind::Off => "off",
            ScalingPolicyKind::Threshold { .. } => "threshold",
            ScalingPolicyKind::TargetUtilization { .. } => "target-util",
            ScalingPolicyKind::Predictive { .. } => "predictive",
        }
    }

    /// The paper-flavoured parameterisation of every shipped scaling policy
    /// (grid/bench sweeps); `per_replica_rps` feeds the predictive forecast.
    pub fn all(per_replica_rps: f64) -> [ScalingPolicyKind; 4] {
        [
            ScalingPolicyKind::Off,
            ScalingPolicyKind::Threshold {
                high: 4.0,
                low: 1.0,
            },
            ScalingPolicyKind::TargetUtilization {
                setpoint: 0.7,
                band: 0.15,
            },
            ScalingPolicyKind::Predictive {
                alpha: 0.3,
                per_replica_rps,
                headroom: 1.2,
            },
        ]
    }
}

/// The frontend policy of one run: tenant classes plus the dispatch,
/// admission and scheduling policies operating on them. `Copy` and
/// serializable so it rides inside [`crate::config::SimulationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct PolicyConfig {
    /// Per-tenant service classes (weight, SLO target).
    pub tenants: TenantClasses,
    /// Replica dispatch policy (which prefill replica a request queues on).
    pub dispatch: DispatchPolicyKind,
    /// Admission policy.
    pub admission: AdmissionPolicyKind,
    /// Scheduling policy.
    pub scheduling: SchedulingPolicyKind,
    /// Transfer-retry backoff and give-up budgets. The default reproduces
    /// the pre-policy hardcoded constants bit-for-bit.
    pub retry: crate::topology::RetryPolicy,
    /// Decode-fleet autoscaling policy ([`ScalingPolicyKind::Off`] keeps the
    /// static fleet and skips the controller entirely).
    pub scaling: ScalingPolicyKind,
}

impl PolicyConfig {
    /// A multi-tenant policy with the given classes and scheduling policy,
    /// admitting everything and dispatching least-loaded.
    pub fn scheduled(classes: &[TenantClass], scheduling: SchedulingPolicyKind) -> Self {
        Self {
            tenants: TenantClasses::new(classes),
            dispatch: DispatchPolicyKind::LeastLoaded,
            admission: AdmissionPolicyKind::AdmitAll,
            scheduling,
            retry: crate::topology::RetryPolicy::default(),
            scaling: ScalingPolicyKind::Off,
        }
    }

    /// A single-tenant policy with the given decode-fleet scaling policy
    /// (autoscaling experiments).
    pub fn autoscaled(scaling: ScalingPolicyKind) -> Self {
        Self {
            scaling,
            ..Self::default()
        }
    }

    /// A single-tenant policy with the given dispatch policy (heterogeneous-
    /// fleet routing experiments).
    pub fn dispatched(dispatch: DispatchPolicyKind) -> Self {
        Self {
            dispatch,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn request(id: u64, tenant: u32, arrival: f64) -> Request {
        Request {
            id,
            tenant: TenantId(tenant),
            arrival,
            input_len: 100,
            output_len: 10,
            session: 0,
            parent: None,
            shared_prefix_tokens: 0,
        }
    }

    /// Per-tenant sub-queue heads of an arrival-ordered flat queue.
    fn heads_of(queue: &VecDeque<usize>, requests: &[Request]) -> [Option<usize>; MAX_TENANTS] {
        let mut heads = [None; MAX_TENANTS];
        for &req in queue {
            let t = requests[req].tenant.index().min(MAX_TENANTS - 1);
            if heads[t].is_none() {
                heads[t] = Some(req);
            }
        }
        heads
    }

    // --- The retired O(queue) scan selections, kept verbatim as the oracle
    // --- the O(tenants) head-based policies are pinned against.

    fn scan_wrr(
        credit: &mut [f64; MAX_TENANTS],
        queue: &VecDeque<usize>,
        requests: &[Request],
        classes: &TenantClasses,
    ) -> usize {
        let mut present = [false; MAX_TENANTS];
        for &req in queue {
            present[requests[req].tenant.index().min(MAX_TENANTS - 1)] = true;
        }
        let mut round_total = 0.0;
        let mut winner = MAX_TENANTS;
        for (t, _) in present.iter().enumerate().filter(|(_, &p)| p) {
            let weight = classes.get(TenantId(t as u32)).weight;
            credit[t] += weight;
            round_total += weight;
            if winner == MAX_TENANTS || credit[t] > credit[winner] {
                winner = t;
            }
        }
        credit[winner] -= round_total;
        queue
            .iter()
            .position(|&req| requests[req].tenant.index().min(MAX_TENANTS - 1) == winner)
            .expect("winner was marked present from this queue")
    }

    fn scan_edf(queue: &VecDeque<usize>, requests: &[Request], classes: &TenantClasses) -> usize {
        let deadline = |req: usize| {
            let r = &requests[req];
            r.arrival + classes.get(r.tenant).slo_jct
        };
        let mut best = 0;
        for pos in 1..queue.len() {
            if deadline(queue[pos]) < deadline(queue[best]) {
                best = pos;
            }
        }
        best
    }

    #[test]
    fn tenant_classes_default_beyond_configured_set() {
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 3.0,
                slo_jct: 60.0,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: 600.0,
            },
        ]);
        assert_eq!(classes.len(), 2);
        assert_eq!(classes.get(TenantId(0)).weight, 3.0);
        assert_eq!(classes.get(TenantId(1)).slo_jct, 600.0);
        // Unconfigured tenant falls back to the default class.
        assert_eq!(classes.get(TenantId(5)).weight, 1.0);
        assert!(classes.get(TenantId(5)).slo_jct.is_infinite());
    }

    #[test]
    fn fcfs_picks_the_tenant_with_the_earliest_head() {
        let requests = vec![request(0, 1, 0.0), request(1, 0, 1.0)];
        let classes = TenantClasses::single_tenant();
        let mut fcfs = Fcfs;
        // Tenant 1's head (request 0) arrived before tenant 0's (request 1).
        let mut heads = [None; MAX_TENANTS];
        heads[0] = Some(1);
        heads[1] = Some(0);
        assert_eq!(fcfs.select_tenant(&heads, &requests, &classes, 5.0), 1);
    }

    #[test]
    fn wrr_shares_service_by_weight() {
        // Tenant 0 (weight 2) and tenant 1 (weight 1), both always backlogged:
        // over 3 selections tenant 0 must win twice, tenant 1 once.
        let requests: Vec<Request> = (0..12)
            .map(|i| request(i, (i % 2) as u32, i as f64))
            .collect();
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 2.0,
                slo_jct: f64::INFINITY,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: f64::INFINITY,
            },
        ]);
        let mut wrr = WeightedRoundRobin::default();
        let queue: VecDeque<usize> = [0, 1, 2, 3, 4, 5].into_iter().collect();
        let heads = heads_of(&queue, &requests);
        let mut wins = [0usize; 2];
        for _ in 0..6 {
            wins[wrr.select_tenant(&heads, &requests, &classes, 0.0)] += 1;
        }
        assert_eq!(wins, [4, 2], "2:1 weights over 6 turns");
    }

    #[test]
    fn wrr_serves_a_lone_tenant_in_arrival_order() {
        let requests: Vec<Request> = (0..4).map(|i| request(i, 0, i as f64)).collect();
        let classes = TenantClasses::single_tenant();
        let mut wrr = WeightedRoundRobin::default();
        let queue: VecDeque<usize> = [0, 1, 2, 3].into_iter().collect();
        // Only tenant 0 present: always tenant 0 (whose head is the earliest
        // arrival).
        for _ in 0..4 {
            assert_eq!(
                wrr.select_tenant(&heads_of(&queue, &requests), &requests, &classes, 0.0),
                0
            );
        }
    }

    #[test]
    fn slo_edf_prioritises_tight_deadlines_and_breaks_ties_by_arrival() {
        let requests = vec![
            request(0, 0, 0.0), // deadline 0 + 1000
            request(1, 1, 5.0), // deadline 5 + 10 = 15
            request(2, 1, 8.0), // deadline 8 + 10 = 18
        ];
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 1.0,
                slo_jct: 1000.0,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: 10.0,
            },
        ]);
        let mut edf = SloEdf;
        let queue: VecDeque<usize> = [0, 1, 2].into_iter().collect();
        assert_eq!(
            edf.select_tenant(&heads_of(&queue, &requests), &requests, &classes, 9.0),
            1
        );
        // Equal deadlines: the earliest-queued request wins.
        let twins = vec![request(0, 0, 1.0), request(1, 1, 1.0)];
        let classes = TenantClasses::new(&[TenantClass::default(), TenantClass::default()]);
        let queue: VecDeque<usize> = [0, 1].into_iter().collect();
        assert_eq!(
            edf.select_tenant(&heads_of(&queue, &twins), &twins, &classes, 2.0),
            0
        );
    }

    #[test]
    fn head_based_policies_match_the_retired_queue_scan() {
        // Drive the O(tenants) head-based selection and the retired O(queue)
        // scan through identical randomized queue evolutions; every selection
        // must pick the same request. This pins the per-tenant sub-queue
        // redesign bit-identical to the scan path it replaced.
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 3.0,
                slo_jct: 45.0,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: 800.0,
            },
            TenantClass {
                weight: 2.0,
                slo_jct: f64::INFINITY,
            },
        ]);
        // Deterministic pseudo-random stream (no external RNG in this crate).
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let requests: Vec<Request> = (0..64)
            .map(|i| {
                request(
                    i,
                    (next() % 3) as u32,
                    i as f64 + (next() % 7) as f64 * 0.125,
                )
            })
            .collect();

        let mut wrr_heads = WeightedRoundRobin::default();
        let mut wrr_scan_credit = [0.0f64; MAX_TENANTS];
        let mut edf_heads = SloEdf;

        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut arrivals = 0usize;
        for step in 0..200 {
            // Randomly push the next arrival(s) (arrival order preserved).
            while arrivals < requests.len() && next() % 2 == 0 {
                queue.push_back(arrivals);
                arrivals += 1;
            }
            if queue.is_empty() {
                continue;
            }
            let heads = heads_of(&queue, &requests);

            // EDF: stateless, compare directly.
            let scan_pos = scan_edf(&queue, &requests, &classes);
            let tenant = edf_heads.select_tenant(&heads, &requests, &classes, step as f64);
            assert_eq!(
                heads[tenant],
                Some(queue[scan_pos]),
                "step {step}: EDF head selection diverged from the scan"
            );

            // WRR: stateful; advance both copies with the same selection.
            let scan_pos = scan_wrr(&mut wrr_scan_credit, &queue, &requests, &classes);
            let tenant = wrr_heads.select_tenant(&heads, &requests, &classes, step as f64);
            let scan_req = queue[scan_pos];
            assert_eq!(
                heads[tenant],
                Some(scan_req),
                "step {step}: WRR head selection diverged from the scan"
            );
            queue.remove(scan_pos);
        }
    }

    #[test]
    fn token_bucket_enforces_weighted_rates_and_bursts() {
        let classes = TenantClasses::new(&[
            TenantClass {
                weight: 2.0,
                slo_jct: f64::INFINITY,
            },
            TenantClass {
                weight: 1.0,
                slo_jct: f64::INFINITY,
            },
        ]);
        let mut bucket = TenantTokenBucket::new(0.5, 2.0, &classes);
        // Burst of 2 admitted at t=0; the third is rejected.
        assert!(bucket.admit(&request(0, 1, 0.0), 0.0));
        assert!(bucket.admit(&request(1, 1, 0.0), 0.0));
        assert!(!bucket.admit(&request(2, 1, 0.0), 0.0));
        // Tenant 1 refills at 0.5/s: one token back after 2 s.
        assert!(bucket.admit(&request(3, 1, 2.0), 2.0));
        assert!(!bucket.admit(&request(4, 1, 2.0), 2.0));
        // Tenant 0 (weight 2) refills twice as fast — its own bucket is
        // untouched by tenant 1's spending.
        assert!(bucket.admit(&request(5, 0, 0.0), 0.0));
        assert!(bucket.admit(&request(6, 0, 0.0), 0.0));
        assert!(!bucket.admit(&request(7, 0, 0.0), 0.0));
        assert!(bucket.admit(&request(8, 0, 1.0), 1.0));
    }

    fn load(group: usize, queued_tokens: usize, busy: bool, service_secs: f64) -> ReplicaLoad {
        ReplicaLoad {
            group,
            queued_tokens,
            queue_len: usize::from(queued_tokens > 0),
            busy,
            service_secs,
        }
    }

    #[test]
    fn least_loaded_matches_the_pre_fleet_metric() {
        let mut policy = LeastLoaded;
        let req = request(0, 0, 0.0); // input_len = 100
                                      // Replica 1 has fewer queued tokens, but replica 2 is idle: idle beats
                                      // a busy replica whose in-service request counts at this length.
        let loads = [
            load(0, 300, false, 1.0),
            load(0, 50, true, 1.0),
            load(0, 120, false, 1.0),
        ];
        assert_eq!(policy.route(&loads, &req, 0.0), 2);
        // First minimum wins ties.
        let tied = [load(0, 80, false, 1.0), load(0, 80, false, 1.0)];
        assert_eq!(policy.route(&tied, &req, 0.0), 0);
    }

    #[test]
    fn fastest_eligible_prefers_the_faster_group_under_equal_load() {
        let mut policy = FastestEligible;
        let req = request(0, 0, 0.0);
        // Same backlog; group 1 serves this prompt twice as fast.
        let loads = [load(0, 200, false, 2.0), load(1, 200, false, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 1);
        // A fast group with a deep queue loses to an idle slow one.
        let loads = [load(0, 0, false, 2.0), load(1, 5_000, true, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 0);
    }

    #[test]
    fn session_affinity_pins_sessions_and_spills_under_load() {
        let mut policy = SessionAffinity::default();
        let mut req = request(0, 0, 0.0); // input_len = 100
        req.session = 7;
        // First turn of the session routes least-loaded and pins there.
        let loads = [load(0, 300, false, 1.0), load(0, 50, false, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 1);
        // Follow-ups stick to the pin even when it is no longer least-loaded
        // (400 <= 2 * 200 + 100).
        let loads = [load(0, 200, false, 1.0), load(0, 400, false, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 1);
        // ... until the pinned backlog crosses the spill threshold
        // (901 > 2 * 400 + 100); the session re-pins on the spill target.
        let loads = [load(0, 400, false, 1.0), load(0, 901, false, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 0);
        let loads = [load(0, 500, false, 1.0), load(0, 450, false, 1.0)];
        assert_eq!(policy.route(&loads, &req, 0.0), 0, "re-pinned after spill");
        // Independent requests (session 0) always route least-loaded.
        assert_eq!(policy.route(&loads, &request(1, 0, 0.0), 0.0), 1);
        // Different sessions pin independently.
        let mut other = request(2, 0, 0.0);
        other.session = 9;
        assert_eq!(policy.route(&loads, &other, 0.0), 1);
    }

    #[test]
    fn group_affinity_pins_tenants_to_groups() {
        let mut policy = GroupAffinity;
        let loads = [
            load(0, 500, false, 1.0),
            load(0, 0, false, 1.0),
            load(1, 0, false, 1.0),
            load(1, 100, false, 1.0),
        ];
        // Tenant 0 -> group 0 (least-loaded within it), tenant 1 -> group 1,
        // tenant 2 wraps to group 0 again.
        assert_eq!(policy.route(&loads, &request(0, 0, 0.0), 0.0), 1);
        assert_eq!(policy.route(&loads, &request(1, 1, 0.0), 0.0), 2);
        assert_eq!(policy.route(&loads, &request(2, 2, 0.0), 0.0), 1);
    }

    #[test]
    fn kinds_build_their_policies() {
        let classes = TenantClasses::single_tenant();
        let requests = vec![request(0, 0, 0.0)];
        let mut heads = [None; MAX_TENANTS];
        heads[0] = Some(0);
        for kind in SchedulingPolicyKind::all() {
            let mut policy = kind.build();
            assert_eq!(policy.select_tenant(&heads, &requests, &classes, 0.0), 0);
            assert!(!kind.name().is_empty());
        }
        for kind in DispatchPolicyKind::all() {
            let mut policy = kind.build();
            let loads = [load(0, 0, false, 1.0)];
            assert_eq!(policy.route(&loads, &requests[0], 0.0), 0);
            assert!(!kind.name().is_empty());
        }
        let mut admit = AdmissionPolicyKind::AdmitAll.build(&classes);
        assert!(admit.admit(&requests[0], 0.0));
        let mut bucket = AdmissionPolicyKind::TokenBucket {
            rate_per_weight: 1.0,
            burst: 1.0,
        }
        .build(&classes);
        assert!(bucket.admit(&requests[0], 0.0));
        assert!(!bucket.admit(&requests[0], 0.0));
    }

    fn view(live: usize, provisioning: usize, active: usize, queued: usize) -> GroupScalingView {
        GroupScalingView {
            group: 0,
            live,
            provisioning,
            draining: 0,
            capacity: 8,
            active,
            batch: 8,
            queued,
            arrived: 0,
        }
    }

    #[test]
    fn scaling_policies_track_load() {
        // Off instantiates to no controller at all; everything else to one.
        assert!(ScalingPolicyKind::Off.instantiate().is_none());
        for kind in ScalingPolicyKind::all(1.0).into_iter().skip(1) {
            assert!(kind.instantiate().is_some(), "{}", kind.name());
        }

        // The inert policy holds whatever is committed, including in-flight
        // provisioning orders.
        assert_eq!(HoldSteady.desired(&view(3, 1, 0, 100), 10.0), 4);

        // Threshold: backlog per committed replica against the watermarks.
        let mut th = ThresholdScaler::new(4.0, 1.0);
        assert_eq!(th.desired(&view(2, 0, 0, 10), 0.0), 3, "10/2 > 4 grows");
        assert_eq!(th.desired(&view(2, 0, 0, 1), 0.0), 1, "1/2 < 1 shrinks");
        assert_eq!(th.desired(&view(2, 0, 0, 4), 0.0), 2, "2 <= 4/2 <= 4 holds");
        // Provisioning replicas count as committed: no double-ordering while
        // the first order is still in flight.
        assert_eq!(th.desired(&view(2, 1, 0, 13), 0.0), 4);
        assert_eq!(th.desired(&view(2, 1, 0, 9), 0.0), 3);

        // Target utilization: demand over committed batch slots, hysteresis
        // band holds in between.
        let mut tu = TargetUtilizationScaler::new(0.7, 0.15);
        assert_eq!(tu.desired(&view(2, 0, 14, 0), 0.0), 3, "14/16 > 0.85");
        assert_eq!(tu.desired(&view(2, 0, 4, 0), 0.0), 1, "4/16 < 0.55");
        assert_eq!(tu.desired(&view(2, 0, 11, 0), 0.0), 2, "0.69 in band");

        // Predictive: the first tick seeds the EWMA, later ticks smooth it;
        // desired is the padded forecast over per-replica throughput.
        let mut pr = PredictiveScaler::new(0.5, 1.0, 1.0);
        let mut v = view(1, 0, 0, 0);
        v.arrived = 40;
        assert_eq!(pr.desired(&v, 10.0), 4, "seed: 4 rps / 1 rps per replica");
        v.arrived = 0;
        assert_eq!(pr.desired(&v, 20.0), 2, "EWMA 2 rps after an idle tick");
        // A zero-dt tick holds instead of dividing by zero.
        assert_eq!(pr.desired(&v, 20.0), 1);
    }
}
