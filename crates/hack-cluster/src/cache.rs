//! Session prefix-cache configuration and per-run state.
//!
//! The cache model itself ([`hack_kvcache::PrefixCache`]) lives in
//! `hack-kvcache`; this module wires one cache per decode replica into the
//! cluster simulator following the repo's off-instantiates-to-`None`
//! discipline:
//!
//! * [`CacheConfig::Off`] (the default) allocates no cache state at all —
//!   every cache site on the hot path is one `Option` check, so the off-path
//!   is bit- and cost-identical to the pre-cache simulator (pinned by
//!   seed_equivalence and an interleaved A/B bench row).
//! * Cache **on** gives each decode replica a [`PrefixCache`] sized as a
//!   fraction of that replica's KV budget. Resident prefixes are charged
//!   against the same `kv_used` accounting decode reservations use, so cache
//!   occupancy genuinely competes with decode memory: a reservation that
//!   doesn't fit evicts unpinned prefixes ([`PrefixCache::evict_until`])
//!   before it ever waits.
//!
//! A hit skips the shared prefix's prefill compute *and* its fabric transfer,
//! pins the prefix until the hit request finishes decoding, and forces the
//! request's decode placement onto the replica holding the prefix. Finished
//! session requests insert (or grow) their session's prefix on the replica
//! they decoded on.

use hack_kvcache::PrefixCache;
use serde::Serialize;
use std::collections::HashMap;

/// Prefix-cache switch on [`crate::SimulationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub enum CacheConfig {
    /// No prefix cache (the default): zero cache state is allocated and the
    /// run is bit- and cost-identical to the pre-cache simulator.
    #[default]
    Off,
    /// Per-decode-replica session prefix caches.
    On(CacheSettings),
}

impl CacheConfig {
    /// Cache on with the paper-flavored default settings.
    pub fn on() -> Self {
        Self::On(CacheSettings::default())
    }

    /// Cache on with an explicit capacity fraction.
    pub fn with_capacity_fraction(capacity_fraction: f64) -> Self {
        Self::On(CacheSettings { capacity_fraction })
    }

    /// Whether the cache is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, Self::On(_))
    }

    /// The settings when enabled.
    pub fn settings(&self) -> Option<CacheSettings> {
        match self {
            Self::Off => None,
            Self::On(s) => Some(*s),
        }
    }
}

/// Settings of a cache-enabled run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheSettings {
    /// Fraction of each decode replica's KV byte budget the prefix cache may
    /// occupy (`0 < f ≤ 1`). Resident prefixes still share the budget with
    /// decode reservations — the fraction caps how much the cache may *try*
    /// to keep; reservations can always reclaim unpinned prefixes.
    pub capacity_fraction: f64,
}

impl Default for CacheSettings {
    fn default() -> Self {
        Self {
            capacity_fraction: 0.5,
        }
    }
}

/// The decode replica and prefix size a request was promised at prefill time.
///
/// Recorded on the request's `ReqState` when the prefill-side lookup hits;
/// the decode dispatch honors it by placing the request on `replica`, where
/// `tokens` of its prompt are already resident (so both the prefill compute
/// and the KV transfer covered only the suffix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefixHit {
    /// Decode replica holding the prefix.
    pub replica: usize,
    /// Prompt tokens served from the cache.
    pub tokens: usize,
    /// Quantized-KV bytes those tokens occupy (already resident on
    /// `replica`, so the decode reservation shrinks by this much).
    pub bytes: f64,
}

/// Per-run prefix-cache state: one [`PrefixCache`] per decode replica, the
/// session residency index, and the aggregate counters surfaced on
/// [`crate::SimulationResult`].
///
/// Lives on the `ClusterState` blackboard as an `Option` — `None` when
/// [`CacheConfig::Off`]. The residency map is only ever *keyed into* (never
/// iterated), so the `HashMap` cannot leak iteration-order nondeterminism
/// into the simulation.
#[derive(Debug)]
pub struct SessionCacheState {
    /// One cache per decode replica (same indexing as the decode fleet).
    pub caches: Vec<PrefixCache>,
    /// Which decode replica holds each session's prefix, if any.
    pub resident: HashMap<u64, usize>,
    /// Prefill-side lookups that found a usable prefix.
    pub hits: usize,
    /// Session follow-ups whose prefix was not resident.
    pub misses: usize,
    /// Prefixes evicted (LRU pressure, reservation reclaim, failure, drain).
    pub evictions: usize,
    /// Fabric bytes not transferred thanks to hits.
    pub bytes_saved: f64,
    /// Prefill + quantization seconds not spent thanks to hits.
    pub prefill_secs_saved: f64,
}

impl SessionCacheState {
    /// Builds the per-replica caches: `capacity_fraction` of each replica's
    /// KV byte budget.
    pub fn new(settings: CacheSettings, kv_capacities: &[f64]) -> Self {
        assert!(
            settings.capacity_fraction > 0.0 && settings.capacity_fraction <= 1.0,
            "cache capacity fraction must be in (0, 1]"
        );
        Self {
            caches: kv_capacities
                .iter()
                .map(|cap| PrefixCache::new(cap * settings.capacity_fraction))
                .collect(),
            resident: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes_saved: 0.0,
            prefill_secs_saved: 0.0,
        }
    }

    /// The replica currently holding `session`'s prefix.
    pub fn replica_of(&self, session: u64) -> Option<usize> {
        self.resident.get(&session).copied()
    }

    /// Forgets every session resident on `replica` (after a failure or a
    /// scale-down drain) and returns the bytes that were resident there.
    /// Counts the drops as evictions.
    pub fn invalidate_replica(&mut self, replica: usize) -> f64 {
        let freed = self.caches[replica].used_bytes();
        for session in self.caches[replica].invalidate_all() {
            self.resident.remove(&session);
            self.evictions += 1;
        }
        freed
    }

    /// Hit rate over all prefill-side session lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_exposes_no_settings() {
        assert_eq!(CacheConfig::default(), CacheConfig::Off);
        assert!(!CacheConfig::Off.is_on());
        assert_eq!(CacheConfig::Off.settings(), None);
        let on = CacheConfig::on();
        assert!(on.is_on());
        assert_eq!(on.settings().unwrap().capacity_fraction, 0.5);
        assert_eq!(
            CacheConfig::with_capacity_fraction(0.25)
                .settings()
                .unwrap(),
            CacheSettings {
                capacity_fraction: 0.25
            }
        );
    }

    #[test]
    fn state_sizes_caches_from_replica_budgets() {
        let state = SessionCacheState::new(
            CacheSettings {
                capacity_fraction: 0.5,
            },
            &[100.0, 200.0],
        );
        assert_eq!(state.caches.len(), 2);
        assert_eq!(state.caches[0].capacity_bytes(), 50.0);
        assert_eq!(state.caches[1].capacity_bytes(), 100.0);
        assert_eq!(state.hit_rate(), 0.0);
    }

    #[test]
    fn invalidate_replica_forgets_residency_and_counts_evictions() {
        let mut state = SessionCacheState::new(
            CacheSettings {
                capacity_fraction: 1.0,
            },
            &[100.0, 100.0],
        );
        state.caches[0].insert(1, 10, 30.0);
        state.resident.insert(1, 0);
        state.caches[1].insert(2, 10, 40.0);
        state.resident.insert(2, 1);
        let freed = state.invalidate_replica(0);
        assert_eq!(freed, 30.0);
        assert_eq!(state.replica_of(1), None);
        assert_eq!(state.replica_of(2), Some(1));
        assert_eq!(state.evictions, 1);
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn zero_capacity_fraction_is_rejected() {
        SessionCacheState::new(
            CacheSettings {
                capacity_fraction: 0.0,
            },
            &[100.0],
        );
    }
}
