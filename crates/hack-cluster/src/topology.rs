//! Fabric topology and correlated-fault configuration.
//!
//! [`TopologySpec`] selects the KV-transfer fabric model. The default,
//! [`TopologySpec::Flat`], is the original per-NIC FIFO with a min-bandwidth
//! wire time and is pinned bit- and cost-identical to the pre-topology
//! simulator. [`TopologySpec::LinkGraph`] models the fabric as replica NIC →
//! ToR → spine tiers with per-link capacities; active KV transfers become
//! flows that fairly share each link, with progress re-split on every
//! transfer start/finish/failure event, so a group's effective NIC bandwidth
//! is emergent rather than assumed.
//!
//! [`FaultPlan`] generalizes the old single-decode-replica [`FailureSpec`]
//! (see [`crate::config`]) to a bounded schedule of typed fault events over
//! *fault domains* — a single replica, a NIC, a ToR, or the spine. A switch
//! fault atomically fails every replica behind it; in-flight transfers
//! crossing a dead link abort with partial progress and retry with
//! deterministic seeded backoff.
//!
//! [`FailureSpec`]: crate::config::FailureSpec

use serde::{Serialize, Value};
use std::fmt;

/// Maximum number of fault events in a [`FaultPlan`] (the plan is a
/// fixed-capacity `Copy` value, like [`crate::fleet::GroupSet`]).
pub const MAX_FAULTS: usize = 8;

/// Bounded transfer retry attempts before a request gives up on its current
/// reservation and re-enters admission.
pub const MAX_TRANSFER_ATTEMPTS: u32 = 4;

/// Bounded re-admissions after exhausted transfer retries before a request is
/// permanently aborted (it then counts into
/// [`crate::SimulationResult::aborted_requests`]).
pub const MAX_READMISSIONS: u32 = 2;

/// Base of the deterministic exponential retry backoff (seconds).
pub const RETRY_BACKOFF_BASE_S: f64 = 1.0;

/// The KV-transfer fabric model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub enum TopologySpec {
    /// The original fabric: one FIFO NIC per prefill replica, wire time from
    /// the min of the two groups' NIC bandwidths. Bit- and cost-identical to
    /// the pre-topology simulator (pinned by seed_equivalence and the
    /// interleaved `fault_storm` bench row).
    #[default]
    Flat,
    /// Link-graph fabric: per-replica NICs feeding ToR uplinks feeding a
    /// spine, with transfers as max-min fairly shared flows.
    LinkGraph(LinkGraphSpec),
}

impl TopologySpec {
    /// The link-graph spec, if this topology is one.
    pub fn link_graph(&self) -> Option<&LinkGraphSpec> {
        match self {
            TopologySpec::Flat => None,
            TopologySpec::LinkGraph(spec) => Some(spec),
        }
    }

    /// Decodes a topology from its serialized [`Value`] shape. A missing
    /// `topology` key in old snapshots lowers to [`TopologySpec::Flat`]; this
    /// decodes the present-key shapes.
    pub fn from_value(value: &Value) -> Option<TopologySpec> {
        match value {
            Value::String(s) if s == "Flat" => Some(TopologySpec::Flat),
            Value::Object(_) => {
                let inner = value.get_key("LinkGraph")?;
                let spec = match inner {
                    Value::Array(items) => LinkGraphSpec::from_value(items.first()?)?,
                    other => LinkGraphSpec::from_value(other)?,
                };
                Some(TopologySpec::LinkGraph(spec))
            }
            _ => None,
        }
    }
}

/// Parameters of the link-graph fabric: how many replicas share each ToR and
/// the per-link capacities of the two switching tiers.
///
/// Every KV transfer is a flow crossing five links — source prefill NIC,
/// prefill-side ToR uplink, spine, decode-side ToR uplink, destination decode
/// NIC — and receives `min_l capacity(l) / flows(l)` of bandwidth along its
/// path. NIC capacities come from the replica groups' `network_gbps`, so the
/// oversubscription of a ToR is `per_tor · nic_gbps / tor_uplink_gbps`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinkGraphSpec {
    /// Prefill replicas per prefill-side ToR (last ToR may be partial).
    pub prefill_per_tor: usize,
    /// Decode replicas per decode-side ToR.
    pub decode_per_tor: usize,
    /// Capacity of each ToR's spine uplink (Gbps).
    pub tor_uplink_gbps: f64,
    /// Capacity of the spine (Gbps), shared by all inter-ToR traffic.
    pub spine_gbps: f64,
}

impl LinkGraphSpec {
    /// A paper-shaped default: four prefill replicas and two decode replicas
    /// per ToR, 100 Gbps uplinks, a 400 Gbps spine.
    pub fn paper_default() -> Self {
        Self {
            prefill_per_tor: 4,
            decode_per_tor: 2,
            tor_uplink_gbps: 100.0,
            spine_gbps: 400.0,
        }
    }

    /// An effectively non-blocking fabric: uplinks and spine so fat that every
    /// flow is NIC-limited (useful as the "topology enabled, no contention"
    /// reference point).
    pub fn non_blocking() -> Self {
        Self {
            prefill_per_tor: 4,
            decode_per_tor: 2,
            tor_uplink_gbps: 1e6,
            spine_gbps: 1e6,
        }
    }

    /// Oversubscription ratio of a ToR whose replicas have `nic_gbps` NICs:
    /// aggregate downlink capacity over uplink capacity.
    pub fn oversubscription(&self, nic_gbps: f64, per_tor: usize) -> f64 {
        nic_gbps * per_tor as f64 / self.tor_uplink_gbps
    }

    /// Number of ToRs needed for `replicas` replicas at `per_tor` per switch.
    pub fn tors_for(replicas: usize, per_tor: usize) -> usize {
        replicas.div_ceil(per_tor.max(1))
    }

    /// Decodes a spec from its serialized [`Value`] tree.
    pub fn from_value(value: &Value) -> Option<LinkGraphSpec> {
        Some(LinkGraphSpec {
            prefill_per_tor: value.get_key("prefill_per_tor")?.as_f64()? as usize,
            decode_per_tor: value.get_key("decode_per_tor")?.as_f64()? as usize,
            tor_uplink_gbps: value.get_key("tor_uplink_gbps")?.as_f64()?,
            spine_gbps: value.get_key("spine_gbps")?.as_f64()?,
        })
    }
}

/// A fault domain: the unit of the cluster that a [`FaultEvent`] takes down.
///
/// Switch domains (`*Tor`, `Spine`, `*Nic`) atomically fail every replica
/// behind them and abort in-flight transfers crossing the dead link; they
/// require [`TopologySpec::LinkGraph`] (there are no links to cut in the flat
/// fabric). Replica domains work under either topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultDomain {
    /// One decode replica (global, group-major index) — the legacy
    /// [`FailureSpec`](crate::config::FailureSpec) semantics.
    DecodeReplica(usize),
    /// One prefill replica: its queue re-routes to live replicas, its
    /// in-flight prefill is aborted and re-admitted.
    PrefillReplica(usize),
    /// The NIC of one prefill replica: the replica fails and flows through
    /// the NIC abort (link-graph only).
    PrefillNic(usize),
    /// The NIC of one decode replica (link-graph only).
    DecodeNic(usize),
    /// A prefill-side ToR: every prefill replica behind it fails
    /// (link-graph only).
    PrefillTor(usize),
    /// A decode-side ToR: every decode replica behind it fails
    /// (link-graph only).
    DecodeTor(usize),
    /// The spine: no replica fails, but every in-flight transfer aborts and
    /// new transfers cannot start until recovery (link-graph only).
    Spine,
}

impl FaultDomain {
    /// Whether this domain cuts fabric links (and therefore requires the
    /// link-graph topology).
    pub fn needs_link_graph(&self) -> bool {
        !matches!(
            self,
            FaultDomain::DecodeReplica(_) | FaultDomain::PrefillReplica(_)
        )
    }

    /// A short stable label for traces and reports.
    pub fn label(&self) -> String {
        match self {
            FaultDomain::DecodeReplica(i) => format!("decode-{i}"),
            FaultDomain::PrefillReplica(i) => format!("prefill-{i}"),
            FaultDomain::PrefillNic(i) => format!("nic-p{i}"),
            FaultDomain::DecodeNic(i) => format!("nic-d{i}"),
            FaultDomain::PrefillTor(i) => format!("tor-p{i}"),
            FaultDomain::DecodeTor(i) => format!("tor-d{i}"),
            FaultDomain::Spine => "spine".to_string(),
        }
    }

    /// Decodes a domain from its serialized [`Value`] shape (unit variants
    /// serialize to a string, tuple variants to `{name: [index]}`).
    pub fn from_value(value: &Value) -> Option<FaultDomain> {
        match value {
            Value::String(s) if s == "Spine" => Some(FaultDomain::Spine),
            Value::Object(fields) => {
                let (name, inner) = fields.first()?;
                let index = match inner {
                    Value::Array(items) => items.first()?.as_f64()? as usize,
                    other => other.as_f64()? as usize,
                };
                match name.as_str() {
                    "DecodeReplica" => Some(FaultDomain::DecodeReplica(index)),
                    "PrefillReplica" => Some(FaultDomain::PrefillReplica(index)),
                    "PrefillNic" => Some(FaultDomain::PrefillNic(index)),
                    "DecodeNic" => Some(FaultDomain::DecodeNic(index)),
                    "PrefillTor" => Some(FaultDomain::PrefillTor(index)),
                    "DecodeTor" => Some(FaultDomain::DecodeTor(index)),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// One scheduled fault: a domain goes down at `at` and (optionally) recovers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// What fails.
    pub domain: FaultDomain,
    /// Failure time (seconds since trace start).
    pub at: f64,
    /// Recovery time, or `None` for a permanent fault.
    pub recover_at: Option<f64>,
}

impl FaultEvent {
    /// A permanent fault of `domain` at time `at`.
    pub fn permanent(domain: FaultDomain, at: f64) -> Self {
        Self {
            domain,
            at,
            recover_at: None,
        }
    }

    /// A fault of `domain` at `at` that recovers at `recover_at`.
    pub fn transient(domain: FaultDomain, at: f64, recover_at: f64) -> Self {
        Self {
            domain,
            at,
            recover_at: Some(recover_at),
        }
    }

    fn from_value(value: &Value) -> Option<FaultEvent> {
        Some(FaultEvent {
            domain: FaultDomain::from_value(value.get_key("domain")?)?,
            at: value.get_key("at")?.as_f64()?,
            recover_at: match value.get_key("recover_at") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64()?),
            },
        })
    }
}

/// A bounded, `Copy` schedule of fault events (at most [`MAX_FAULTS`]).
///
/// The empty plan (the default) injects nothing and is bit-identical to the
/// pre-fault simulator. The legacy single-failure
/// [`FailureSpec`](crate::config::FailureSpec) converts losslessly via
/// `From`, and [`FaultPlan::from_value`] additionally accepts that old
/// serialized shape (a `decode_replica`/`at`/`recover_at` object), so
/// pre-fault snapshots keep decoding.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    events: [Option<FaultEvent>; MAX_FAULTS],
    len: usize,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from a slice of events. Panics if more than [`MAX_FAULTS`].
    pub fn new(events: &[FaultEvent]) -> Self {
        assert!(
            events.len() <= MAX_FAULTS,
            "a FaultPlan holds at most {MAX_FAULTS} events, got {}",
            events.len()
        );
        let mut plan = Self::default();
        for &e in events {
            plan.events[plan.len] = Some(e);
            plan.len += 1;
        }
        plan
    }

    /// Appends an event. Panics when full.
    pub fn push(&mut self, event: FaultEvent) {
        assert!(
            self.len < MAX_FAULTS,
            "a FaultPlan holds at most {MAX_FAULTS} events"
        );
        self.events[self.len] = Some(event);
        self.len += 1;
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th fault event.
    pub fn get(&self, i: usize) -> &FaultEvent {
        self.events[i].as_ref().expect("fault index in range")
    }

    /// Iterates over the scheduled events.
    pub fn iter(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().take(self.len).filter_map(|e| e.as_ref())
    }

    /// Whether any event cuts fabric links (requires the link-graph topology).
    pub fn needs_link_graph(&self) -> bool {
        self.iter().any(|e| e.domain.needs_link_graph())
    }

    /// Decodes a plan from either the current shape (an array of fault
    /// events) or the legacy single-failure [`FailureSpec`] shape.
    ///
    /// [`FailureSpec`]: crate::config::FailureSpec
    pub fn from_value(value: &Value) -> Option<FaultPlan> {
        match value {
            Value::Null => Some(FaultPlan::none()),
            Value::Array(items) => {
                if items.len() > MAX_FAULTS {
                    return None;
                }
                let mut plan = FaultPlan::none();
                for item in items {
                    plan.push(FaultEvent::from_value(item)?);
                }
                Some(plan)
            }
            Value::Object(_) => {
                // Legacy FailureSpec snapshot: {decode_replica, at, recover_at}.
                let replica = value.get_key("decode_replica")?.as_f64()? as usize;
                let at = value.get_key("at")?.as_f64()?;
                let recover_at = match value.get_key("recover_at") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_f64()?),
                };
                Some(FaultPlan::new(&[FaultEvent {
                    domain: FaultDomain::DecodeReplica(replica),
                    at,
                    recover_at,
                }]))
            }
            _ => None,
        }
    }
}

impl Serialize for FaultPlan {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|e| e.serialize_value()).collect())
    }
}

impl serde::Deserialize for FaultPlan {}

/// A configuration error detected at [`Simulator`](crate::Simulator)
/// construction time, before any event runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A fault targets a replica index outside the fleet.
    ReplicaOutOfRange {
        /// The offending domain.
        domain: FaultDomain,
        /// Number of replicas (or switches) on that side.
        limit: usize,
    },
    /// A fault time is non-finite or negative.
    InvalidFaultTime {
        /// The offending domain.
        domain: FaultDomain,
        /// The rejected time.
        at: f64,
    },
    /// A fault recovers at or before its failure time.
    RecoveryBeforeFault {
        /// The offending domain.
        domain: FaultDomain,
        /// Failure time.
        at: f64,
        /// Rejected recovery time.
        recover_at: f64,
    },
    /// Two faults on the same domain overlap in time.
    OverlappingFaults {
        /// The domain faulted twice.
        domain: FaultDomain,
    },
    /// A fault cuts fabric links but the topology is [`TopologySpec::Flat`].
    TopologyRequired {
        /// The offending domain.
        domain: FaultDomain,
    },
    /// A link-graph capacity or grouping parameter is not a positive,
    /// finite number.
    InvalidTopology {
        /// Which parameter is invalid.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ReplicaOutOfRange { domain, limit } => write!(
                f,
                "failure targets {} but the cluster has {limit}",
                match domain {
                    FaultDomain::DecodeReplica(i) => format!("decode replica {i}"),
                    FaultDomain::PrefillReplica(i) => format!("prefill replica {i}"),
                    FaultDomain::PrefillNic(i) => format!("prefill NIC {i}"),
                    FaultDomain::DecodeNic(i) => format!("decode NIC {i}"),
                    FaultDomain::PrefillTor(i) => format!("prefill ToR {i}"),
                    FaultDomain::DecodeTor(i) => format!("decode ToR {i}"),
                    FaultDomain::Spine => "the spine".to_string(),
                }
            ),
            ConfigError::InvalidFaultTime { domain, at } => write!(
                f,
                "fault on {} has invalid time {at} (must be finite and >= 0)",
                domain.label()
            ),
            ConfigError::RecoveryBeforeFault {
                domain,
                at,
                recover_at,
            } => write!(
                f,
                "fault on {} recovers at {recover_at} <= failure time {at}",
                domain.label()
            ),
            ConfigError::OverlappingFaults { domain } => {
                write!(f, "overlapping faults on domain {}", domain.label())
            }
            ConfigError::TopologyRequired { domain } => write!(
                f,
                "fault on {} cuts fabric links and requires TopologySpec::LinkGraph",
                domain.label()
            ),
            ConfigError::InvalidTopology { what } => {
                write!(f, "link-graph topology has invalid {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Deterministic per-(seed, request, attempt) jitter in `[0, 1)` for the
/// retry backoff — a splitmix64 finalizer, identical across engine modes and
/// platforms.
pub(crate) fn retry_jitter(seed: u64, req: usize, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_add((req as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic seeded backoff before transfer retry `attempt`
/// (1-based): exponential base with bounded jitter.
pub(crate) fn retry_backoff(seed: u64, req: usize, attempt: u32) -> f64 {
    let scale = (1u64 << (attempt - 1).min(6)) as f64;
    RETRY_BACKOFF_BASE_S * scale * (1.0 + retry_jitter(seed, req, attempt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_the_default_topology() {
        assert_eq!(TopologySpec::default(), TopologySpec::Flat);
        assert!(TopologySpec::Flat.link_graph().is_none());
    }

    #[test]
    fn topology_serde_round_trips() {
        for topo in [
            TopologySpec::Flat,
            TopologySpec::LinkGraph(LinkGraphSpec::paper_default()),
        ] {
            let value = topo.serialize_value();
            assert_eq!(TopologySpec::from_value(&value), Some(topo));
        }
    }

    #[test]
    fn fault_plan_serde_round_trips() {
        let plan = FaultPlan::new(&[
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 10.0, 50.0),
            FaultEvent::permanent(FaultDomain::PrefillTor(0), 100.0),
            FaultEvent::transient(FaultDomain::Spine, 200.0, 210.0),
        ]);
        let value = plan.serialize_value();
        assert_eq!(FaultPlan::from_value(&value), Some(plan));
    }

    #[test]
    fn fault_plan_decodes_legacy_failure_spec_shape() {
        // A pre-fault-plan snapshot: the serialized FailureSpec object.
        let spec = crate::config::FailureSpec::transient(2, 40.0, 400.0);
        let value = spec.serialize_value();
        let plan = FaultPlan::from_value(&value).expect("legacy shape decodes");
        assert_eq!(plan, FaultPlan::from(spec));
        assert_eq!(
            plan.get(0).domain,
            FaultDomain::DecodeReplica(2),
            "legacy failures are decode-replica faults"
        );

        let permanent = crate::config::FailureSpec::permanent(0, 5.0);
        let plan = FaultPlan::from_value(&permanent.serialize_value()).unwrap();
        assert_eq!(plan.get(0).recover_at, None);
    }

    #[test]
    fn fault_domain_labels_and_link_needs() {
        assert!(!FaultDomain::DecodeReplica(0).needs_link_graph());
        assert!(!FaultDomain::PrefillReplica(0).needs_link_graph());
        for d in [
            FaultDomain::PrefillNic(0),
            FaultDomain::DecodeNic(1),
            FaultDomain::PrefillTor(0),
            FaultDomain::DecodeTor(1),
            FaultDomain::Spine,
        ] {
            assert!(d.needs_link_graph(), "{}", d.label());
        }
        assert_eq!(FaultDomain::Spine.label(), "spine");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let b1 = retry_backoff(42, 7, 1);
        let b2 = retry_backoff(42, 7, 2);
        let b3 = retry_backoff(42, 7, 3);
        assert_eq!(b1, retry_backoff(42, 7, 1), "same inputs, same backoff");
        assert!((RETRY_BACKOFF_BASE_S..2.0 * RETRY_BACKOFF_BASE_S).contains(&b1));
        assert!((2.0 * RETRY_BACKOFF_BASE_S..4.0 * RETRY_BACKOFF_BASE_S).contains(&b2));
        assert!(b3 > b2 && b2 > b1);
        assert_ne!(
            retry_jitter(42, 7, 1),
            retry_jitter(42, 8, 1),
            "jitter differs per request"
        );
    }

    #[test]
    fn oversubscription_ratio() {
        let spec = LinkGraphSpec::paper_default();
        let ratio = spec.oversubscription(40.0, 4);
        assert!((ratio - 1.6).abs() < 1e-12);
        assert_eq!(LinkGraphSpec::tors_for(5, 4), 2);
        assert_eq!(LinkGraphSpec::tors_for(4, 4), 1);
        assert_eq!(LinkGraphSpec::tors_for(0, 4), 0);
    }
}
