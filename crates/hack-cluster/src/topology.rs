//! Fabric topology and correlated-fault configuration.
//!
//! [`TopologySpec`] selects the KV-transfer fabric model. The default,
//! [`TopologySpec::Flat`], is the original per-NIC FIFO with a min-bandwidth
//! wire time and is pinned bit- and cost-identical to the pre-topology
//! simulator. [`TopologySpec::LinkGraph`] models the fabric as replica NIC →
//! ToR → spine tiers with per-link capacities; active KV transfers become
//! flows that fairly share each link, with progress re-split on every
//! transfer start/finish/failure event, so a group's effective NIC bandwidth
//! is emergent rather than assumed.
//!
//! [`FaultPlan`] generalizes the old single-decode-replica [`FailureSpec`]
//! (see [`crate::config`]) to a bounded schedule of typed fault events over
//! *fault domains* — a single replica, a NIC, a ToR, or the spine. A switch
//! fault atomically fails every replica behind it; in-flight transfers
//! crossing a dead link abort with partial progress and retry with
//! deterministic seeded backoff.
//!
//! [`FailureSpec`]: crate::config::FailureSpec

use serde::{Serialize, Value};
use std::fmt;

/// Maximum number of fault events in a [`FaultPlan`] (the plan is a
/// fixed-capacity `Copy` value, like [`crate::fleet::GroupSet`]). Sized for
/// generated availability schedules ([`AvailabilityModel::generate_plan`]),
/// not just hand-written storms.
pub const MAX_FAULTS: usize = 32;

/// Default bounded transfer retry attempts before a request gives up on its
/// current reservation and re-enters admission
/// ([`RetryPolicy::max_transfer_attempts`]).
pub const MAX_TRANSFER_ATTEMPTS: u32 = 4;

/// Default bounded re-admissions after exhausted transfer retries before a
/// request is permanently aborted (it then counts into
/// [`crate::SimulationResult::aborted_requests`];
/// [`RetryPolicy::max_readmissions`]).
pub const MAX_READMISSIONS: u32 = 2;

/// Default base of the deterministic exponential retry backoff (seconds;
/// [`RetryPolicy::backoff_base_s`]).
pub const RETRY_BACKOFF_BASE_S: f64 = 1.0;

/// Default cap on the backoff doubling exponent
/// ([`RetryPolicy::backoff_cap_doublings`]).
pub const RETRY_BACKOFF_CAP_DOUBLINGS: u32 = 6;

/// The transfer-retry and re-admission policy: the deterministic seeded
/// exponential backoff (`base * 2^min(attempt-1, cap) * (1 + jitter)`) and
/// the two give-up budgets. The default reproduces the pre-policy hardcoded
/// constants bit-for-bit (pinned by seed_equivalence).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Backoff base (seconds) before the first retry.
    pub backoff_base_s: f64,
    /// The doubling exponent saturates at this many doublings (the backoff
    /// cap is `base * 2^cap`).
    pub backoff_cap_doublings: u32,
    /// Transfer attempts before the request drops its reservation and
    /// re-enters admission.
    pub max_transfer_attempts: u32,
    /// Re-admissions before the request is permanently abandoned.
    pub max_readmissions: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            backoff_base_s: RETRY_BACKOFF_BASE_S,
            backoff_cap_doublings: RETRY_BACKOFF_CAP_DOUBLINGS,
            max_transfer_attempts: MAX_TRANSFER_ATTEMPTS,
            max_readmissions: MAX_READMISSIONS,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy (called from
    /// [`SimulationConfig::validate`](crate::config::SimulationConfig)).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.backoff_base_s.is_finite() && self.backoff_base_s > 0.0) {
            return Err(ConfigError::InvalidRetryPolicy {
                what: "backoff_base_s (must be positive and finite)",
            });
        }
        if self.backoff_cap_doublings > 62 {
            return Err(ConfigError::InvalidRetryPolicy {
                what: "backoff_cap_doublings (must be <= 62)",
            });
        }
        if self.max_transfer_attempts == 0 {
            return Err(ConfigError::InvalidRetryPolicy {
                what: "max_transfer_attempts (must be >= 1)",
            });
        }
        Ok(())
    }
}

/// The KV-transfer fabric model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub enum TopologySpec {
    /// The original fabric: one FIFO NIC per prefill replica, wire time from
    /// the min of the two groups' NIC bandwidths. Bit- and cost-identical to
    /// the pre-topology simulator (pinned by seed_equivalence and the
    /// interleaved `fault_storm` bench row).
    #[default]
    Flat,
    /// Link-graph fabric: per-replica NICs feeding ToR uplinks feeding a
    /// spine, with transfers as max-min fairly shared flows.
    LinkGraph(LinkGraphSpec),
}

impl TopologySpec {
    /// The link-graph spec, if this topology is one.
    pub fn link_graph(&self) -> Option<&LinkGraphSpec> {
        match self {
            TopologySpec::Flat => None,
            TopologySpec::LinkGraph(spec) => Some(spec),
        }
    }

    /// Decodes a topology from its serialized [`Value`] shape. A missing
    /// `topology` key in old snapshots lowers to [`TopologySpec::Flat`]; this
    /// decodes the present-key shapes.
    pub fn from_value(value: &Value) -> Option<TopologySpec> {
        match value {
            Value::String(s) if s == "Flat" => Some(TopologySpec::Flat),
            Value::Object(_) => {
                let inner = value.get_key("LinkGraph")?;
                let spec = match inner {
                    Value::Array(items) => LinkGraphSpec::from_value(items.first()?)?,
                    other => LinkGraphSpec::from_value(other)?,
                };
                Some(TopologySpec::LinkGraph(spec))
            }
            _ => None,
        }
    }
}

/// Parameters of the link-graph fabric: how many replicas share each ToR and
/// the per-link capacities of the two switching tiers.
///
/// Every KV transfer is a flow crossing five links — source prefill NIC,
/// prefill-side ToR uplink, one spine block, decode-side ToR uplink,
/// destination decode NIC — and receives `min_l capacity(l) / flows(l)` of
/// bandwidth along its path. NIC capacities come from the replica groups'
/// `network_gbps`, so the oversubscription of a ToR is
/// `per_tor · nic_gbps / tor_uplink_gbps`.
///
/// With `spines > 1` the fabric has that many redundant spine blocks of
/// `spine_gbps` each; every flow is pinned to one block by a deterministic
/// ECMP hash of its request id, and a spine fault reroutes surviving flows
/// across the remaining blocks instead of aborting them. `spines == 1` is
/// bit-identical to the pre-ECMP single-spine fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinkGraphSpec {
    /// Prefill replicas per prefill-side ToR (last ToR may be partial).
    pub prefill_per_tor: usize,
    /// Decode replicas per decode-side ToR.
    pub decode_per_tor: usize,
    /// Capacity of each ToR's spine uplink (Gbps).
    pub tor_uplink_gbps: f64,
    /// Capacity of each spine block (Gbps), shared by the inter-ToR traffic
    /// ECMP-hashed onto it.
    pub spine_gbps: f64,
    /// Number of redundant spine blocks (ECMP paths). Old snapshots without
    /// the key decode to 1.
    pub spines: usize,
}

impl LinkGraphSpec {
    /// A paper-shaped default: four prefill replicas and two decode replicas
    /// per ToR, 100 Gbps uplinks, a 400 Gbps spine.
    pub fn paper_default() -> Self {
        Self {
            prefill_per_tor: 4,
            decode_per_tor: 2,
            tor_uplink_gbps: 100.0,
            spine_gbps: 400.0,
            spines: 1,
        }
    }

    /// The paper-shaped fabric with `spines` redundant spine blocks (ECMP).
    pub fn redundant(spines: usize) -> Self {
        Self {
            spines,
            ..Self::paper_default()
        }
    }

    /// An effectively non-blocking fabric: uplinks and spine so fat that every
    /// flow is NIC-limited (useful as the "topology enabled, no contention"
    /// reference point).
    pub fn non_blocking() -> Self {
        Self {
            prefill_per_tor: 4,
            decode_per_tor: 2,
            tor_uplink_gbps: 1e6,
            spine_gbps: 1e6,
            spines: 1,
        }
    }

    /// Oversubscription ratio of a ToR whose replicas have `nic_gbps` NICs:
    /// aggregate downlink capacity over uplink capacity.
    pub fn oversubscription(&self, nic_gbps: f64, per_tor: usize) -> f64 {
        nic_gbps * per_tor as f64 / self.tor_uplink_gbps
    }

    /// Number of ToRs needed for `replicas` replicas at `per_tor` per switch.
    pub fn tors_for(replicas: usize, per_tor: usize) -> usize {
        replicas.div_ceil(per_tor.max(1))
    }

    /// Decodes a spec from its serialized [`Value`] tree.
    pub fn from_value(value: &Value) -> Option<LinkGraphSpec> {
        Some(LinkGraphSpec {
            prefill_per_tor: value.get_key("prefill_per_tor")?.as_f64()? as usize,
            decode_per_tor: value.get_key("decode_per_tor")?.as_f64()? as usize,
            tor_uplink_gbps: value.get_key("tor_uplink_gbps")?.as_f64()?,
            spine_gbps: value.get_key("spine_gbps")?.as_f64()?,
            spines: value
                .get_key("spines")
                .and_then(Value::as_f64)
                .map_or(1, |v| v as usize),
        })
    }
}

/// A fault domain: the unit of the cluster that a [`FaultEvent`] takes down.
///
/// Switch domains (`*Tor`, `Spine`, `*Nic`) atomically fail every replica
/// behind them and abort in-flight transfers crossing the dead link; they
/// require [`TopologySpec::LinkGraph`] (there are no links to cut in the flat
/// fabric). Replica domains work under either topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultDomain {
    /// One decode replica (global, group-major index) — the legacy
    /// [`FailureSpec`](crate::config::FailureSpec) semantics.
    DecodeReplica(usize),
    /// One prefill replica: its queue re-routes to live replicas, its
    /// in-flight prefill is aborted and re-admitted.
    PrefillReplica(usize),
    /// The NIC of one prefill replica: the replica fails and flows through
    /// the NIC abort (link-graph only).
    PrefillNic(usize),
    /// The NIC of one decode replica (link-graph only).
    DecodeNic(usize),
    /// A prefill-side ToR: every prefill replica behind it fails
    /// (link-graph only).
    PrefillTor(usize),
    /// A decode-side ToR: every decode replica behind it fails
    /// (link-graph only).
    DecodeTor(usize),
    /// One spine block: no replica fails. With a single spine every in-flight
    /// transfer aborts and new transfers cannot start until recovery; with
    /// redundant spines surviving flows are ECMP-rerouted across the live
    /// blocks instead (link-graph only). Old snapshots serialized the
    /// unit-variant string `"Spine"`, which decodes to `Spine(0)`.
    Spine(usize),
}

impl FaultDomain {
    /// Whether this domain cuts fabric links (and therefore requires the
    /// link-graph topology).
    pub fn needs_link_graph(&self) -> bool {
        !matches!(
            self,
            FaultDomain::DecodeReplica(_) | FaultDomain::PrefillReplica(_)
        )
    }

    /// A short stable label for traces and reports.
    pub fn label(&self) -> String {
        match self {
            FaultDomain::DecodeReplica(i) => format!("decode-{i}"),
            FaultDomain::PrefillReplica(i) => format!("prefill-{i}"),
            FaultDomain::PrefillNic(i) => format!("nic-p{i}"),
            FaultDomain::DecodeNic(i) => format!("nic-d{i}"),
            FaultDomain::PrefillTor(i) => format!("tor-p{i}"),
            FaultDomain::DecodeTor(i) => format!("tor-d{i}"),
            FaultDomain::Spine(i) => format!("spine-{i}"),
        }
    }

    /// Decodes a domain from its serialized [`Value`] shape (tuple variants
    /// serialize to `{name: [index]}`; the legacy unit-variant string
    /// `"Spine"` decodes to `Spine(0)`).
    pub fn from_value(value: &Value) -> Option<FaultDomain> {
        match value {
            Value::String(s) if s == "Spine" => Some(FaultDomain::Spine(0)),
            Value::Object(fields) => {
                let (name, inner) = fields.first()?;
                let index = match inner {
                    Value::Array(items) => items.first()?.as_f64()? as usize,
                    other => other.as_f64()? as usize,
                };
                match name.as_str() {
                    "DecodeReplica" => Some(FaultDomain::DecodeReplica(index)),
                    "PrefillReplica" => Some(FaultDomain::PrefillReplica(index)),
                    "PrefillNic" => Some(FaultDomain::PrefillNic(index)),
                    "DecodeNic" => Some(FaultDomain::DecodeNic(index)),
                    "PrefillTor" => Some(FaultDomain::PrefillTor(index)),
                    "DecodeTor" => Some(FaultDomain::DecodeTor(index)),
                    "Spine" => Some(FaultDomain::Spine(index)),
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// One scheduled fault: a domain goes down at `at` and (optionally) recovers.
///
/// With `degrade: None` the fault is binary (the domain is fully down). With
/// `degrade: Some(f)` the fault is a *link degradation*: the domain's links
/// keep carrying traffic at `f` times their nominal capacity (`0 < f < 1`),
/// flows re-split instead of aborting, and no replica fails. Degradation is
/// only valid on link domains (NICs, ToRs, spines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultEvent {
    /// What fails.
    pub domain: FaultDomain,
    /// Failure time (seconds since trace start).
    pub at: f64,
    /// Recovery time, or `None` for a permanent fault.
    pub recover_at: Option<f64>,
    /// Capacity multiplier in `(0, 1)` for a degradation, or `None` for a
    /// binary up/down fault. Old snapshots without the key decode to `None`.
    pub degrade: Option<f64>,
}

impl FaultEvent {
    /// A permanent fault of `domain` at time `at`.
    pub fn permanent(domain: FaultDomain, at: f64) -> Self {
        Self {
            domain,
            at,
            recover_at: None,
            degrade: None,
        }
    }

    /// A fault of `domain` at `at` that recovers at `recover_at`.
    pub fn transient(domain: FaultDomain, at: f64, recover_at: f64) -> Self {
        Self {
            domain,
            at,
            recover_at: Some(recover_at),
            degrade: None,
        }
    }

    /// A link degradation: `domain`'s links run at `factor` times nominal
    /// capacity between `at` and `recover_at`.
    pub fn degraded(domain: FaultDomain, at: f64, recover_at: f64, factor: f64) -> Self {
        Self {
            domain,
            at,
            recover_at: Some(recover_at),
            degrade: Some(factor),
        }
    }

    fn from_value(value: &Value) -> Option<FaultEvent> {
        Some(FaultEvent {
            domain: FaultDomain::from_value(value.get_key("domain")?)?,
            at: value.get_key("at")?.as_f64()?,
            recover_at: match value.get_key("recover_at") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64()?),
            },
            degrade: match value.get_key("degrade") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_f64()?),
            },
        })
    }
}

/// A bounded, `Copy` schedule of fault events (at most [`MAX_FAULTS`]).
///
/// The empty plan (the default) injects nothing and is bit-identical to the
/// pre-fault simulator. The legacy single-failure
/// [`FailureSpec`](crate::config::FailureSpec) converts losslessly via
/// `From`, and [`FaultPlan::from_value`] additionally accepts that old
/// serialized shape (a `decode_replica`/`at`/`recover_at` object), so
/// pre-fault snapshots keep decoding.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    events: [Option<FaultEvent>; MAX_FAULTS],
    len: usize,
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan from a slice of events. Panics if more than [`MAX_FAULTS`].
    pub fn new(events: &[FaultEvent]) -> Self {
        assert!(
            events.len() <= MAX_FAULTS,
            "a FaultPlan holds at most {MAX_FAULTS} events, got {}",
            events.len()
        );
        let mut plan = Self::default();
        for &e in events {
            plan.events[plan.len] = Some(e);
            plan.len += 1;
        }
        plan
    }

    /// Appends an event. Panics when full.
    pub fn push(&mut self, event: FaultEvent) {
        assert!(
            self.len < MAX_FAULTS,
            "a FaultPlan holds at most {MAX_FAULTS} events"
        );
        self.events[self.len] = Some(event);
        self.len += 1;
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th fault event.
    pub fn get(&self, i: usize) -> &FaultEvent {
        self.events[i].as_ref().expect("fault index in range")
    }

    /// Iterates over the scheduled events.
    pub fn iter(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().take(self.len).filter_map(|e| e.as_ref())
    }

    /// Whether any event cuts fabric links (requires the link-graph topology).
    pub fn needs_link_graph(&self) -> bool {
        self.iter().any(|e| e.domain.needs_link_graph())
    }

    /// Decodes a plan from either the current shape (an array of fault
    /// events) or the legacy single-failure [`FailureSpec`] shape.
    ///
    /// [`FailureSpec`]: crate::config::FailureSpec
    pub fn from_value(value: &Value) -> Option<FaultPlan> {
        match value {
            Value::Null => Some(FaultPlan::none()),
            Value::Array(items) => {
                if items.len() > MAX_FAULTS {
                    return None;
                }
                let mut plan = FaultPlan::none();
                for item in items {
                    plan.push(FaultEvent::from_value(item)?);
                }
                Some(plan)
            }
            Value::Object(_) => {
                // Legacy FailureSpec snapshot: {decode_replica, at, recover_at}.
                let replica = value.get_key("decode_replica")?.as_f64()? as usize;
                let at = value.get_key("at")?.as_f64()?;
                let recover_at = match value.get_key("recover_at") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_f64()?),
                };
                Some(FaultPlan::new(&[FaultEvent {
                    domain: FaultDomain::DecodeReplica(replica),
                    at,
                    recover_at,
                    degrade: None,
                }]))
            }
            _ => None,
        }
    }
}

impl Serialize for FaultPlan {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|e| e.serialize_value()).collect())
    }
}

impl serde::Deserialize for FaultPlan {}

/// A configuration error detected at [`Simulator`](crate::Simulator)
/// construction time, before any event runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A fault targets a replica index outside the fleet.
    ReplicaOutOfRange {
        /// The offending domain.
        domain: FaultDomain,
        /// Number of replicas (or switches) on that side.
        limit: usize,
    },
    /// A fault time is non-finite or negative.
    InvalidFaultTime {
        /// The offending domain.
        domain: FaultDomain,
        /// The rejected time.
        at: f64,
    },
    /// A fault recovers at or before its failure time.
    RecoveryBeforeFault {
        /// The offending domain.
        domain: FaultDomain,
        /// Failure time.
        at: f64,
        /// Rejected recovery time.
        recover_at: f64,
    },
    /// Two faults on the same domain overlap in time.
    OverlappingFaults {
        /// The domain faulted twice.
        domain: FaultDomain,
    },
    /// A fault cuts fabric links but the topology is [`TopologySpec::Flat`].
    TopologyRequired {
        /// The offending domain.
        domain: FaultDomain,
    },
    /// A link-graph capacity or grouping parameter is not a positive,
    /// finite number.
    InvalidTopology {
        /// Which parameter is invalid.
        what: &'static str,
    },
    /// A [`RetryPolicy`] parameter is out of range.
    InvalidRetryPolicy {
        /// Which parameter is invalid.
        what: &'static str,
    },
    /// A degradation factor is not in `(0, 1)`, or a degradation targets a
    /// replica domain (only links can run slow; replicas fail binarily).
    InvalidDegradeFactor {
        /// The offending domain.
        domain: FaultDomain,
    },
    /// A session child references a parent that is missing from the trace,
    /// is itself, or arrives after the child — the simulator gates children
    /// on parent completion and cannot honor a causality-violating link.
    InvalidSessionParent {
        /// The child request's trace id.
        child: u64,
        /// The rejected parent id.
        parent: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ReplicaOutOfRange { domain, limit } => write!(
                f,
                "failure targets {} but the cluster has {limit}",
                match domain {
                    FaultDomain::DecodeReplica(i) => format!("decode replica {i}"),
                    FaultDomain::PrefillReplica(i) => format!("prefill replica {i}"),
                    FaultDomain::PrefillNic(i) => format!("prefill NIC {i}"),
                    FaultDomain::DecodeNic(i) => format!("decode NIC {i}"),
                    FaultDomain::PrefillTor(i) => format!("prefill ToR {i}"),
                    FaultDomain::DecodeTor(i) => format!("decode ToR {i}"),
                    FaultDomain::Spine(i) => format!("spine {i}"),
                }
            ),
            ConfigError::InvalidFaultTime { domain, at } => write!(
                f,
                "fault on {} has invalid time {at} (must be finite and >= 0)",
                domain.label()
            ),
            ConfigError::RecoveryBeforeFault {
                domain,
                at,
                recover_at,
            } => write!(
                f,
                "fault on {} recovers at {recover_at} <= failure time {at}",
                domain.label()
            ),
            ConfigError::OverlappingFaults { domain } => {
                write!(f, "overlapping faults on domain {}", domain.label())
            }
            ConfigError::TopologyRequired { domain } => write!(
                f,
                "fault on {} cuts fabric links and requires TopologySpec::LinkGraph",
                domain.label()
            ),
            ConfigError::InvalidTopology { what } => {
                write!(f, "link-graph topology has invalid {what}")
            }
            ConfigError::InvalidRetryPolicy { what } => {
                write!(f, "retry policy has invalid {what}")
            }
            ConfigError::InvalidDegradeFactor { domain } => write!(
                f,
                "degradation on {} needs a factor in (0, 1) and a link domain",
                domain.label()
            ),
            ConfigError::InvalidSessionParent { child, parent } => write!(
                f,
                "session child {child} references parent {parent} that is \
                 missing, itself, or arrives after the child"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Deterministic per-(seed, request, attempt) jitter in `[0, 1)` for the
/// retry backoff — a splitmix64 finalizer, identical across engine modes and
/// platforms.
pub(crate) fn retry_jitter(seed: u64, req: usize, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_add((req as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((attempt as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The deterministic seeded backoff before transfer retry `attempt`
/// (1-based): exponential base with bounded jitter, both from `policy`.
pub(crate) fn retry_backoff(policy: &RetryPolicy, seed: u64, req: usize, attempt: u32) -> f64 {
    let scale = (1u64 << (attempt - 1).min(policy.backoff_cap_doublings)) as f64;
    policy.backoff_base_s * scale * (1.0 + retry_jitter(seed, req, attempt))
}

/// Availability of one fault-domain kind: exponential mean time between
/// failures and mean time to repair, plus an optional degradation factor
/// (link kinds only) that turns generated faults into slowdowns instead of
/// binary outages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MtbfSpec {
    /// Mean time between failures (seconds; exponential inter-failure times).
    pub mtbf_s: f64,
    /// Mean time to repair (seconds; exponential repair times).
    pub mttr_s: f64,
    /// When `Some(f)`, generated faults are link degradations at factor `f`
    /// instead of binary outages. Ignored (forced to `None`) on replica
    /// domains, which can only fail binarily.
    pub degrade: Option<f64>,
}

impl MtbfSpec {
    /// A binary-outage availability spec.
    pub fn outage(mtbf_s: f64, mttr_s: f64) -> Self {
        Self {
            mtbf_s,
            mttr_s,
            degrade: None,
        }
    }

    /// A degradation availability spec: faults slow links to `factor` times
    /// nominal capacity instead of cutting them.
    pub fn slowdown(mtbf_s: f64, mttr_s: f64, factor: f64) -> Self {
        Self {
            mtbf_s,
            mttr_s,
            degrade: Some(factor),
        }
    }
}

/// The fleet dimensions an [`AvailabilityModel`] draws fault targets from —
/// a plain value so plan generation does not need the full cluster config
/// (see `ClusterConfig::fleet_shape`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetShape {
    /// Prefill replicas (global, group-major indexing).
    pub prefill_replicas: usize,
    /// Decode replicas (global, group-major indexing).
    pub decode_replicas: usize,
    /// Prefill-side ToRs.
    pub prefill_tors: usize,
    /// Decode-side ToRs.
    pub decode_tors: usize,
    /// Redundant spine blocks.
    pub spines: usize,
}

/// Per-fault-domain-kind MTBF/MTTR availability models that *generate* a
/// [`FaultPlan`] deterministically for a run horizon.
///
/// Each `(kind, instance)` pair walks its own seeded exponential
/// failure/repair process, so windows on one domain are sequential by
/// construction and the generated plan always passes
/// `SimulationConfig::validate` (no overlapping windows per domain, in-range
/// indices). Generation stops early once the plan holds [`MAX_FAULTS`]
/// events. `None` kinds never fail; the all-`None` default generates the
/// empty plan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct AvailabilityModel {
    /// Decode-replica availability.
    pub decode_replica: Option<MtbfSpec>,
    /// Prefill-replica availability.
    pub prefill_replica: Option<MtbfSpec>,
    /// Prefill-NIC availability (link-graph only).
    pub prefill_nic: Option<MtbfSpec>,
    /// Decode-NIC availability (link-graph only).
    pub decode_nic: Option<MtbfSpec>,
    /// Prefill-ToR availability (link-graph only).
    pub prefill_tor: Option<MtbfSpec>,
    /// Decode-ToR availability (link-graph only).
    pub decode_tor: Option<MtbfSpec>,
    /// Spine-block availability (link-graph only).
    pub spine: Option<MtbfSpec>,
}

/// One fault-generation kind: its MTBF/MTTR spec (if configured), how many
/// instances of the domain the fleet has, and the domain constructor.
type FaultKindSpec = (Option<MtbfSpec>, usize, fn(usize) -> FaultDomain);

impl AvailabilityModel {
    /// The `(kind, spec, instances, domain constructor)` grid in a fixed
    /// generation order.
    fn kinds(&self, shape: &FleetShape) -> [FaultKindSpec; 7] {
        // A shape without spine blocks is the flat fabric: it has no links to
        // cut or degrade, so every link-bound kind gets zero instances and the
        // generated plan stays valid for the flat topology.
        let nics = |n: usize| if shape.spines == 0 { 0 } else { n };
        [
            (self.decode_replica, shape.decode_replicas, {
                FaultDomain::DecodeReplica as fn(usize) -> FaultDomain
            }),
            (self.prefill_replica, shape.prefill_replicas, {
                FaultDomain::PrefillReplica
            }),
            (self.prefill_nic, nics(shape.prefill_replicas), {
                FaultDomain::PrefillNic
            }),
            (self.decode_nic, nics(shape.decode_replicas), {
                FaultDomain::DecodeNic
            }),
            (
                self.prefill_tor,
                shape.prefill_tors,
                FaultDomain::PrefillTor,
            ),
            (self.decode_tor, shape.decode_tors, FaultDomain::DecodeTor),
            (self.spine, shape.spines, FaultDomain::Spine),
        ]
    }

    /// Whether any configured kind cuts or degrades fabric links (and the
    /// generated plan therefore requires the link-graph topology).
    pub fn needs_link_graph(&self) -> bool {
        self.prefill_nic.is_some()
            || self.decode_nic.is_some()
            || self.prefill_tor.is_some()
            || self.decode_tor.is_some()
            || self.spine.is_some()
    }

    /// Generates the fault plan of one run: every configured `(kind,
    /// instance)` domain walks its own exponential failure/repair process
    /// from a [`DetRng`](hack_tensor::DetRng) seeded off `seed`, until
    /// `horizon_s`. Deterministic in `(self, shape, horizon_s, seed)`.
    pub fn generate_plan(&self, shape: &FleetShape, horizon_s: f64, seed: u64) -> FaultPlan {
        use hack_tensor::DetRng;
        let mut plan = FaultPlan::none();
        for (kind, (spec, instances, domain)) in self.kinds(shape).into_iter().enumerate() {
            let Some(spec) = spec else { continue };
            // Replica domains fail binarily; only links can run slow.
            let degrade = if kind < 2 { None } else { spec.degrade };
            for i in 0..instances {
                let mut rng = DetRng::new(
                    seed.wrapping_add((kind as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)),
                );
                let mut t = rng.exponential(1.0 / spec.mtbf_s);
                while t < horizon_s {
                    if plan.len() == MAX_FAULTS {
                        return plan;
                    }
                    let recover = t + rng.exponential(1.0 / spec.mttr_s);
                    plan.push(FaultEvent {
                        domain: domain(i),
                        at: t,
                        recover_at: Some(recover),
                        degrade,
                    });
                    // The next failure draw starts after the repair finishes,
                    // so windows on one domain never overlap.
                    t = recover + rng.exponential(1.0 / spec.mtbf_s);
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_the_default_topology() {
        assert_eq!(TopologySpec::default(), TopologySpec::Flat);
        assert!(TopologySpec::Flat.link_graph().is_none());
    }

    #[test]
    fn topology_serde_round_trips() {
        for topo in [
            TopologySpec::Flat,
            TopologySpec::LinkGraph(LinkGraphSpec::paper_default()),
        ] {
            let value = topo.serialize_value();
            assert_eq!(TopologySpec::from_value(&value), Some(topo));
        }
    }

    #[test]
    fn fault_plan_serde_round_trips() {
        let plan = FaultPlan::new(&[
            FaultEvent::transient(FaultDomain::DecodeReplica(1), 10.0, 50.0),
            FaultEvent::permanent(FaultDomain::PrefillTor(0), 100.0),
            FaultEvent::transient(FaultDomain::Spine(0), 200.0, 210.0),
            FaultEvent::degraded(FaultDomain::DecodeTor(1), 300.0, 330.0, 0.25),
        ]);
        let value = plan.serialize_value();
        assert_eq!(FaultPlan::from_value(&value), Some(plan));
    }

    #[test]
    fn legacy_spine_string_and_missing_spines_key_decode() {
        // Pre-ECMP snapshots serialized the unit variant "Spine" and a
        // LinkGraphSpec without the `spines` key.
        assert_eq!(
            FaultDomain::from_value(&Value::String("Spine".to_string())),
            Some(FaultDomain::Spine(0))
        );
        let mut value = LinkGraphSpec::paper_default().serialize_value();
        if let Value::Object(fields) = &mut value {
            fields.retain(|(k, _)| k != "spines");
        }
        let spec = LinkGraphSpec::from_value(&value).expect("legacy shape decodes");
        assert_eq!(spec.spines, 1);
        assert_eq!(spec, LinkGraphSpec::paper_default());
    }

    #[test]
    fn fault_plan_decodes_legacy_failure_spec_shape() {
        // A pre-fault-plan snapshot: the serialized FailureSpec object.
        let spec = crate::config::FailureSpec::transient(2, 40.0, 400.0);
        let value = spec.serialize_value();
        let plan = FaultPlan::from_value(&value).expect("legacy shape decodes");
        assert_eq!(plan, FaultPlan::from(spec));
        assert_eq!(
            plan.get(0).domain,
            FaultDomain::DecodeReplica(2),
            "legacy failures are decode-replica faults"
        );

        let permanent = crate::config::FailureSpec::permanent(0, 5.0);
        let plan = FaultPlan::from_value(&permanent.serialize_value()).unwrap();
        assert_eq!(plan.get(0).recover_at, None);
    }

    #[test]
    fn fault_domain_labels_and_link_needs() {
        assert!(!FaultDomain::DecodeReplica(0).needs_link_graph());
        assert!(!FaultDomain::PrefillReplica(0).needs_link_graph());
        for d in [
            FaultDomain::PrefillNic(0),
            FaultDomain::DecodeNic(1),
            FaultDomain::PrefillTor(0),
            FaultDomain::DecodeTor(1),
            FaultDomain::Spine(0),
        ] {
            assert!(d.needs_link_graph(), "{}", d.label());
        }
        assert_eq!(FaultDomain::Spine(0).label(), "spine-0");
        assert_eq!(FaultDomain::Spine(2).label(), "spine-2");
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let policy = RetryPolicy::default();
        let retry_backoff = |seed, req, attempt| retry_backoff(&policy, seed, req, attempt);
        let b1 = retry_backoff(42, 7, 1);
        let b2 = retry_backoff(42, 7, 2);
        let b3 = retry_backoff(42, 7, 3);
        assert_eq!(b1, retry_backoff(42, 7, 1), "same inputs, same backoff");
        assert!((RETRY_BACKOFF_BASE_S..2.0 * RETRY_BACKOFF_BASE_S).contains(&b1));
        assert!((2.0 * RETRY_BACKOFF_BASE_S..4.0 * RETRY_BACKOFF_BASE_S).contains(&b2));
        assert!(b3 > b2 && b2 > b1);
        assert_ne!(
            retry_jitter(42, 7, 1),
            retry_jitter(42, 8, 1),
            "jitter differs per request"
        );
    }

    #[test]
    fn retry_policy_default_validates_and_bad_values_do_not() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad_base = RetryPolicy {
            backoff_base_s: 0.0,
            ..RetryPolicy::default()
        };
        assert!(matches!(
            bad_base.validate(),
            Err(ConfigError::InvalidRetryPolicy { .. })
        ));
        let bad_cap = RetryPolicy {
            backoff_cap_doublings: 63,
            ..RetryPolicy::default()
        };
        assert!(bad_cap.validate().is_err());
        let bad_attempts = RetryPolicy {
            max_transfer_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(bad_attempts.validate().is_err());
    }

    fn shape() -> FleetShape {
        FleetShape {
            prefill_replicas: 8,
            decode_replicas: 4,
            prefill_tors: 2,
            decode_tors: 2,
            spines: 2,
        }
    }

    #[test]
    fn generated_plans_are_deterministic_and_sequential_per_domain() {
        let model = AvailabilityModel {
            decode_replica: Some(MtbfSpec::outage(400.0, 60.0)),
            spine: Some(MtbfSpec::outage(900.0, 30.0)),
            decode_tor: Some(MtbfSpec::slowdown(600.0, 120.0, 0.3)),
            ..AvailabilityModel::default()
        };
        let a = model.generate_plan(&shape(), 2000.0, 7);
        let b = model.generate_plan(&shape(), 2000.0, 7);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, model.generate_plan(&shape(), 2000.0, 8));
        assert!(!a.is_empty(), "2000 s horizon at MTBF 400 s must fault");
        // Windows on one domain are sequential: sorted by `at` per domain
        // and each recovery precedes the next failure.
        for e in a.iter() {
            assert!(e.at >= 0.0 && e.at < 2000.0);
            let recover = e.recover_at.expect("generated faults always recover");
            assert!(recover > e.at);
            for other in a.iter() {
                if other.domain == e.domain && other.at > e.at {
                    assert!(other.at > recover, "windows on {:?} overlap", e.domain);
                }
            }
        }
        // Degradations only land on link domains, binary faults elsewhere.
        for e in a.iter() {
            match e.domain {
                FaultDomain::DecodeTor(_) => assert_eq!(e.degrade, Some(0.3)),
                _ => assert_eq!(e.degrade, None),
            }
        }
    }

    #[test]
    fn generation_caps_at_max_faults_and_default_is_empty() {
        let model = AvailabilityModel::default();
        assert!(model.generate_plan(&shape(), 1e6, 1).is_empty());
        assert!(!model.needs_link_graph());
        let storm = AvailabilityModel {
            decode_replica: Some(MtbfSpec::outage(1.0, 0.5)),
            ..AvailabilityModel::default()
        };
        let plan = storm.generate_plan(&shape(), 1e6, 1);
        assert_eq!(plan.len(), MAX_FAULTS);
        let linky = AvailabilityModel {
            spine: Some(MtbfSpec::outage(100.0, 10.0)),
            ..AvailabilityModel::default()
        };
        assert!(linky.needs_link_graph());
    }

    #[test]
    fn oversubscription_ratio() {
        let spec = LinkGraphSpec::paper_default();
        let ratio = spec.oversubscription(40.0, 4);
        assert!((ratio - 1.6).abs() < 1e-12);
        assert_eq!(LinkGraphSpec::tors_for(5, 4), 2);
        assert_eq!(LinkGraphSpec::tors_for(4, 4), 1);
        assert_eq!(LinkGraphSpec::tors_for(0, 4), 0);
    }
}
