//! Cluster telemetry: configuration, the per-run recording state, and the
//! deterministic sampling component.
//!
//! The data layer lives in [`hack_metrics::telemetry`]; this module wires it
//! into the cluster simulator following the repo's retained-reference
//! discipline:
//!
//! * [`TelemetryConfig::Off`] (the default) instantiates to `None` on the
//!   [`crate::sim::Simulator`] run path — every recording site is guarded by
//!   one `Option` check, so the off-path is bit- and cost-identical to the
//!   pre-telemetry simulator.
//! * Telemetry **on** must not perturb the simulation: spans and samples are
//!   recorded from values the components already compute, and the periodic
//!   time-series sampler is a dedicated engine component that only *reads* the
//!   cluster blackboard, draws no randomness, and emits events only to itself
//!   — so the `SimulationResult` of a telemetry-on run is bit-identical to the
//!   telemetry-off run of the same seed (pinned by tests).
//!
//! See `OBSERVABILITY.md` at the repository root for the span taxonomy and how
//! to open exported traces in Perfetto.

use crate::components::ClusterState;
use crate::events::SampleTick;
use hack_metrics::telemetry::{SeriesId, Telemetry, TrackId, NO_REQUEST};
use hack_sim::{Event, EventHandler, SimulationContext};
use serde::Serialize;
use std::rc::Rc;

/// Telemetry switch on [`crate::SimulationConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub enum TelemetryConfig {
    /// No telemetry (the default): zero recording state is allocated and the
    /// run is bit- and cost-identical to the pre-telemetry simulator.
    #[default]
    Off,
    /// Record lifecycle spans and periodic time-series samples.
    On(TelemetrySettings),
}

impl TelemetryConfig {
    /// Telemetry on with default settings.
    pub fn on() -> Self {
        Self::On(TelemetrySettings::default())
    }

    /// Telemetry on with an explicit sampling interval (simulated seconds).
    pub fn with_interval(sample_interval_secs: f64) -> Self {
        Self::On(TelemetrySettings {
            sample_interval_secs,
            ..TelemetrySettings::default()
        })
    }

    /// Whether telemetry is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, Self::On(_))
    }

    /// The settings when enabled.
    pub fn settings(&self) -> Option<TelemetrySettings> {
        match self {
            Self::Off => None,
            Self::On(s) => Some(*s),
        }
    }
}

/// Settings of a telemetry-enabled run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TelemetrySettings {
    /// Period of the time-series sampler (simulated seconds). Each tick
    /// samples every registered series once; see `OBSERVABILITY.md` for
    /// guidance on choosing it relative to the expected makespan.
    pub sample_interval_secs: f64,
    /// Head-based trace sampling: record the full lifecycle (spans + instants)
    /// of one in every `span_sample_every` requests, chosen deterministically
    /// by request index. Aggregate counters, time-series gauges, and the JCT
    /// histogram always cover **every** request — sampling thins only the
    /// per-request trace. `0` (the default) auto-sizes from the run's request
    /// count so traces stay Perfetto-loadable and recording overhead stays
    /// flat at any scale; `1` records everything. Values are rounded up to a
    /// power of two.
    pub span_sample_every: u32,
}

impl Default for TelemetrySettings {
    fn default() -> Self {
        Self {
            sample_interval_secs: 10.0,
            span_sample_every: 0,
        }
    }
}

/// Under auto span sampling (`span_sample_every: 0`), the target number of
/// requests whose lifecycle is traced: runs up to this size trace every
/// request; larger runs thin deterministically to stay near it.
pub const AUTO_SPAN_TARGET: usize = 32_768;

impl TelemetrySettings {
    /// The concrete sampling stride for a run of `num_requests`: the
    /// configured stride — or, under auto (`0`), `num_requests /`
    /// [`AUTO_SPAN_TARGET`] — rounded up to a power of two (so the per-record
    /// sampled test is a single mask comparison).
    pub fn resolved_span_every(&self, num_requests: usize) -> u64 {
        let every = match self.span_sample_every {
            0 => (num_requests / AUTO_SPAN_TARGET).max(1) as u64,
            n => u64::from(n),
        };
        every.next_power_of_two()
    }
}

/// The per-run recording state: the [`Telemetry`] registry plus the
/// track/series ids registered for this cluster shape, and the small bits of
/// derived state (tenant backlog, in-flight transfer count) the sampler reads.
///
/// Lives on the [`ClusterState`] blackboard as an `Option` — `None` when
/// telemetry is off. The registry is owned directly (no interior mutability):
/// components already hold `&mut ClusterState` when they record, so every
/// recording call is a plain inlined `Vec` push — the per-request overhead of
/// a fully instrumented run stays within a few percent of the off run.
pub(crate) struct TelemetryState {
    /// The registry all spans/instants/samples/counters land in.
    pub tel: Telemetry,
    pub frontend_track: TrackId,
    pub prefill_tracks: Vec<TrackId>,
    pub nic_tracks: Vec<TrackId>,
    pub decode_tracks: Vec<TrackId>,
    prefill_queue_series: Vec<SeriesId>,
    prefill_busy_series: Vec<SeriesId>,
    decode_active_series: Vec<SeriesId>,
    decode_kv_series: Vec<SeriesId>,
    inflight_series: SeriesId,
    memory_wait_series: SeriesId,
    tenant_backlog_series: Vec<SeriesId>,
    /// Queued-but-not-yet-prefilling requests per tenant (sampler input).
    tenant_backlog: Vec<usize>,
    /// KV transfers currently waiting for or occupying a NIC (sampler input).
    inflight_transfers: usize,
    /// Head-based sampling mask (`stride - 1`, stride a power of two): request
    /// `req`'s lifecycle is traced iff `req & span_mask == 0`.
    span_mask: u64,
}

impl TelemetryState {
    /// Registers the tracks and series of a cluster with the given shape.
    /// Registration order is fixed, so exports are deterministic.
    pub fn new(
        prefill_replicas: usize,
        decode_replicas: usize,
        decode_groups: usize,
        tenants: usize,
        span_every: u64,
    ) -> Self {
        let mut tel = Telemetry::new();
        let frontend_track = tel.register_track("frontend");
        let prefill_tracks = (0..prefill_replicas)
            .map(|i| tel.register_track(format!("prefill-{i}")))
            .collect();
        let nic_tracks = (0..prefill_replicas)
            .map(|i| tel.register_track(format!("nic-p{i}")))
            .collect();
        let decode_tracks = (0..decode_replicas)
            .map(|i| tel.register_track(format!("decode-{i}")))
            .collect();
        let prefill_queue_series = (0..prefill_replicas)
            .map(|i| tel.register_series(format!("prefill-{i}/queue_depth")))
            .collect();
        let prefill_busy_series = (0..prefill_replicas)
            .map(|i| tel.register_series(format!("prefill-{i}/busy")))
            .collect();
        let decode_active_series = (0..decode_replicas)
            .map(|i| tel.register_series(format!("decode-{i}/active_batch")))
            .collect();
        let decode_kv_series = (0..decode_groups)
            .map(|g| tel.register_series(format!("decode-group-{g}/kv_occupancy")))
            .collect();
        let inflight_series = tel.register_series("fabric/inflight_transfers");
        let memory_wait_series = tel.register_series("cluster/memory_wait_queue");
        let tenant_backlog_series = (0..tenants)
            .map(|t| tel.register_series(format!("tenant-{t}/backlog")))
            .collect();
        Self {
            tel,
            frontend_track,
            prefill_tracks,
            nic_tracks,
            decode_tracks,
            prefill_queue_series,
            prefill_busy_series,
            decode_active_series,
            decode_kv_series,
            inflight_series,
            memory_wait_series,
            tenant_backlog_series,
            tenant_backlog: vec![0; tenants],
            inflight_transfers: 0,
            span_mask: span_every.next_power_of_two() - 1,
        }
    }

    /// Whether request `req`'s lifecycle is traced (head-based sampling: the
    /// whole journey of a sampled request is recorded, so every exported trace
    /// shows complete request lifecycles rather than disconnected fragments).
    #[inline]
    fn traced(&self, req: usize) -> bool {
        req as u64 & self.span_mask == 0
    }

    // --- Frontend lifecycle. ---

    #[inline]
    pub fn request_arrived(&mut self, req: usize, now: f64) {
        if self.traced(req) {
            self.tel
                .instant("arrived", "frontend", self.frontend_track, req as u64, now);
        }
    }

    #[inline]
    pub fn request_rejected(&mut self, req: usize, now: f64) {
        if self.traced(req) {
            self.tel
                .instant("rejected", "frontend", self.frontend_track, req as u64, now);
        }
        self.tel.add_counter("rejected", 1);
    }

    // --- Session prefix cache (see OBSERVABILITY.md, "Prefix-cache
    // taxonomy"). ---

    /// A prefill-side lookup found `req`'s session prefix resident on decode
    /// `replica`.
    #[inline]
    pub fn prefix_hit(&mut self, replica: usize, req: usize, now: f64) {
        if self.traced(req) {
            self.tel.instant(
                "prefix_hit",
                "decode",
                self.decode_tracks[replica],
                req as u64,
                now,
            );
        }
        self.tel.add_counter("prefix_hit", 1);
    }

    /// A session follow-up's prefix was not resident (evicted, invalidated,
    /// or never cached).
    #[inline]
    pub fn prefix_miss(&mut self, req: usize, now: f64) {
        if self.traced(req) {
            self.tel.instant(
                "prefix_miss",
                "frontend",
                self.frontend_track,
                req as u64,
                now,
            );
        }
        self.tel.add_counter("prefix_miss", 1);
    }

    /// `n` cached prefixes were dropped (LRU pressure, reservation reclaim,
    /// residency move, failure, or drain).
    #[inline]
    pub fn prefix_evicted(&mut self, n: usize) {
        self.tel.add_counter("prefix_evicted", n as u64);
    }

    #[inline]
    pub fn tenant_enqueued(&mut self, tenant: usize) {
        if let Some(n) = self.tenant_backlog.get_mut(tenant) {
            *n += 1;
        }
    }

    #[inline]
    pub fn tenant_dequeued(&mut self, tenant: usize) {
        if let Some(n) = self.tenant_backlog.get_mut(tenant) {
            *n = n.saturating_sub(1);
        }
    }

    // --- Prefill lifecycle. ---

    /// The prefill-queue wait ([arrival, prefill start]) and the scheduled
    /// prefill/quantization service spans. Recorded when the replica picks the
    /// request up — the service end times are deterministic at that point.
    #[inline]
    pub fn prefill_started(
        &mut self,
        replica: usize,
        req: usize,
        wait_start: f64,
        now: f64,
        prefill_t: f64,
        quant_t: f64,
    ) {
        if !self.traced(req) {
            return;
        }
        let track = self.prefill_tracks[replica];
        let tel = &mut self.tel;
        tel.span("queue_wait", "frontend", track, req as u64, wait_start, now);
        tel.span(
            "prefill_exec",
            "prefill",
            track,
            req as u64,
            now,
            now + prefill_t,
        );
        tel.span(
            "quantize",
            "prefill",
            track,
            req as u64,
            now + prefill_t,
            now + prefill_t + quant_t,
        );
    }

    // --- Transfer path. ---

    /// A KV transfer was serialized onto prefill replica `replica`'s NIC:
    /// waits for the NIC over [`now`, `wire_start`] (possibly empty) and
    /// occupies the wire over [`wire_start`, `wire_end`].
    #[inline]
    pub fn transfer_started(
        &mut self,
        replica: usize,
        req: usize,
        now: f64,
        wire_start: f64,
        wire_end: f64,
    ) {
        self.inflight_transfers += 1;
        if !self.traced(req) {
            return;
        }
        let track = self.nic_tracks[replica];
        let tel = &mut self.tel;
        tel.span("nic_wait", "fabric", track, req as u64, now, wire_start);
        tel.span(
            "kv_transfer",
            "fabric",
            track,
            req as u64,
            wire_start,
            wire_end,
        );
    }

    #[inline]
    pub fn transfer_landed(&mut self) {
        self.inflight_transfers = self.inflight_transfers.saturating_sub(1);
    }

    // --- Link-graph flows and the fault/retry path (see OBSERVABILITY.md,
    // "Fault and retry taxonomy"). ---

    /// A fair-shared flow started (or restarted after an abort) on the
    /// link-graph fabric. The span is recorded at the landing, when the end
    /// is known ([`Self::flow_finished`]); starting only moves the in-flight
    /// gauge.
    #[inline]
    pub fn flow_started(&mut self, _replica: usize) {
        self.inflight_transfers += 1;
    }

    /// A fair-shared flow delivered its last byte: the final (successful)
    /// attempt occupied [`started`, `now`]. The in-flight gauge drops via
    /// [`Self::transfer_landed`], which the caller invokes alongside.
    #[inline]
    pub fn flow_finished(&mut self, replica: usize, req: usize, started: f64, now: f64) {
        if self.traced(req) {
            self.tel.span(
                "kv_flow",
                "fabric",
                self.nic_tracks[replica],
                req as u64,
                started,
                now,
            );
        }
    }

    /// An in-flight transfer aborted (dead link or dead source replica) after
    /// running over [`started`, `now`]; its partial progress is kept for the
    /// retry.
    pub fn transfer_aborted(&mut self, replica: usize, req: usize, started: f64, now: f64) {
        self.inflight_transfers = self.inflight_transfers.saturating_sub(1);
        if self.traced(req) {
            self.tel.span(
                "kv_flow_aborted",
                "fabric",
                self.nic_tracks[replica],
                req as u64,
                started,
                now,
            );
        }
        self.tel.add_counter("transfer_aborts", 1);
    }

    /// Attempt `attempt` of `req`'s transfer was scheduled after a seeded
    /// backoff starting at `now`.
    pub fn transfer_retry_scheduled(
        &mut self,
        replica: usize,
        req: usize,
        now: f64,
        _attempt: u32,
    ) {
        if self.traced(req) {
            self.tel.instant(
                "transfer_retry",
                "fabric",
                self.nic_tracks[replica],
                req as u64,
                now,
            );
        }
        self.tel.add_counter("transfer_retries", 1);
    }

    /// `req` exhausted its transfer retries and re-admissions: permanently
    /// aborted.
    pub fn request_abandoned(&mut self, req: usize, now: f64) {
        if self.traced(req) {
            self.tel.instant(
                "abandoned",
                "frontend",
                self.frontend_track,
                req as u64,
                now,
            );
        }
        self.tel.add_counter("abandoned", 1);
    }

    pub fn prefill_failed(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_failed",
            "prefill",
            self.prefill_tracks[replica],
            NO_REQUEST,
            now,
        );
    }

    pub fn prefill_recovered(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_recovered",
            "prefill",
            self.prefill_tracks[replica],
            NO_REQUEST,
            now,
        );
    }

    /// Fault `fault` of the run's plan cut its links (the `req` slot carries
    /// the fault index for attribution in the exported trace).
    pub fn fabric_fault(&mut self, fault: usize, now: f64) {
        self.tel.instant(
            "fabric_fault",
            "fabric",
            self.frontend_track,
            fault as u64,
            now,
        );
    }

    pub fn fabric_recovered(&mut self, fault: usize, now: f64) {
        self.tel.instant(
            "fabric_recovered",
            "fabric",
            self.frontend_track,
            fault as u64,
            now,
        );
    }

    /// Fault `fault` of the run's plan degraded its links (capacity lowered,
    /// flows re-split but kept alive; the `req` slot carries the fault index).
    pub fn link_degraded(&mut self, fault: usize, now: f64) {
        self.tel.instant(
            "link_degraded",
            "fabric",
            self.frontend_track,
            fault as u64,
            now,
        );
    }

    /// Fault `fault`'s degraded links were restored to nominal capacity.
    pub fn link_restored(&mut self, fault: usize, now: f64) {
        self.tel.instant(
            "link_restored",
            "fabric",
            self.frontend_track,
            fault as u64,
            now,
        );
    }

    /// A flow survived a spine fault by ECMP-rerouting onto a surviving
    /// spine block (instant on the source replica's NIC track).
    pub fn flow_rerouted(&mut self, replica: usize, req: usize, now: f64) {
        if self.traced(req) {
            self.tel.instant(
                "flow_rerouted",
                "fabric",
                self.nic_tracks[replica],
                req as u64,
                now,
            );
        }
        self.tel.add_counter("flow_reroutes", 1);
    }

    // --- Decode lifecycle. ---

    /// A request waited for decode KV memory over [`wait_start`, `now`] before
    /// being admitted to replica `replica`.
    #[inline]
    pub fn memory_wait_over(&mut self, replica: usize, req: usize, wait_start: f64, now: f64) {
        if !self.traced(req) {
            return;
        }
        self.tel.span(
            "memory_wait",
            "decode",
            self.decode_tracks[replica],
            req as u64,
            wait_start,
            now,
        );
    }

    #[inline]
    pub fn requeued(&mut self, replica: usize, req: usize, now: f64) {
        if self.traced(req) {
            self.tel.instant(
                "requeued",
                "decode",
                self.decode_tracks[replica],
                req as u64,
                now,
            );
        }
        self.tel.add_counter("requeued", 1);
    }

    /// A request finished decoding on `replica`: the batched decode occupied
    /// [`started`, `now`], and the request's JCT enters the histogram.
    #[inline]
    pub fn decode_finished(
        &mut self,
        replica: usize,
        req: usize,
        started: f64,
        now: f64,
        jct: f64,
    ) {
        if self.traced(req) {
            let track = self.decode_tracks[replica];
            let tel = &mut self.tel;
            tel.span("decode_exec", "decode", track, req as u64, started, now);
            tel.instant("completed", "decode", track, req as u64, now);
        }
        self.tel.add_counter("completed", 1);
        self.tel.record_histogram("jct_seconds", jct);
    }

    pub fn decode_aborted(&mut self, replica: usize, req: usize, started: f64, now: f64) {
        if self.traced(req) {
            self.tel.span(
                "decode_aborted",
                "decode",
                self.decode_tracks[replica],
                req as u64,
                started,
                now,
            );
        }
        self.tel.add_counter("aborted_decodes", 1);
    }

    pub fn replica_failed(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_failed",
            "decode",
            self.decode_tracks[replica],
            NO_REQUEST,
            now,
        );
    }

    pub fn replica_recovered(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_recovered",
            "decode",
            self.decode_tracks[replica],
            NO_REQUEST,
            now,
        );
    }

    // --- Autoscaling lifecycle (see OBSERVABILITY.md, "Autoscaling
    // taxonomy"). ---

    /// The controller ordered a scale-up of `replica`: the provisioning delay
    /// starts now.
    pub fn replica_provisioning(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_provisioning",
            "scaling",
            self.decode_tracks[replica],
            NO_REQUEST,
            now,
        );
        self.tel.add_counter("scale_ups", 1);
    }

    /// `replica` finished provisioning and joined the dispatchable fleet.
    pub fn replica_joined(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_joined",
            "scaling",
            self.decode_tracks[replica],
            NO_REQUEST,
            now,
        );
    }

    /// `replica` finished draining its in-flight batch and left the fleet.
    pub fn replica_drained(&mut self, replica: usize, now: f64) {
        self.tel.instant(
            "replica_drained",
            "scaling",
            self.decode_tracks[replica],
            NO_REQUEST,
            now,
        );
        self.tel.add_counter("scale_downs", 1);
    }

    // --- Periodic sampling. ---

    /// Samples every registered time series. `prefill`/`decode`/`mem_wait`
    /// come from the cluster blackboard (the registry lives on the same
    /// blackboard, so the caller hands the sibling fields in by reference).
    fn sample(
        &mut self,
        prefill: &[crate::components::PrefillReplicaState],
        decode: &[crate::components::DecodeReplicaState],
        mem_wait: usize,
        now: f64,
    ) {
        let tel = &mut self.tel;
        for (i, p) in prefill.iter().enumerate() {
            tel.sample(self.prefill_queue_series[i], now, p.queue.len() as f64);
            tel.sample(self.prefill_busy_series[i], now, f64::from(p.busy));
        }
        for (i, d) in decode.iter().enumerate() {
            tel.sample(self.decode_active_series[i], now, d.active as f64);
        }
        for (g, &series) in self.decode_kv_series.iter().enumerate() {
            let (used, capacity) = decode
                .iter()
                .filter(|d| d.group == g)
                .fold((0.0, 0.0), |(u, c), d| (u + d.kv_used, c + d.kv_capacity));
            let occupancy = if capacity > 0.0 { used / capacity } else { 0.0 };
            tel.sample(series, now, occupancy);
        }
        tel.sample(self.inflight_series, now, self.inflight_transfers as f64);
        tel.sample(self.memory_wait_series, now, mem_wait as f64);
        for (t, &series) in self.tenant_backlog_series.iter().enumerate() {
            tel.sample(series, now, self.tenant_backlog[t] as f64);
        }
        tel.add_counter("sampler_ticks", 1);
    }
}

impl ClusterState {
    /// One sampler tick: append a sample to every registered time series.
    /// Read-only on everything the cluster components look at — recording
    /// mutates only the telemetry registry itself.
    pub(crate) fn sample_telemetry(&mut self, now: f64) {
        let Self {
            tel,
            prefill,
            decode,
            waiting_for_memory,
            ..
        } = self;
        if let Some(ts) = tel {
            ts.sample(prefill, decode, waiting_for_memory.len(), now);
        }
    }
}

/// The periodic time-series sampler: a dedicated engine component that ticks
/// every `interval` simulated seconds, samples the cluster blackboard
/// (read-only), and re-arms itself.
///
/// Determinism: the sampler draws no randomness, mutates nothing the cluster
/// components read, and emits only to itself, so interleaving its ticks with
/// cluster events — whatever the tie order — cannot change the simulation's
/// outcome. The run loop (not the sampler) decides when to stop stepping; the
/// sampler always keeps exactly one pending tick in the queue.
pub(crate) struct TelemetrySampler {
    pub ctx: SimulationContext,
    pub interval: f64,
    /// Ticks delivered so far, shared with the run loop: a step that only
    /// delivered a sampler tick must not advance the reported makespan.
    pub ticks: Rc<std::cell::Cell<u64>>,
}

impl EventHandler for TelemetrySampler {
    fn on(&mut self, event: Event) {
        if !event.is::<SampleTick>() {
            return;
        }
        self.ticks.set(self.ticks.get() + 1);
        // The sampler holds no reference to the cluster: it reaches the
        // blackboard through the engine-probe path ([`ClusterState`] is
        // installed as the probe on telemetry-on runs), which is how auxiliary
        // components observe a simulation without being wired into it.
        self.ctx
            .probe::<ClusterState, _>(|now, cs| cs.sample_telemetry(now));
        self.ctx.emit_self(SampleTick, self.interval);
    }
}
