//! Tensor- and pipeline-parallelism configurations (Table 3 of the paper).

use crate::gpu::GpuKind;
use crate::spec::ModelKind;
use serde::{Deserialize, Serialize, Value};

/// Tensor-parallel (TP) and pipeline-parallel (PP) degrees of one model replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Tensor-parallel degree (GPUs that split each layer).
    pub tp: usize,
    /// Pipeline-parallel degree (sequential layer groups).
    pub pp: usize,
}

impl Parallelism {
    /// Creates a parallelism configuration.
    pub fn new(tp: usize, pp: usize) -> Self {
        assert!(tp >= 1 && pp >= 1, "TP and PP degrees must be at least 1");
        Self { tp, pp }
    }

    /// Total GPUs used by one model replica.
    pub fn gpus_per_replica(&self) -> usize {
        self.tp * self.pp
    }

    /// Decodes a parallelism configuration from its serialized [`Value`] tree
    /// (`{"tp": …, "pp": …}` — the stub serde's data model).
    pub fn from_value(value: &Value) -> Option<Parallelism> {
        let tp = value.get_key("tp")?.as_f64()? as usize;
        let pp = value.get_key("pp")?.as_f64()? as usize;
        (tp >= 1 && pp >= 1).then(|| Parallelism::new(tp, pp))
    }

    /// Table 3: the TP/PP degrees used for a given model on a given GPU family.
    pub fn table3(model: ModelKind, gpu: GpuKind) -> Parallelism {
        use GpuKind::*;
        use ModelKind::*;
        let (tp, pp) = match (model, gpu) {
            (Mistral7B, A10G | L4) => (4, 1),
            (Mistral7B, V100 | T4) => (4, 1),
            (Mistral7B, A100) => (1, 1),
            (Phi3_14B, A10G | L4) => (2, 2),
            (Phi3_14B, V100 | T4) => (2, 2),
            (Phi3_14B, A100) => (1, 1),
            (Yi34B, A10G | L4) => (4, 2),
            (Yi34B, V100 | T4) => (4, 2),
            (Yi34B, A100) => (4, 1),
            (Llama31_70B, A10G | L4) => (4, 2),
            (Llama31_70B, V100 | T4) => (4, 4),
            (Llama31_70B, A100) => (4, 1),
            (Falcon180B, A10G | L4) => (4, 5),
            (Falcon180B, V100 | T4) => (4, 8),
            (Falcon180B, A100) => (4, 2),
        };
        Parallelism::new(tp, pp)
    }

    /// Number of instances of the given GPU family needed to host one replica
    /// (each non-A100 instance has 4 GPUs, the A100 instance has 8 — Table 2).
    pub fn instances_per_replica(&self, gpu: GpuKind) -> usize {
        let gpus_per_instance = gpu.instance().gpus;
        self.gpus_per_replica().div_ceil(gpus_per_instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_selected_entries() {
        assert_eq!(
            Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A10G),
            Parallelism::new(4, 2)
        );
        assert_eq!(
            Parallelism::table3(ModelKind::Llama31_70B, GpuKind::V100),
            Parallelism::new(4, 4)
        );
        assert_eq!(
            Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A100),
            Parallelism::new(4, 1)
        );
        assert_eq!(
            Parallelism::table3(ModelKind::Mistral7B, GpuKind::A100),
            Parallelism::new(1, 1)
        );
        assert_eq!(
            Parallelism::table3(ModelKind::Falcon180B, GpuKind::T4),
            Parallelism::new(4, 8)
        );
        assert_eq!(
            Parallelism::table3(ModelKind::Falcon180B, GpuKind::A100),
            Parallelism::new(4, 2)
        );
    }

    #[test]
    fn gpus_per_replica() {
        assert_eq!(Parallelism::new(4, 2).gpus_per_replica(), 8);
        assert_eq!(Parallelism::new(1, 1).gpus_per_replica(), 1);
    }

    #[test]
    fn replica_memory_is_sufficient_for_fp16_weights() {
        // Table 3 exists to make sure each replica has enough GPU memory for the
        // FP16 parameters; verify that holds under our derived parameter counts.
        for model in ModelKind::all() {
            for gpu in GpuKind::all() {
                let p = Parallelism::table3(model, gpu);
                let replica_mem =
                    p.gpus_per_replica() as f64 * gpu.spec().mem_gib * (1u64 << 30) as f64;
                let params = model.spec().param_bytes_fp16();
                assert!(
                    replica_mem > params,
                    "{} on {}: {replica_mem:.2e} bytes of GPU memory for {params:.2e} bytes of weights",
                    model.spec().name,
                    gpu.spec().name
                );
            }
        }
    }

    #[test]
    fn instances_per_replica_llama_on_a10g() {
        // Llama-3.1 70B on A10G: TP=4, PP=2 -> 8 GPUs -> two 4-GPU g5.12xlarge
        // instances (matching §7.6: "each prefill model required two A10G instances").
        let p = Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A10G);
        assert_eq!(p.instances_per_replica(GpuKind::A10G), 2);
        // On A100: TP=4 -> half a p4de.24xlarge.
        let pa = Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A100);
        assert_eq!(pa.instances_per_replica(GpuKind::A100), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_panics() {
        Parallelism::new(0, 1);
    }
}
