//! A small, runnable decoder-only reference transformer.
//!
//! The paper's accuracy results (Table 6/7) come from running real 7B–180B models; that
//! is impossible here, so the reproduction measures **output fidelity** instead: the
//! same small transformer is run with its attention computed (a) exactly, (b) through
//! the dequantize-then-compute path of the KV-quantization baselines, and (c) through
//! HACK's homomorphic-quantized kernels, and the divergence of logits / generated
//! tokens is the accuracy proxy (the mapping to the paper's absolute accuracy numbers
//! is described in DESIGN.md).
//!
//! The architecture mirrors the evaluated models at miniature scale: RMSNorm, rotary
//! position embeddings, grouped-query attention, SwiGLU MLP, tied embeddings.

use crate::spec::ModelSpec;
use hack_attention::baseline::{baseline_attention, AttentionMask};
use hack_attention::dequant_path::dequant_quantized_attention;
use hack_attention::prefill::hack_prefill_attention;
use hack_quant::params::QuantBits;
use hack_quant::HackConfig;
use hack_tensor::matmul::matmul;
use hack_tensor::softmax::softmax_slice_inplace;
use hack_tensor::{DetRng, Matrix};

/// How attention is computed inside the reference transformer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttentionBackend {
    /// Exact FP32 attention.
    Exact,
    /// FP16-rounded attention (the disaggregated baseline's numerics).
    Fp16,
    /// 2-bit (configurable) quantize → dequantize → FP16 attention
    /// (CacheGen / KVQuant numerics).
    DequantQuant {
        /// KV code precision.
        bits: QuantBits,
        /// Partition size.
        partition: usize,
    },
    /// HACK homomorphic-quantized attention.
    Hack(HackConfig),
}

/// Configuration of the reference transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceConfig {
    /// Number of layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Number of query heads.
    pub heads: usize,
    /// Number of KV heads (GQA).
    pub kv_heads: usize,
    /// Head dimension (`hidden = heads * head_dim`).
    pub head_dim: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl ReferenceConfig {
    /// A tiny configuration that still exercises GQA, RoPE and multi-layer structure.
    pub fn tiny() -> Self {
        Self {
            layers: 2,
            hidden: 64,
            heads: 4,
            kv_heads: 2,
            head_dim: 16,
            intermediate: 128,
            vocab: 128,
        }
    }

    /// A configuration that miniaturises a given real model spec (same head_dim ratio
    /// and GQA grouping, scaled-down widths).
    pub fn miniature_of(spec: &ModelSpec) -> Self {
        let heads = 4;
        let group = (spec.heads / spec.kv_heads).clamp(1, heads);
        Self {
            layers: 2,
            hidden: heads * 16,
            heads,
            kv_heads: (heads / group).max(1),
            head_dim: 16,
            intermediate: heads * 32,
            vocab: 128,
        }
    }
}

struct LayerWeights {
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w_gate: Matrix,
    w_up: Matrix,
    w_down: Matrix,
}

/// The reference transformer: fixed random weights (from a seed) plus a pluggable
/// attention backend.
pub struct ReferenceTransformer {
    /// Configuration.
    pub config: ReferenceConfig,
    /// Attention backend used in every layer.
    pub backend: AttentionBackend,
    embedding: Matrix,
    layers: Vec<LayerWeights>,
    rng_seed: u64,
}

impl ReferenceTransformer {
    /// Builds a transformer with weights drawn deterministically from `seed`.
    pub fn new(config: ReferenceConfig, backend: AttentionBackend, seed: u64) -> Self {
        assert_eq!(
            config.hidden,
            config.heads * config.head_dim,
            "hidden != heads*head_dim"
        );
        assert_eq!(
            config.heads % config.kv_heads,
            0,
            "heads must be divisible by kv_heads"
        );
        let mut rng = DetRng::new(seed);
        let h = config.hidden;
        let kv_dim = config.kv_heads * config.head_dim;
        let std = 1.0 / (h as f32).sqrt();
        let layer = |rng: &mut DetRng| LayerWeights {
            wq: Matrix::random_normal(h, h, 0.0, std, rng),
            wk: Matrix::random_normal(h, kv_dim, 0.0, std, rng),
            wv: Matrix::random_normal(h, kv_dim, 0.0, std, rng),
            wo: Matrix::random_normal(h, h, 0.0, std, rng),
            w_gate: Matrix::random_normal(h, config.intermediate, 0.0, std, rng),
            w_up: Matrix::random_normal(h, config.intermediate, 0.0, std, rng),
            w_down: Matrix::random_normal(config.intermediate, h, 0.0, std, rng),
        };
        let layers = (0..config.layers).map(|_| layer(&mut rng)).collect();
        let embedding = Matrix::random_normal(config.vocab, h, 0.0, 1.0, &mut rng);
        Self {
            config,
            backend,
            embedding,
            layers,
            rng_seed: seed,
        }
    }

    /// RMS normalisation of each row.
    fn rmsnorm(x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
            let inv = 1.0 / (ms + 1e-6).sqrt();
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
        out
    }

    /// Applies rotary position embeddings in place to a `tokens × (heads*head_dim)`
    /// projection.
    fn apply_rope(x: &mut Matrix, head_dim: usize) {
        let half = head_dim / 2;
        for t in 0..x.rows() {
            let row = x.row_mut(t);
            for head_start in (0..row.len()).step_by(head_dim) {
                for i in 0..half {
                    let theta = (t as f32) / 10_000f32.powf(2.0 * i as f32 / head_dim as f32);
                    let (sin, cos) = theta.sin_cos();
                    let a = row[head_start + i];
                    let b = row[head_start + half + i];
                    row[head_start + i] = a * cos - b * sin;
                    row[head_start + half + i] = a * sin + b * cos;
                }
            }
        }
    }

    /// Runs the chosen attention backend on one head's Q/K/V.
    fn head_attention(&self, q: &Matrix, k: &Matrix, v: &Matrix, rng: &mut DetRng) -> Matrix {
        match self.backend {
            AttentionBackend::Exact => baseline_attention(q, k, v, AttentionMask::Causal),
            AttentionBackend::Fp16 => {
                hack_attention::baseline::fp16_attention(q, k, v, AttentionMask::Causal)
            }
            AttentionBackend::DequantQuant { bits, partition } => {
                dequant_quantized_attention(q, k, v, bits, partition, AttentionMask::Causal, rng)
            }
            AttentionBackend::Hack(cfg) => hack_prefill_attention(q, k, v, cfg, rng).output,
        }
    }

    /// Full forward pass over a token sequence, returning the logits of every position
    /// (`tokens × vocab`).
    pub fn forward(&self, tokens: &[u32]) -> Matrix {
        assert!(!tokens.is_empty(), "forward requires at least one token");
        let cfg = &self.config;
        // Per-call RNG so stochastic quantization is deterministic per forward pass.
        let mut rng = DetRng::new(self.rng_seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut x = Matrix::zeros(tokens.len(), cfg.hidden);
        for (i, &tok) in tokens.iter().enumerate() {
            assert!(
                (tok as usize) < cfg.vocab,
                "token id {tok} out of vocabulary"
            );
            x.row_mut(i)
                .copy_from_slice(self.embedding.row(tok as usize));
        }

        let group = cfg.heads / cfg.kv_heads;
        for lw in &self.layers {
            // Attention block.
            let normed = Self::rmsnorm(&x);
            let mut q = matmul(&normed, &lw.wq);
            let mut k = matmul(&normed, &lw.wk);
            let v = matmul(&normed, &lw.wv);
            Self::apply_rope(&mut q, cfg.head_dim);
            Self::apply_rope(&mut k, cfg.head_dim);

            let mut attn_out = Matrix::zeros(tokens.len(), cfg.hidden);
            for head in 0..cfg.heads {
                let kv_head = head / group;
                let qh = q.col_block(head * cfg.head_dim, (head + 1) * cfg.head_dim);
                let kh = k.col_block(kv_head * cfg.head_dim, (kv_head + 1) * cfg.head_dim);
                let vh = v.col_block(kv_head * cfg.head_dim, (kv_head + 1) * cfg.head_dim);
                let oh = self.head_attention(&qh, &kh, &vh, &mut rng);
                attn_out.set_block(0, head * cfg.head_dim, &oh);
            }
            let attn_proj = matmul(&attn_out, &lw.wo);
            x = x.add(&attn_proj);

            // MLP block (SwiGLU).
            let normed = Self::rmsnorm(&x);
            let gate = matmul(&normed, &lw.w_gate).map(|v| v / (1.0 + (-v).exp()) /* SiLU */);
            let up = matmul(&normed, &lw.w_up);
            let inter = Matrix::from_fn(gate.rows(), gate.cols(), |r, c| {
                gate.get(r, c) * up.get(r, c)
            });
            let mlp = matmul(&inter, &lw.w_down);
            x = x.add(&mlp);
        }

        let normed = Self::rmsnorm(&x);
        // Tied embeddings: logits = normed · Eᵀ.
        hack_tensor::matmul::matmul_transposed_b(&normed, &self.embedding)
    }

    /// Logits of the last position only.
    pub fn next_token_logits(&self, tokens: &[u32]) -> Vec<f32> {
        let logits = self.forward(tokens);
        logits.row(logits.rows() - 1).to_vec()
    }

    /// Greedy generation of `n` tokens after `prompt`.
    pub fn greedy_generate(&self, prompt: &[u32], n: usize) -> Vec<u32> {
        let mut tokens = prompt.to_vec();
        let mut generated = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.next_token_logits(&tokens);
            let next = argmax(&logits);
            generated.push(next);
            tokens.push(next);
        }
        generated
    }

    /// Next-token probability distribution of the last position (softmax of logits).
    pub fn next_token_probs(&self, tokens: &[u32]) -> Vec<f32> {
        let mut logits = self.next_token_logits(tokens);
        softmax_slice_inplace(&mut logits);
        logits
    }
}

fn argmax(values: &[f32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::{cosine_similarity, relative_frobenius_error};

    fn prompt(len: usize, seed: u64, vocab: usize) -> Vec<u32> {
        let mut rng = DetRng::new(seed);
        (0..len).map(|_| rng.range_usize(0, vocab) as u32).collect()
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let cfg = ReferenceConfig::tiny();
        let model = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 7);
        let p = prompt(20, 1, cfg.vocab);
        let a = model.forward(&p);
        let b = model.forward(&p);
        assert_eq!(a.shape(), (20, cfg.vocab));
        assert_eq!(a, b, "forward must be deterministic");
        assert!(a.all_finite());
    }

    #[test]
    fn fp16_backend_is_close_to_exact() {
        let cfg = ReferenceConfig::tiny();
        let exact = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 7);
        let fp16 = ReferenceTransformer::new(cfg, AttentionBackend::Fp16, 7);
        let p = prompt(32, 2, cfg.vocab);
        let le = exact.forward(&p);
        let lf = fp16.forward(&p);
        assert!(relative_frobenius_error(&le, &lf) < 0.01);
    }

    #[test]
    fn hack_backend_preserves_logit_direction() {
        let cfg = ReferenceConfig::tiny();
        let exact = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 7);
        let hack =
            ReferenceTransformer::new(cfg, AttentionBackend::Hack(HackConfig::paper_default()), 7);
        let p = prompt(48, 3, cfg.vocab);
        let le = exact.forward(&p);
        let lh = hack.forward(&p);
        let cos = cosine_similarity(&le, &lh);
        assert!(cos > 0.9, "HACK logit cosine {cos}");
    }

    #[test]
    fn finer_partitions_give_higher_fidelity() {
        let cfg = ReferenceConfig::tiny();
        let exact = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 11);
        let p = prompt(64, 4, cfg.vocab);
        let le = exact.forward(&p);
        let err_for = |partition: usize| {
            let m = ReferenceTransformer::new(
                cfg,
                AttentionBackend::Hack(HackConfig::with_partition(partition)),
                11,
            );
            relative_frobenius_error(&le, &m.forward(&p))
        };
        let fine = err_for(32);
        let coarse = err_for(128);
        assert!(
            fine <= coarse * 1.1,
            "Π=32 error {fine} should not exceed Π=128 error {coarse}"
        );
    }

    #[test]
    fn dequant_backend_behaves_like_hack_at_same_precision() {
        let cfg = ReferenceConfig::tiny();
        let exact = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 13);
        let dq = ReferenceTransformer::new(
            cfg,
            AttentionBackend::DequantQuant {
                bits: QuantBits::Int2,
                partition: 64,
            },
            13,
        );
        let hack =
            ReferenceTransformer::new(cfg, AttentionBackend::Hack(HackConfig::paper_default()), 13);
        let p = prompt(48, 5, cfg.vocab);
        let le = exact.forward(&p);
        let e_dq = relative_frobenius_error(&le, &dq.forward(&p));
        let e_hack = relative_frobenius_error(&le, &hack.forward(&p));
        // Both are 2-bit KV methods; their error magnitudes should be in the same
        // ballpark (within ~3x of each other).
        assert!(
            e_hack < e_dq * 3.0 && e_dq < e_hack * 3.0,
            "dq {e_dq} vs hack {e_hack}"
        );
    }

    #[test]
    fn greedy_generation_is_deterministic_and_in_vocab() {
        let cfg = ReferenceConfig::tiny();
        let model = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 17);
        let p = prompt(10, 6, cfg.vocab);
        let a = model.greedy_generate(&p, 12);
        let b = model.greedy_generate(&p, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.iter().all(|&t| (t as usize) < cfg.vocab));
    }

    #[test]
    fn quantized_backends_mostly_agree_with_exact_generation() {
        let cfg = ReferenceConfig::tiny();
        let exact = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 19);
        let hack =
            ReferenceTransformer::new(cfg, AttentionBackend::Hack(HackConfig::paper_default()), 19);
        let p = prompt(24, 7, cfg.vocab);
        let a = exact.greedy_generate(&p, 16);
        let b = hack.greedy_generate(&p, 16);
        let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            agree >= 4,
            "at least some agreement expected, got {agree}/16"
        );
    }

    #[test]
    fn probs_are_a_distribution() {
        let cfg = ReferenceConfig::tiny();
        let model = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 23);
        let p = prompt(8, 8, cfg.vocab);
        let probs = model.next_token_probs(&p);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(probs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn miniature_configs_are_valid() {
        for kind in crate::spec::ModelKind::all() {
            let cfg = ReferenceConfig::miniature_of(&kind.spec());
            assert_eq!(cfg.hidden, cfg.heads * cfg.head_dim);
            assert_eq!(cfg.heads % cfg.kv_heads, 0);
            let model = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 1);
            let p = prompt(6, 9, cfg.vocab);
            assert!(model.forward(&p).all_finite());
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn out_of_vocab_token_panics() {
        let cfg = ReferenceConfig::tiny();
        let model = ReferenceTransformer::new(cfg, AttentionBackend::Exact, 1);
        model.forward(&[9999]);
    }
}
