//! Model architecture specifications and FLOP/byte counts.

use serde::{Deserialize, Serialize};

/// The five models evaluated in the paper (§7.1, Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Mistral-v0.3 7B ("M").
    Mistral7B,
    /// Microsoft Phi-3 14B ("P").
    Phi3_14B,
    /// 01-ai Yi 34B ("Y").
    Yi34B,
    /// Meta Llama-3.1 70B ("L") — the paper's default model.
    Llama31_70B,
    /// TII Falcon 180B ("F").
    Falcon180B,
}

impl ModelKind {
    /// All five models, in the paper's order.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::Mistral7B,
            ModelKind::Phi3_14B,
            ModelKind::Yi34B,
            ModelKind::Llama31_70B,
            ModelKind::Falcon180B,
        ]
    }

    /// Parses the serialized variant name back into the kind (the stub serde
    /// derive writes unit variants as bare strings; config decoders use this).
    pub fn from_name(name: &str) -> Option<ModelKind> {
        ModelKind::all()
            .into_iter()
            .find(|kind| format!("{kind:?}") == name)
    }

    /// The single-letter label used in the paper's figures.
    pub fn letter(&self) -> &'static str {
        match self {
            ModelKind::Mistral7B => "M",
            ModelKind::Phi3_14B => "P",
            ModelKind::Yi34B => "Y",
            ModelKind::Llama31_70B => "L",
            ModelKind::Falcon180B => "F",
        }
    }

    /// Architectural specification of this model.
    pub fn spec(&self) -> ModelSpec {
        match self {
            ModelKind::Mistral7B => ModelSpec {
                kind: *self,
                name: "Mistral-v0.3 7B",
                layers: 32,
                hidden: 4096,
                heads: 32,
                kv_heads: 8,
                head_dim: 128,
                intermediate: 14336,
                vocab: 32_768,
                max_context: 32_768,
            },
            ModelKind::Phi3_14B => ModelSpec {
                kind: *self,
                name: "Phi-3 14B",
                layers: 40,
                hidden: 5120,
                heads: 40,
                kv_heads: 10,
                head_dim: 128,
                intermediate: 17_920,
                vocab: 32_064,
                max_context: 131_072,
            },
            ModelKind::Yi34B => ModelSpec {
                kind: *self,
                name: "Yi 34B",
                layers: 60,
                hidden: 7168,
                heads: 56,
                kv_heads: 8,
                head_dim: 128,
                intermediate: 20_480,
                vocab: 64_000,
                max_context: 200_000,
            },
            ModelKind::Llama31_70B => ModelSpec {
                kind: *self,
                name: "Llama-3.1 70B",
                layers: 80,
                hidden: 8192,
                heads: 64,
                kv_heads: 8,
                head_dim: 128,
                intermediate: 28_672,
                vocab: 128_256,
                max_context: 131_072,
            },
            ModelKind::Falcon180B => ModelSpec {
                kind: *self,
                name: "Falcon 180B",
                layers: 80,
                hidden: 14_848,
                heads: 232,
                kv_heads: 8,
                head_dim: 64,
                // Falcon's MLP is a plain 2-matrix block with 4·hidden width; the
                // effective width below makes the generic 3-matrix (SwiGLU-style)
                // parameter formula reproduce the nominal 180B count.
                intermediate: 39_936,
                vocab: 65_024,
                // §7.1: Falcon-180B is limited to a 2K context window.
                max_context: 2048,
            },
        }
    }
}

/// Architectural parameters of a decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Which model this is.
    pub kind: ModelKind,
    /// Human-readable name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of query heads.
    pub heads: usize,
    /// Number of KV heads (grouped-query attention).
    pub kv_heads: usize,
    /// Per-head dimension.
    pub head_dim: usize,
    /// MLP intermediate dimension.
    pub intermediate: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum context window (tokens).
    pub max_context: usize,
}

impl ModelSpec {
    /// Approximate parameter count, derived from the architecture.
    pub fn param_count(&self) -> f64 {
        let h = self.hidden as f64;
        let layers = self.layers as f64;
        let q_dim = (self.heads * self.head_dim) as f64;
        let kv_dim = (self.kv_heads * self.head_dim) as f64;
        let attn = h * q_dim + 2.0 * h * kv_dim + q_dim * h; // Wq, Wk, Wv, Wo
        let mlp = 3.0 * h * self.intermediate as f64; // gate, up, down (SwiGLU)
        let embed = 2.0 * h * self.vocab as f64; // embedding + LM head
        layers * (attn + mlp) + embed
    }

    /// Parameter bytes in FP16.
    pub fn param_bytes_fp16(&self) -> f64 {
        2.0 * self.param_count()
    }

    /// Number of K (or V) elements produced per token across the whole model.
    pub fn kv_elements_per_token(&self) -> usize {
        self.layers * self.kv_heads * self.head_dim
    }

    /// FP16 bytes of KV data (K and V) per token.
    pub fn kv_bytes_per_token_fp16(&self) -> usize {
        2 * 2 * self.kv_elements_per_token()
    }

    /// FLOPs of a full forward pass over `tokens` new tokens with `kv_len` total
    /// context (linear layers + attention). Used for both prefill (`tokens = kv_len =
    /// prompt`) and decode (`tokens = 1`).
    pub fn forward_flops(&self, tokens: usize, kv_len: usize) -> f64 {
        let linear =
            2.0 * (self.param_count() - 2.0 * (self.hidden * self.vocab) as f64) * tokens as f64
                + 2.0 * (self.hidden * self.vocab) as f64 * tokens as f64;
        linear + self.attention_flops(tokens, kv_len)
    }

    /// FLOPs of the attention score/value matmuls alone (the part HACK accelerates with
    /// INT8): `2 · 2 · heads · head_dim · tokens · kv_len` per layer (QKᵀ and PV),
    /// halved for the causal prefill case where on average only half the keys are
    /// visible.
    pub fn attention_flops(&self, tokens: usize, kv_len: usize) -> f64 {
        let per_layer =
            2.0 * 2.0 * (self.heads * self.head_dim) as f64 * tokens as f64 * kv_len as f64;
        let causal_factor = if tokens == kv_len && tokens > 1 {
            0.5
        } else {
            1.0
        };
        self.layers as f64 * per_layer * causal_factor
    }

    /// FLOPs of one decode step at context length `kv_len`.
    pub fn decode_flops(&self, kv_len: usize) -> f64 {
        self.forward_flops(1, kv_len)
    }

    /// FLOPs of a prefill over `prompt` tokens.
    pub fn prefill_flops(&self, prompt: usize) -> f64 {
        self.forward_flops(prompt, prompt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_are_in_the_right_ballpark() {
        // Architecture-derived counts should land within ~20% of the nominal sizes.
        let expect = [
            (ModelKind::Mistral7B, 7.2e9),
            (ModelKind::Phi3_14B, 14.0e9),
            (ModelKind::Yi34B, 34.4e9),
            (ModelKind::Llama31_70B, 70.6e9),
            (ModelKind::Falcon180B, 180.0e9),
        ];
        for (kind, nominal) in expect {
            let got = kind.spec().param_count();
            let ratio = got / nominal;
            assert!(
                (0.75..1.25).contains(&ratio),
                "{}: derived {got:.3e} vs nominal {nominal:.3e} (ratio {ratio:.2})",
                kind.spec().name
            );
        }
    }

    #[test]
    fn kv_bytes_per_token_llama70b() {
        // 80 layers * 8 KV heads * 128 dims * 2 (K+V) * 2 bytes = 327,680 bytes/token.
        assert_eq!(
            ModelKind::Llama31_70B.spec().kv_bytes_per_token_fp16(),
            327_680
        );
    }

    #[test]
    fn gqa_models_have_fewer_kv_heads_than_query_heads() {
        for kind in ModelKind::all() {
            let s = kind.spec();
            assert!(s.kv_heads <= s.heads, "{}", s.name);
            assert_eq!(s.heads * s.head_dim % s.hidden, 0, "{}", s.name);
        }
    }

    #[test]
    fn prefill_flops_scale_superlinearly_with_prompt() {
        let s = ModelKind::Llama31_70B.spec();
        let short = s.prefill_flops(1000);
        let long = s.prefill_flops(10_000);
        assert!(
            long > 10.0 * short,
            "attention quadratic term should show up"
        );
    }

    #[test]
    fn decode_flops_grow_with_context() {
        let s = ModelKind::Llama31_70B.spec();
        assert!(s.decode_flops(10_000) > s.decode_flops(100));
        // The linear-layer term dominates for short contexts.
        assert!(s.decode_flops(100) > 2.0 * s.param_count() * 0.9);
    }

    #[test]
    fn attention_flops_are_a_minority_for_short_prompts_only() {
        let s = ModelKind::Llama31_70B.spec();
        let short = s.attention_flops(315, 315) / s.prefill_flops(315);
        let long = s.attention_flops(16_200, 16_200) / s.prefill_flops(16_200);
        assert!(short < 0.05, "short-prompt attention share {short}");
        assert!(long > 0.10, "long-prompt attention share {long}");
    }

    #[test]
    fn letters_match_paper() {
        let letters: Vec<&str> = ModelKind::all().iter().map(|m| m.letter()).collect();
        assert_eq!(letters, vec!["M", "P", "Y", "L", "F"]);
    }

    #[test]
    fn falcon_context_is_capped_at_2k() {
        assert_eq!(ModelKind::Falcon180B.spec().max_context, 2048);
    }
}
