//! GPU and AWS-instance specifications (Table 2 of the paper).

use serde::{Deserialize, Serialize};

/// GPU families used in the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// NVIDIA A10G (g5 instances) — the paper's default prefill GPU.
    A10G,
    /// NVIDIA V100 (p3 instances) — no INT8 tensor-core acceleration.
    V100,
    /// NVIDIA T4 (g4dn instances).
    T4,
    /// NVIDIA L4 (g6 instances).
    L4,
    /// NVIDIA A100 80GB (p4de instances) — the decode GPU.
    A100,
}

impl GpuKind {
    /// All GPU kinds, in the paper's figure order (A10G, V100, T4, L4, A100).
    pub fn all() -> [GpuKind; 5] {
        [
            GpuKind::A10G,
            GpuKind::V100,
            GpuKind::T4,
            GpuKind::L4,
            GpuKind::A100,
        ]
    }

    /// Parses the serialized variant name back into the kind (the stub serde
    /// derive writes unit variants as bare strings; config decoders use this).
    pub fn from_name(name: &str) -> Option<GpuKind> {
        GpuKind::all()
            .into_iter()
            .find(|kind| format!("{kind:?}") == name)
    }

    /// Hardware specification of one GPU of this kind.
    pub fn spec(&self) -> GpuSpec {
        match self {
            GpuKind::A10G => GpuSpec {
                kind: *self,
                name: "A10G",
                fp16_tflops: 70.0,
                int8_tops: Some(140.0),
                fp8_support: false,
                mem_bandwidth_gbs: 600.0,
                mem_gib: 24.0,
            },
            GpuKind::V100 => GpuSpec {
                kind: *self,
                name: "V100",
                fp16_tflops: 112.0,
                // §7.2: the V100 tensor core does not support INT8 matrix
                // multiplication, so quantized matmuls fall back to FP16 speed.
                int8_tops: None,
                fp8_support: false,
                mem_bandwidth_gbs: 900.0,
                mem_gib: 16.0,
            },
            GpuKind::T4 => GpuSpec {
                kind: *self,
                name: "T4",
                fp16_tflops: 65.0,
                int8_tops: Some(130.0),
                fp8_support: false,
                mem_bandwidth_gbs: 320.0,
                mem_gib: 16.0,
            },
            GpuKind::L4 => GpuSpec {
                kind: *self,
                name: "L4",
                fp16_tflops: 121.0,
                int8_tops: Some(242.0),
                fp8_support: true,
                mem_bandwidth_gbs: 300.0,
                mem_gib: 24.0,
            },
            GpuKind::A100 => GpuSpec {
                kind: *self,
                name: "A100",
                fp16_tflops: 312.0,
                int8_tops: Some(624.0),
                // Pre-H100 architecture: no FP8 tensor cores (§1, §3).
                fp8_support: false,
                mem_bandwidth_gbs: 2039.0,
                mem_gib: 80.0,
            },
        }
    }

    /// The AWS instance family the paper pairs with this GPU (Table 2).
    pub fn instance(&self) -> InstanceSpec {
        InstanceKind::for_gpu(*self).spec()
    }
}

/// Hardware specification of a single GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// GPU family.
    pub kind: GpuKind,
    /// Marketing name.
    pub name: &'static str,
    /// Dense FP16 tensor-core throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Dense INT8 tensor-core throughput in TOPS, or `None` when the GPU cannot
    /// accelerate INT8 matrix multiplication (V100).
    pub int8_tops: Option<f64>,
    /// Whether FP8 matrix multiplication is natively supported.
    pub fp8_support: bool,
    /// HBM/GDDR bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Memory capacity in GiB.
    pub mem_gib: f64,
}

impl GpuSpec {
    /// Effective INT8 throughput: falls back to FP16 throughput when the GPU cannot
    /// accelerate INT8 (so quantized matmuls are never *slower* than FP16 ones, they
    /// just are not faster).
    pub fn effective_int8_tops(&self) -> f64 {
        self.int8_tops.unwrap_or(self.fp16_tflops)
    }

    /// Speedup of INT8 matmuls over FP16 matmuls on this GPU (1.0 when unsupported).
    pub fn int8_speedup(&self) -> f64 {
        self.effective_int8_tops() / self.fp16_tflops
    }
}

/// AWS instance families of Table 2.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceKind {
    /// g5.12xlarge — 4 × A10G, 96 GiB GPU memory, 40 Gbps.
    G5_12xlarge,
    /// p3.8xlarge — 4 × V100, 64 GiB GPU memory, 10 Gbps.
    P3_8xlarge,
    /// g4dn.12xlarge — 4 × T4, 64 GiB GPU memory, 50 Gbps.
    G4dn_12xlarge,
    /// g6.12xlarge — 4 × L4, 96 GiB GPU memory, 40 Gbps.
    G6_12xlarge,
    /// p4de.24xlarge — 8 × A100, 640 GiB GPU memory, 400 Gbps.
    P4de_24xlarge,
}

impl InstanceKind {
    /// The instance family the paper uses for a given GPU kind.
    pub fn for_gpu(gpu: GpuKind) -> InstanceKind {
        match gpu {
            GpuKind::A10G => InstanceKind::G5_12xlarge,
            GpuKind::V100 => InstanceKind::P3_8xlarge,
            GpuKind::T4 => InstanceKind::G4dn_12xlarge,
            GpuKind::L4 => InstanceKind::G6_12xlarge,
            GpuKind::A100 => InstanceKind::P4de_24xlarge,
        }
    }

    /// Table 2 row for this instance.
    pub fn spec(&self) -> InstanceSpec {
        match self {
            InstanceKind::G5_12xlarge => InstanceSpec {
                kind: *self,
                name: "g5.12xlarge",
                gpu: GpuKind::A10G,
                gpus: 4,
                gpu_mem_gib: 96.0,
                network_gbps: 40.0,
                vcpus: 48,
                host_mem_gib: 192.0,
            },
            InstanceKind::P3_8xlarge => InstanceSpec {
                kind: *self,
                name: "p3.8xlarge",
                gpu: GpuKind::V100,
                gpus: 4,
                gpu_mem_gib: 64.0,
                network_gbps: 10.0,
                vcpus: 32,
                host_mem_gib: 244.0,
            },
            InstanceKind::G4dn_12xlarge => InstanceSpec {
                kind: *self,
                name: "g4dn.12xlarge",
                gpu: GpuKind::T4,
                gpus: 4,
                gpu_mem_gib: 64.0,
                network_gbps: 50.0,
                vcpus: 48,
                host_mem_gib: 192.0,
            },
            InstanceKind::G6_12xlarge => InstanceSpec {
                kind: *self,
                name: "g6.12xlarge",
                gpu: GpuKind::L4,
                gpus: 4,
                gpu_mem_gib: 96.0,
                network_gbps: 40.0,
                vcpus: 48,
                host_mem_gib: 192.0,
            },
            InstanceKind::P4de_24xlarge => InstanceSpec {
                kind: *self,
                name: "p4de.24xlarge",
                gpu: GpuKind::A100,
                gpus: 8,
                gpu_mem_gib: 640.0,
                network_gbps: 400.0,
                vcpus: 96,
                host_mem_gib: 1152.0,
            },
        }
    }
}

/// One AWS instance (Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Which family this is.
    pub kind: InstanceKind,
    /// AWS name.
    pub name: &'static str,
    /// GPU family on this instance.
    pub gpu: GpuKind,
    /// Number of GPUs.
    pub gpus: usize,
    /// Total GPU memory in GiB.
    pub gpu_mem_gib: f64,
    /// Network bandwidth in Gbps.
    pub network_gbps: f64,
    /// vCPU count.
    pub vcpus: usize,
    /// Host memory in GiB.
    pub host_mem_gib: f64,
}

impl InstanceSpec {
    /// Network bandwidth in bytes per second.
    pub fn network_bytes_per_sec(&self) -> f64 {
        self.network_gbps * 1e9 / 8.0
    }

    /// GPU memory per GPU in bytes.
    pub fn gpu_mem_bytes_per_gpu(&self) -> f64 {
        self.gpu_mem_gib * (1u64 << 30) as f64 / self.gpus as f64
    }

    /// Total GPU memory in bytes.
    pub fn gpu_mem_bytes(&self) -> f64 {
        self.gpu_mem_gib * (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let g5 = InstanceKind::G5_12xlarge.spec();
        assert_eq!(g5.gpus, 4);
        assert_eq!(g5.network_gbps, 40.0);
        assert_eq!(g5.gpu_mem_gib, 96.0);
        let p3 = InstanceKind::P3_8xlarge.spec();
        assert_eq!(p3.network_gbps, 10.0);
        assert_eq!(p3.vcpus, 32);
        let p4de = InstanceKind::P4de_24xlarge.spec();
        assert_eq!(p4de.gpus, 8);
        assert_eq!(p4de.network_gbps, 400.0);
        assert_eq!(p4de.gpu_mem_gib, 640.0);
        assert_eq!(p4de.host_mem_gib, 1152.0);
    }

    #[test]
    fn v100_has_no_int8_acceleration() {
        let v100 = GpuKind::V100.spec();
        assert!(v100.int8_tops.is_none());
        assert_eq!(v100.int8_speedup(), 1.0);
        assert_eq!(v100.effective_int8_tops(), v100.fp16_tflops);
    }

    #[test]
    fn int8_speedup_is_about_2x_where_supported() {
        for gpu in [GpuKind::A10G, GpuKind::T4, GpuKind::L4, GpuKind::A100] {
            let s = gpu.spec();
            assert!((s.int8_speedup() - 2.0).abs() < 0.05, "{}", s.name);
        }
    }

    #[test]
    fn no_pre_h100_gpu_has_fp8_except_l4() {
        assert!(!GpuKind::A100.spec().fp8_support);
        assert!(!GpuKind::V100.spec().fp8_support);
        assert!(GpuKind::L4.spec().fp8_support);
    }

    #[test]
    fn gpu_to_instance_mapping() {
        assert_eq!(GpuKind::A10G.instance().name, "g5.12xlarge");
        assert_eq!(GpuKind::A100.instance().name, "p4de.24xlarge");
        for gpu in GpuKind::all() {
            assert_eq!(gpu.instance().gpu, gpu);
        }
    }

    #[test]
    fn unit_conversions() {
        let g5 = InstanceKind::G5_12xlarge.spec();
        assert_eq!(g5.network_bytes_per_sec(), 5e9);
        assert_eq!(g5.gpu_mem_bytes(), 96.0 * (1u64 << 30) as f64);
        assert_eq!(g5.gpu_mem_bytes_per_gpu(), 24.0 * (1u64 << 30) as f64);
    }

    #[test]
    fn a100_is_fastest_and_best_connected() {
        let a100 = GpuKind::A100.spec();
        for other in [GpuKind::A10G, GpuKind::V100, GpuKind::T4, GpuKind::L4] {
            let o = other.spec();
            assert!(a100.fp16_tflops > o.fp16_tflops);
            assert!(a100.mem_bandwidth_gbs > o.mem_bandwidth_gbs);
            assert!(
                GpuKind::A100.instance().network_gbps > other.instance().network_gbps,
                "{}",
                o.name
            );
        }
    }
}
