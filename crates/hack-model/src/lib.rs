//! # hack-model
//!
//! Model architectures, GPU/instance specifications, parallelism configurations and the
//! analytical cost model of the HACK reproduction, plus a small runnable reference
//! transformer used for end-to-end numerical (accuracy-proxy) experiments.
//!
//! The paper evaluates five real models (Mistral-v0.3 7B, Phi-3 14B, Yi 34B, Llama-3.1
//! 70B, Falcon 180B) on five AWS GPU instance families (Table 2) with the TP/PP
//! configurations of Table 3. Running those models is impossible in this environment,
//! but every JCT-style result in the paper is a function of
//!
//! * how many FLOPs and bytes each stage moves (a property of the architecture),
//! * how fast each GPU/instance executes and transfers them (a property of the
//!   hardware), and
//! * how the evaluated method changes those counts (quantization, INT8 compute,
//!   dequantization, approximation — the formulas in `hack-quant::cost`).
//!
//! This crate provides those three ingredients:
//!
//! * [`spec`] — architectural parameters and FLOP/byte counts per model.
//! * [`gpu`] — per-GPU and per-instance specs (Table 2).
//! * [`parallelism`] — TP/PP degrees per model/GPU (Table 3).
//! * [`cost`] — [`cost::ReplicaCostModel`]: stage latencies (prefill, quantization,
//!   transfer, dequantization/approximation, decode) for a model replica on a given
//!   instance, parameterised by a [`cost::KvMethodProfile`].
//! * [`cost_table`] — memoized O(1) views of the cost model for the simulator:
//!   per-`kv_len` decode/dequant tables with prefix sums
//!   ([`cost_table::DecodeCostTable`], process-wide cached) and per-prompt-length
//!   prefill/quantization/transfer memos ([`cost_table::PrefillCostTable`]).
//! * [`reference`] — a small, runnable decoder-only transformer (RMSNorm, RoPE, GQA,
//!   SwiGLU MLP) whose attention backend is pluggable, used to measure end-to-end
//!   output fidelity of HACK and the baselines (Table 6/7 proxies).

pub mod cost;
pub mod cost_table;
pub mod gpu;
pub mod parallelism;
pub mod reference;
pub mod spec;

pub use cost::{CostParams, KvMethodProfile, ReplicaCostModel, StageTimes};
pub use cost_table::{DecodeCostTable, PrefillCostTable, PrefillCosts};
pub use gpu::{GpuKind, GpuSpec, InstanceKind, InstanceSpec};
pub use parallelism::Parallelism;
pub use reference::{AttentionBackend, ReferenceConfig, ReferenceTransformer};
pub use spec::{ModelKind, ModelSpec};
