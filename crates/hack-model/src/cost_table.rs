//! Memoized cost tables: O(1) per-request analytic costs for the simulator.
//!
//! The discrete-event simulator asks [`ReplicaCostModel`] the same questions over
//! and over: the per-iteration decode and dequantization/approximation times at
//! every context length a request passes through (O(output tokens) formula
//! evaluations per request), and the prefill/quantization/transfer times of
//! prompt lengths that repeat heavily across a trace. For a fixed
//! `(ReplicaCostModel, KvMethodProfile, batch)` all of these are pure functions
//! of one integer, so a cluster run can precompute them once:
//!
//! * [`DecodeCostTable`] — per-`kv_len` decode/dequant iteration times up to the
//!   trace's maximum context, plus f64 prefix sums, turning the per-request
//!   decode-duration loop into two prefix subtractions.
//! * [`PrefillCostTable`] — prefill/quantization/uncontended-transfer times
//!   memoized by prompt length.
//!
//! Prefix sums change the f64 summation order (`prefix[a+n] - prefix[a]` versus
//! the sequential loop from `a+1` to `a+n`), so table results match the
//! reference loop ([`ReplicaCostModel::decode_durations_reference`]) exactly
//! when the request starts at context 0 and to ~1e-15 relative error elsewhere;
//! the tests in this module and in `hack-cluster`/`hack-core` pin both bounds.
//!
//! Tables are immutable once built and shared via [`DecodeCostTable::shared`],
//! a process-wide cache keyed by the full parameterisation: repeated simulator
//! constructions over the same configuration (benchmark iterations, capacity
//! bisections, figure grids) pay the O(max context) construction once. A
//! cached table longer than requested returns identical values for every
//! prefix difference (prefix sums are built sequentially from `kv_len = 1`,
//! independent of table length), so cache state can never change results.

use crate::cost::{KvMethodProfile, ReplicaCostModel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Per-`kv_len` decode-side cost tables with prefix sums for one
/// `(ReplicaCostModel, KvMethodProfile, batch)` triple.
#[derive(Debug, Clone)]
pub struct DecodeCostTable {
    /// `decode_iter[k]` = `decode_iter_time(k)`; index 0 is unused (0.0).
    decode_iter: Vec<f64>,
    /// `dequant_iter[k]` = `dequant_or_approx_iter_time(k)`; index 0 unused.
    dequant_iter: Vec<f64>,
    /// `decode_prefix[k]` = sum of `decode_iter[1..=k]`, accumulated in
    /// ascending `kv_len` order; `decode_prefix[0]` = 0.
    decode_prefix: Vec<f64>,
    /// Prefix sums of `dequant_iter`, same convention.
    dequant_prefix: Vec<f64>,
}

impl DecodeCostTable {
    /// Builds the tables for context lengths `1..=max_kv_len`.
    pub fn build(
        model: &ReplicaCostModel,
        profile: &KvMethodProfile,
        batch: f64,
        max_kv_len: usize,
    ) -> Self {
        let max_kv_len = max_kv_len.max(1);
        let mut decode_iter = Vec::with_capacity(max_kv_len + 1);
        let mut dequant_iter = Vec::with_capacity(max_kv_len + 1);
        let mut decode_prefix = Vec::with_capacity(max_kv_len + 1);
        let mut dequant_prefix = Vec::with_capacity(max_kv_len + 1);
        decode_iter.push(0.0);
        dequant_iter.push(0.0);
        decode_prefix.push(0.0);
        dequant_prefix.push(0.0);
        for kv_len in 1..=max_kv_len {
            let d = model.decode_iter_time(kv_len, profile, batch);
            let q = model.dequant_or_approx_iter_time(kv_len, profile);
            decode_iter.push(d);
            dequant_iter.push(q);
            decode_prefix.push(decode_prefix[kv_len - 1] + d);
            dequant_prefix.push(dequant_prefix[kv_len - 1] + q);
        }
        Self {
            decode_iter,
            dequant_iter,
            decode_prefix,
            dequant_prefix,
        }
    }

    /// Largest context length covered by the tables.
    pub fn max_kv_len(&self) -> usize {
        self.decode_iter.len() - 1
    }

    /// Tabulated `decode_iter_time(kv_len)`.
    ///
    /// # Panics
    /// Panics if `kv_len` exceeds [`Self::max_kv_len`].
    pub fn decode_iter_time(&self, kv_len: usize) -> f64 {
        self.decode_iter[kv_len]
    }

    /// Tabulated `dequant_or_approx_iter_time(kv_len)`.
    pub fn dequant_or_approx_iter_time(&self, kv_len: usize) -> f64 {
        self.dequant_iter[kv_len]
    }

    /// Total (decode, dequant/approx) time of `output_len` decode iterations
    /// starting from a prompt of `input_len` tokens — two prefix subtractions
    /// instead of the O(`output_len`) reference loop.
    ///
    /// # Panics
    /// Panics if `input_len + output_len` exceeds [`Self::max_kv_len`].
    pub fn decode_durations(&self, input_len: usize, output_len: usize) -> (f64, f64) {
        let end = input_len + output_len;
        assert!(
            end <= self.max_kv_len(),
            "decode cost table covers kv_len <= {} but the request ends at {end}",
            self.max_kv_len()
        );
        (
            self.decode_prefix[end] - self.decode_prefix[input_len],
            self.dequant_prefix[end] - self.dequant_prefix[input_len],
        )
    }

    /// Returns a shared table covering at least `min_kv_len`, building (and
    /// caching process-wide) one if necessary. Lengths are rounded up to the
    /// next power of two so that traces of slightly different maxima reuse one
    /// table; a longer table returns bit-identical prefix differences.
    pub fn shared(
        model: &ReplicaCostModel,
        profile: &KvMethodProfile,
        batch: f64,
        min_kv_len: usize,
    ) -> Arc<Self> {
        static CACHE: OnceLock<Mutex<HashMap<String, Arc<DecodeCostTable>>>> = OnceLock::new();
        // f64 `Debug` prints the shortest round-trippable representation, so
        // distinct parameterisations always get distinct keys.
        let key = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{batch:?}",
            model.model, model.gpu, model.parallel, model.params, profile
        );
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(table) = cache
            .lock()
            .expect("decode cost-table cache poisoned")
            .get(&key)
        {
            if table.max_kv_len() >= min_kv_len {
                return table.clone();
            }
        }
        // Build outside the lock: a racing first build of the same key wastes
        // a little work instead of serializing every other key's lookup
        // behind an O(max context) construction.
        let len = min_kv_len.max(1024).next_power_of_two();
        let table = Arc::new(Self::build(model, profile, batch, len));
        let mut map = cache.lock().expect("decode cost-table cache poisoned");
        match map.get(&key) {
            // Another thread won the race with a table at least as long; use
            // it so every caller converges on one instance.
            Some(existing) if existing.max_kv_len() >= table.max_kv_len() => existing.clone(),
            _ => {
                map.insert(key, table.clone());
                table
            }
        }
    }
}

/// Prefill-side service times of one prompt length (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillCosts {
    /// Prefill compute time.
    pub prefill: f64,
    /// KV quantization/encoding time.
    pub quantization: f64,
    /// Uncontended KV wire time at the table's network bandwidth.
    pub transfer: f64,
}

/// Prefill/quantization/transfer times memoized by prompt length for one
/// `(ReplicaCostModel, KvMethodProfile, network_gbps)` triple.
///
/// Traces repeat prompt lengths heavily (dataset length distributions are
/// discrete), so the table is built once per simulator from the distinct
/// prompt lengths of its trace.
#[derive(Debug, Clone)]
pub struct PrefillCostTable {
    entries: HashMap<usize, PrefillCosts>,
}

impl PrefillCostTable {
    /// Builds the memo over the given prompt lengths (duplicates are computed
    /// once).
    pub fn build(
        model: &ReplicaCostModel,
        profile: &KvMethodProfile,
        network_gbps: f64,
        prompts: impl IntoIterator<Item = usize>,
    ) -> Self {
        let mut entries = HashMap::new();
        for prompt in prompts {
            entries.entry(prompt).or_insert_with(|| PrefillCosts {
                prefill: model.prefill_time(prompt, profile),
                quantization: model.quantization_time(prompt, profile),
                transfer: model.transfer_time(prompt, profile, network_gbps),
            });
        }
        Self { entries }
    }

    /// A copy of this memo with the transfer column re-evaluated at a
    /// different network bandwidth, reusing the (bandwidth-independent)
    /// prefill/quantization entries. Heterogeneous fleets need one transfer
    /// memo per (prefill group, decode group) NIC pairing but only one
    /// prefill/quantization evaluation per prefill group; this avoids
    /// re-running the expensive service-time formulas per pairing. Transfer
    /// values are bit-identical to a fresh [`Self::build`] at `network_gbps`.
    pub fn with_network(
        &self,
        model: &ReplicaCostModel,
        profile: &KvMethodProfile,
        network_gbps: f64,
    ) -> Self {
        let entries = self
            .entries
            .iter()
            .map(|(&prompt, costs)| {
                (
                    prompt,
                    PrefillCosts {
                        transfer: model.transfer_time(prompt, profile, network_gbps),
                        ..*costs
                    },
                )
            })
            .collect();
        Self { entries }
    }

    /// Memoized costs of `prompt`, if it was part of the build set.
    pub fn get(&self, prompt: usize) -> Option<PrefillCosts> {
        self.entries.get(&prompt).copied()
    }

    /// Number of distinct prompt lengths memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuKind;
    use crate::parallelism::Parallelism;
    use crate::spec::ModelKind;

    fn decode_model() -> ReplicaCostModel {
        let model = ModelKind::Llama31_70B.spec();
        ReplicaCostModel::new(
            model,
            GpuKind::A100.spec(),
            Parallelism::table3(ModelKind::Llama31_70B, GpuKind::A100),
        )
    }

    /// Every method profile the paper compares (the `Method` mapping in
    /// `hack-core` resolves to exactly these constructors).
    fn all_profiles() -> Vec<KvMethodProfile> {
        vec![
            KvMethodProfile::baseline(),
            KvMethodProfile::cachegen(),
            KvMethodProfile::kvquant(),
            KvMethodProfile::hack(),
            KvMethodProfile::hack_with_partition(32),
            KvMethodProfile::hack_with_partition(128),
            KvMethodProfile::hack_no_se(),
            KvMethodProfile::hack_no_rqe(),
            KvMethodProfile::fp8(),
            KvMethodProfile::fp6(),
            KvMethodProfile::fp4(),
        ]
    }

    #[test]
    fn table_matches_the_pointwise_formulas_exactly() {
        let m = decode_model();
        let batch = 8.0;
        for profile in all_profiles() {
            let table = DecodeCostTable::build(&m, &profile, batch, 4096);
            for kv_len in [1usize, 2, 63, 64, 65, 1000, 4096] {
                assert_eq!(
                    table.decode_iter_time(kv_len),
                    m.decode_iter_time(kv_len, &profile, batch),
                    "{}: decode_iter_time({kv_len})",
                    profile.name
                );
                assert_eq!(
                    table.dequant_or_approx_iter_time(kv_len),
                    m.dequant_or_approx_iter_time(kv_len, &profile),
                    "{}: dequant_or_approx_iter_time({kv_len})",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn prefix_subtraction_matches_reference_loop() {
        let m = decode_model();
        let batch = 8.0;
        for profile in all_profiles() {
            let table = DecodeCostTable::build(&m, &profile, batch, 20_000);
            for (input, output) in [(0usize, 128usize), (1, 1), (315, 37), (16_200, 159)] {
                let (td, tq) = table.decode_durations(input, output);
                let (rd, rq) = m.decode_durations_reference(&profile, batch, input, output);
                if input == 0 {
                    // Same summation order: bit-identical.
                    assert_eq!(td, rd, "{}: decode from 0", profile.name);
                    assert_eq!(tq, rq, "{}: dequant from 0", profile.name);
                } else {
                    let close =
                        |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(f64::MIN_POSITIVE);
                    assert!(close(td, rd), "{}: decode {td} vs {rd}", profile.name);
                    assert!(close(tq, rq), "{}: dequant {tq} vs {rq}", profile.name);
                }
            }
        }
    }

    #[test]
    fn zero_output_costs_nothing() {
        let m = decode_model();
        let table = DecodeCostTable::build(&m, &KvMethodProfile::hack(), 8.0, 256);
        assert_eq!(table.decode_durations(100, 0), (0.0, 0.0));
    }

    #[test]
    fn decode_iter_time_is_monotone_in_kv_len() {
        let m = decode_model();
        for profile in all_profiles() {
            let table = DecodeCostTable::build(&m, &profile, 8.0, 8192);
            for kv_len in 2..=table.max_kv_len() {
                assert!(
                    table.decode_iter_time(kv_len) >= table.decode_iter_time(kv_len - 1),
                    "{}: decode_iter_time must not decrease at kv_len {kv_len}",
                    profile.name
                );
                assert!(
                    table.dequant_or_approx_iter_time(kv_len)
                        >= table.dequant_or_approx_iter_time(kv_len - 1),
                    "{}: dequant/approx time must not decrease at kv_len {kv_len}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn shared_cache_reuses_and_grows_tables() {
        let m = decode_model();
        let profile = KvMethodProfile::cachegen();
        let a = DecodeCostTable::shared(&m, &profile, 8.0, 2000);
        let b = DecodeCostTable::shared(&m, &profile, 8.0, 1500);
        assert!(Arc::ptr_eq(&a, &b), "smaller request must reuse the table");
        let c = DecodeCostTable::shared(&m, &profile, 8.0, a.max_kv_len() + 1);
        assert!(c.max_kv_len() > a.max_kv_len());
        // The longer table returns bit-identical prefix differences.
        assert_eq!(a.decode_durations(500, 700), c.decode_durations(500, 700));
        // A different batch size is a different table.
        let d = DecodeCostTable::shared(&m, &profile, 9.0, 1000);
        assert_ne!(d.decode_iter_time(1000), a.decode_iter_time(1000));
    }

    #[test]
    fn with_network_matches_a_fresh_build() {
        let m = decode_model();
        let profile = KvMethodProfile::hack();
        let base = PrefillCostTable::build(&m, &profile, 40.0, [100, 200, 300]);
        let rebased = base.with_network(&m, &profile, 10.0);
        let fresh = PrefillCostTable::build(&m, &profile, 10.0, [100, 200, 300]);
        for prompt in [100usize, 200, 300] {
            assert_eq!(rebased.get(prompt), fresh.get(prompt), "prompt {prompt}");
            // Prefill/quantization are bandwidth-independent and carried over.
            assert_eq!(
                rebased.get(prompt).unwrap().prefill,
                base.get(prompt).unwrap().prefill
            );
        }
    }

    #[test]
    fn prefill_table_memoizes_distinct_prompts() {
        let m = decode_model();
        let profile = KvMethodProfile::hack();
        let table = PrefillCostTable::build(&m, &profile, 40.0, [100, 200, 100, 300, 200]);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        let costs = table.get(200).expect("memoized");
        assert_eq!(costs.prefill, m.prefill_time(200, &profile));
        assert_eq!(costs.quantization, m.quantization_time(200, &profile));
        assert_eq!(costs.transfer, m.transfer_time(200, &profile, 40.0));
        assert!(table.get(999).is_none());
    }
}
