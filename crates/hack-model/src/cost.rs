//! Analytical cost model: stage latencies of one model replica on one instance family.
//!
//! The simulator asks this model five questions per request, matching the JCT
//! decomposition of Fig. 10: prefill compute time, KV quantization time, KV transfer
//! bytes (the network itself is simulated with contention in `hack-cluster`),
//! dequantization/approximation time per decode iteration, and decode iteration time.
//!
//! Times are *service* times on otherwise-idle hardware; queueing, NIC contention and
//! batching effects are produced by the discrete-event simulator on top of these.

use crate::gpu::GpuSpec;
use crate::parallelism::Parallelism;
use crate::spec::ModelSpec;
use serde::{Deserialize, Serialize, Value};

/// How an evaluated method treats KV data. Every method in the paper maps to one of
/// these profiles (the mapping lives in `hack-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvMethodProfile {
    /// Method name (used in reports).
    pub name: &'static str,
    /// Bytes of stored/transferred KV per FP16 byte (1.0 = uncompressed).
    pub kv_size_factor: f64,
    /// Whether KV data is quantized/encoded on the prefill instance.
    pub quantizes: bool,
    /// Whether every decode iteration must dequantize the entire KV history before
    /// attention (CacheGen / KVQuant).
    pub dequant_per_iter: bool,
    /// Whether attention matmuls run on quantized codes using the INT8 datapath (HACK).
    pub int8_attention: bool,
    /// Whether the cheap Eq. 4 approximation runs every decode iteration (HACK).
    pub approx_per_iter: bool,
    /// Summation Elimination enabled (only meaningful when `approx_per_iter`).
    pub summation_elimination: bool,
    /// Requantization Elimination enabled (only meaningful when `approx_per_iter`).
    pub requant_elimination: bool,
    /// Quantization partition size Π (drives approximation cost and accuracy).
    pub partition: usize,
    /// Whether the format needs a conversion to FP16 before compute on GPUs without
    /// native support (FP8/6/4 baselines, §3).
    pub needs_fp_conversion: bool,
}

impl KvMethodProfile {
    /// The disaggregated-inference baseline: FP16 KV, FP16 compute.
    pub fn baseline() -> Self {
        Self {
            name: "baseline",
            kv_size_factor: 1.0,
            quantizes: false,
            dequant_per_iter: false,
            int8_attention: false,
            approx_per_iter: false,
            summation_elimination: false,
            requant_elimination: false,
            partition: 64,
            needs_fp_conversion: false,
        }
    }

    /// CacheGen-like: ~86% compression, dequantize-per-iteration.
    pub fn cachegen() -> Self {
        Self {
            name: "cachegen",
            kv_size_factor: 0.14,
            quantizes: true,
            dequant_per_iter: true,
            ..Self::baseline()
        }
    }

    /// KVQuant-like: 2-bit quantization, dequantize-per-iteration.
    pub fn kvquant() -> Self {
        Self {
            name: "kvquant",
            kv_size_factor: 0.145,
            quantizes: true,
            dequant_per_iter: true,
            ..Self::baseline()
        }
    }

    /// HACK with the default Π = 64.
    pub fn hack() -> Self {
        Self::hack_with_partition(64)
    }

    /// HACK with a custom partition size (Table 8 sensitivity study).
    pub fn hack_with_partition(partition: usize) -> Self {
        // Smaller partitions mean more metadata: codes are 2/16 of FP16 plus
        // 4 bytes of FP16 metadata + ~1 byte of sums per Π elements.
        let overhead_per_element = 5.0 / partition as f64;
        Self {
            name: match partition {
                32 => "hack-p32",
                128 => "hack-p128",
                _ => "hack",
            },
            kv_size_factor: 2.0 / 16.0 + overhead_per_element / 2.0,
            quantizes: true,
            dequant_per_iter: false,
            int8_attention: true,
            approx_per_iter: true,
            summation_elimination: true,
            requant_elimination: true,
            partition,
            needs_fp_conversion: false,
        }
    }

    /// HACK without Summation Elimination (ablation §7.4).
    pub fn hack_no_se() -> Self {
        Self {
            name: "hack/se",
            summation_elimination: false,
            ..Self::hack()
        }
    }

    /// HACK without Requantization Elimination (ablation §7.4).
    pub fn hack_no_rqe() -> Self {
        Self {
            name: "hack/rqe",
            requant_elimination: false,
            ..Self::hack()
        }
    }

    /// FP8 cast baseline (§3).
    pub fn fp8() -> Self {
        Self {
            name: "fp8",
            kv_size_factor: 0.5,
            quantizes: true,
            needs_fp_conversion: true,
            ..Self::baseline()
        }
    }

    /// FP6 cast baseline (§3).
    pub fn fp6() -> Self {
        Self {
            name: "fp6",
            kv_size_factor: 0.375,
            quantizes: true,
            needs_fp_conversion: true,
            ..Self::baseline()
        }
    }

    /// FP4 cast baseline (§3).
    pub fn fp4() -> Self {
        Self {
            name: "fp4",
            kv_size_factor: 0.25,
            quantizes: true,
            needs_fp_conversion: true,
            ..Self::baseline()
        }
    }
}

/// Tunable efficiency constants of the cost model. Defaults are ordinary published
/// utilisation figures for dense GEMMs, element-wise kernels and NCCL transfers; they
/// are deliberately method-independent so comparisons between methods depend only on
/// the operation/byte counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Fraction of peak tensor throughput achieved by large GEMMs.
    pub compute_efficiency: f64,
    /// Fraction of peak tensor throughput achieved by the attention kernels
    /// (score/probability matmuls interleaved with softmax are considerably less
    /// efficient than plain GEMMs).
    pub attention_efficiency: f64,
    /// Fraction of peak tensor throughput achieved by element-wise kernels
    /// (quantize / dequantize / approximation) — these are launch- and memory-bound.
    pub elementwise_efficiency: f64,
    /// Fraction of peak HBM bandwidth achieved by KV/weight streaming.
    pub memory_efficiency: f64,
    /// Fraction of peak HBM bandwidth achieved when gathering paged KV data during
    /// decode (block-granular gathers, partially host-resident data and kernel launch
    /// overheads make this far lower than bulk weight streaming; calibrated so the
    /// baseline's KV memory-access share of decode matches §2.1).
    pub kv_access_efficiency: f64,
    /// Fraction of peak tensor throughput achieved by the baselines' per-iteration KV
    /// dequantization (bitstream decoding / scattered low-precision unpacking;
    /// calibrated so the dequantization share of JCT matches the 17-38% of §2.2).
    pub dequant_efficiency: f64,
    /// Fixed per-decode-iteration overhead (scheduler step, sampling, tensor-parallel
    /// all-reduces, pipeline bubbles), independent of the KV method.
    pub decode_iter_overhead_s: f64,
    /// Fraction of NIC line rate achieved by the KV transfer.
    pub network_efficiency: f64,
    /// Pipeline-parallel bubble overhead (fraction of time lost when PP > 1).
    pub pp_bubble: f64,
    /// Average number of sequences decoded together (continuous batching); weight
    /// streaming is shared by the batch, per-sequence KV work is not.
    pub decode_batch: f64,
}

impl CostParams {
    /// Decodes the efficiency constants from their serialized [`Value`] tree
    /// (config snapshots; every field must be present and numeric).
    pub fn from_value(value: &Value) -> Option<CostParams> {
        Some(CostParams {
            compute_efficiency: value.get_key("compute_efficiency")?.as_f64()?,
            attention_efficiency: value.get_key("attention_efficiency")?.as_f64()?,
            elementwise_efficiency: value.get_key("elementwise_efficiency")?.as_f64()?,
            memory_efficiency: value.get_key("memory_efficiency")?.as_f64()?,
            kv_access_efficiency: value.get_key("kv_access_efficiency")?.as_f64()?,
            dequant_efficiency: value.get_key("dequant_efficiency")?.as_f64()?,
            decode_iter_overhead_s: value.get_key("decode_iter_overhead_s")?.as_f64()?,
            network_efficiency: value.get_key("network_efficiency")?.as_f64()?,
            pp_bubble: value.get_key("pp_bubble")?.as_f64()?,
            decode_batch: value.get_key("decode_batch")?.as_f64()?,
        })
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            compute_efficiency: 0.5,
            attention_efficiency: 0.22,
            elementwise_efficiency: 0.005,
            memory_efficiency: 0.8,
            kv_access_efficiency: 0.05,
            dequant_efficiency: 3e-4,
            decode_iter_overhead_s: 0.03,
            network_efficiency: 0.9,
            pp_bubble: 0.10,
            decode_batch: 8.0,
        }
    }
}

/// Per-stage service times of one request (seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Prefill compute time.
    pub prefill: f64,
    /// KV quantization/encoding time on the prefill instance.
    pub quantization: f64,
    /// KV transfer time on an uncontended link (the simulator adds contention).
    pub transfer: f64,
    /// Total dequantization (baselines) or approximation (HACK) time over all decode
    /// iterations.
    pub dequant_or_approx: f64,
    /// Total decode time over all output tokens (excluding dequant/approx).
    pub decode: f64,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total(&self) -> f64 {
        self.prefill + self.quantization + self.transfer + self.dequant_or_approx + self.decode
    }
}

/// Cost model of one model replica on one GPU family.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaCostModel {
    /// Model architecture.
    pub model: ModelSpec,
    /// GPU the replica runs on.
    pub gpu: GpuSpec,
    /// TP/PP configuration.
    pub parallel: Parallelism,
    /// Efficiency constants.
    pub params: CostParams,
}

impl ReplicaCostModel {
    /// Creates a cost model with default efficiency constants.
    pub fn new(model: ModelSpec, gpu: GpuSpec, parallel: Parallelism) -> Self {
        Self::with_params(model, gpu, parallel, CostParams::default())
    }

    /// Creates a cost model with explicit efficiency constants — the
    /// per-replica-group instantiation path of heterogeneous fleets (each
    /// group pairs its own GPU/parallelism with its own, or the fleet-wide,
    /// constants).
    pub fn with_params(
        model: ModelSpec,
        gpu: GpuSpec,
        parallel: Parallelism,
        params: CostParams,
    ) -> Self {
        Self {
            model,
            gpu,
            parallel,
            params,
        }
    }

    fn pp_factor(&self) -> f64 {
        if self.parallel.pp > 1 {
            1.0 - self.params.pp_bubble
        } else {
            1.0
        }
    }

    /// Aggregate FP16 GEMM throughput of the replica (FLOP/s).
    pub fn agg_fp16_flops(&self) -> f64 {
        self.parallel.gpus_per_replica() as f64
            * self.gpu.fp16_tflops
            * 1e12
            * self.params.compute_efficiency
            * self.pp_factor()
    }

    /// Aggregate INT8 GEMM throughput of the replica (op/s); equals the FP16 rate on
    /// GPUs without INT8 tensor cores.
    pub fn agg_int8_ops(&self) -> f64 {
        self.parallel.gpus_per_replica() as f64
            * self.gpu.effective_int8_tops()
            * 1e12
            * self.params.compute_efficiency
            * self.pp_factor()
    }

    /// Aggregate attention-kernel throughput (op/s); `int8` selects the INT8 datapath
    /// where the GPU supports it.
    pub fn agg_attention_ops(&self, int8: bool) -> f64 {
        let peak = if int8 {
            self.gpu.effective_int8_tops()
        } else {
            self.gpu.fp16_tflops
        };
        self.parallel.gpus_per_replica() as f64
            * peak
            * 1e12
            * self.params.attention_efficiency
            * self.pp_factor()
    }

    /// Aggregate element-wise throughput (op/s) for quantize/dequantize/approximation
    /// kernels.
    pub fn agg_elementwise_ops(&self) -> f64 {
        self.parallel.gpus_per_replica() as f64
            * self.gpu.fp16_tflops
            * 1e12
            * self.params.elementwise_efficiency
    }

    /// Aggregate memory bandwidth of the replica (byte/s).
    pub fn agg_mem_bw(&self) -> f64 {
        self.parallel.gpus_per_replica() as f64
            * self.gpu.mem_bandwidth_gbs
            * 1e9
            * self.params.memory_efficiency
    }

    /// FP16 KV bytes produced by `tokens` tokens.
    pub fn kv_fp16_bytes(&self, tokens: usize) -> f64 {
        self.model.kv_bytes_per_token_fp16() as f64 * tokens as f64
    }

    /// Bytes of KV data transferred from prefill to decode for a prompt of `tokens`
    /// tokens under the given method.
    pub fn kv_transfer_bytes(&self, tokens: usize, profile: &KvMethodProfile) -> f64 {
        self.kv_fp16_bytes(tokens) * profile.kv_size_factor
    }

    /// Prefill compute time for a prompt of `prompt` tokens.
    pub fn prefill_time(&self, prompt: usize, profile: &KvMethodProfile) -> f64 {
        let attn = self.model.attention_flops(prompt, prompt);
        let linear = self.model.prefill_flops(prompt) - attn;
        let attn_rate = self.agg_attention_ops(profile.int8_attention);
        let mut t = linear / self.agg_fp16_flops() + attn / attn_rate;
        if profile.needs_fp_conversion && !self.gpu.fp8_support {
            // §3: FP4/6/8 data must be converted to FP16 before the attention matmuls.
            let conv_ops = 2.0 * 2.0 * self.model.kv_elements_per_token() as f64 * prompt as f64;
            t += conv_ops / self.agg_elementwise_ops();
        }
        t
    }

    /// KV quantization/encoding time on the prefill instance (once per request).
    pub fn quantization_time(&self, prompt: usize, profile: &KvMethodProfile) -> f64 {
        if !profile.quantizes {
            return 0.0;
        }
        // 3 ops per element (subtract, scale, round) over K and V.
        let ops = 3.0 * 2.0 * self.model.kv_elements_per_token() as f64 * prompt as f64;
        ops / self.agg_elementwise_ops()
    }

    /// Uncontended KV transfer time over a NIC of `network_gbps`.
    pub fn transfer_time(
        &self,
        tokens: usize,
        profile: &KvMethodProfile,
        network_gbps: f64,
    ) -> f64 {
        let bytes = self.kv_transfer_bytes(tokens, profile);
        bytes / (network_gbps * 1e9 / 8.0 * self.params.network_efficiency)
    }

    /// Per-iteration dequantization time (CacheGen / KVQuant) or approximation time
    /// (HACK) for one sequence at context length `kv_len`.
    pub fn dequant_or_approx_iter_time(&self, kv_len: usize, profile: &KvMethodProfile) -> f64 {
        let heads = (self.model.layers * self.model.kv_heads) as f64;
        let d_h = self.model.head_dim;
        if profile.dequant_per_iter {
            let ops = hack_quant::cost::kv_dequant_ops(d_h, kv_len) as f64 * heads;
            let rate = self.parallel.gpus_per_replica() as f64
                * self.gpu.fp16_tflops
                * 1e12
                * self.params.dequant_efficiency;
            return ops / rate;
        }
        if profile.approx_per_iter {
            let per_head = if profile.summation_elimination {
                hack_quant::cost::decode_approx_ops_with_se(d_h, kv_len)
            } else {
                hack_quant::cost::decode_approx_ops_without_se(d_h, kv_len)
            } as f64;
            let mut ops = per_head * heads;
            if !profile.requant_elimination {
                // Requantize the partial last block of V every iteration (Π/2 tokens on
                // average).
                ops += hack_quant::cost::requant_last_block_ops(profile.partition / 2, d_h) as f64
                    * heads;
            }
            return ops / self.agg_elementwise_ops();
        }
        if profile.needs_fp_conversion && !self.gpu.fp8_support {
            let ops = 2.0 * 2.0 * d_h as f64 * kv_len as f64 * heads;
            return ops / self.agg_elementwise_ops();
        }
        0.0
    }

    /// Decode iteration latency experienced by a sequence at context length `kv_len`,
    /// sharing the replica with `batch` concurrently-decoding sequences of similar
    /// length (continuous batching: weights are streamed once per iteration for the
    /// whole batch, per-sequence KV reads and compute are not shared).
    pub fn decode_iter_time(&self, kv_len: usize, profile: &KvMethodProfile, batch: f64) -> f64 {
        let batch = batch.max(1.0);
        let weight_time = self.model.param_bytes_fp16() / self.agg_mem_bw();
        // Memory the attention kernel streams for this sequence's KV data: HACK and the
        // minifloat casts read the compact representation directly; the
        // dequantize-per-iteration baselines read the compact cache *and* stream the
        // transient dequantized FP16 working set; the FP16 baseline reads full-size KV.
        let kv_read_factor = if profile.dequant_per_iter {
            profile.kv_size_factor * 1.5
        } else if profile.int8_attention || profile.needs_fp_conversion {
            profile.kv_size_factor
        } else {
            1.0
        };
        let kv_access_bw = self.parallel.gpus_per_replica() as f64
            * self.gpu.mem_bandwidth_gbs
            * 1e9
            * self.params.kv_access_efficiency;
        let kv_read_time = self.kv_fp16_bytes(kv_len) * kv_read_factor / kv_access_bw;
        let attn_flops = self.model.attention_flops(1, kv_len);
        let linear_flops = self.model.decode_flops(kv_len) - attn_flops;
        let attn_rate = self.agg_attention_ops(profile.int8_attention);
        let compute_time = linear_flops / self.agg_fp16_flops() + attn_flops / attn_rate;
        // Per iteration: the batch shares one weight stream and the fixed per-step
        // overhead; this sequence's own KV gather and attention compute are not shared.
        weight_time / batch
            + self.params.decode_iter_overhead_s / batch
            + kv_read_time
            + compute_time
    }

    /// Total (decode, dequant/approx) time of `output_len` decode iterations
    /// starting after a prompt of `input_len` tokens, summed sequentially — the
    /// O(`output_len`) loop [`crate::cost_table::DecodeCostTable`] replaces
    /// with prefix subtractions. Kept as the equivalence oracle the table path
    /// is pinned against (and as the `CostMode::Reference` path of the cluster
    /// simulator).
    pub fn decode_durations_reference(
        &self,
        profile: &KvMethodProfile,
        batch: f64,
        input_len: usize,
        output_len: usize,
    ) -> (f64, f64) {
        let mut decode = 0.0;
        let mut dequant = 0.0;
        for i in 0..output_len {
            let kv_len = input_len + i + 1;
            decode += self.decode_iter_time(kv_len, profile, batch);
            dequant += self.dequant_or_approx_iter_time(kv_len, profile);
        }
        (decode, dequant)
    }

    /// Full per-request stage times: prefill on this replica, transfer over
    /// `network_gbps`, then `output_len` decode iterations at an average batch size of
    /// `CostParams::decode_batch` on the decode replica `decode_model`.
    pub fn request_stage_times(
        &self,
        decode_model: &ReplicaCostModel,
        profile: &KvMethodProfile,
        prompt: usize,
        output_len: usize,
        network_gbps: f64,
    ) -> StageTimes {
        let prefill = self.prefill_time(prompt, profile);
        let quantization = self.quantization_time(prompt, profile);
        let transfer = self.transfer_time(prompt, profile, network_gbps);
        let batch = decode_model.params.decode_batch;
        let (decode, dequant) =
            decode_model.decode_durations_reference(profile, batch, prompt, output_len);
        StageTimes {
            prefill,
            quantization,
            transfer,
            dequant_or_approx: dequant,
            decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuKind;
    use crate::spec::ModelKind;

    fn llama_on(gpu: GpuKind) -> ReplicaCostModel {
        let model = ModelKind::Llama31_70B.spec();
        ReplicaCostModel::new(
            model,
            gpu.spec(),
            Parallelism::table3(ModelKind::Llama31_70B, gpu),
        )
    }

    fn cocktail_prompt() -> usize {
        16_200
    }

    #[test]
    fn profiles_have_sensible_size_factors() {
        assert_eq!(KvMethodProfile::baseline().kv_size_factor, 1.0);
        assert!(KvMethodProfile::hack().kv_size_factor < 0.2);
        assert!(KvMethodProfile::cachegen().kv_size_factor < 0.2);
        assert!(KvMethodProfile::fp8().kv_size_factor == 0.5);
        // Finer partitions cost more metadata.
        assert!(
            KvMethodProfile::hack_with_partition(32).kv_size_factor
                > KvMethodProfile::hack_with_partition(128).kv_size_factor
        );
    }

    #[test]
    fn hack_prefill_is_faster_than_baseline_on_int8_gpus() {
        let m = llama_on(GpuKind::A10G);
        let base = m.prefill_time(cocktail_prompt(), &KvMethodProfile::baseline());
        let hack = m.prefill_time(cocktail_prompt(), &KvMethodProfile::hack());
        assert!(hack < base, "hack {hack} vs baseline {base}");
        // The gain comes only from the attention share, so it is bounded.
        assert!(hack > base * 0.5);
    }

    #[test]
    fn hack_prefill_equals_baseline_on_v100() {
        // §7.2: V100 has no INT8 tensor cores, so HACK cannot accelerate prefill there.
        let m = llama_on(GpuKind::V100);
        let base = m.prefill_time(cocktail_prompt(), &KvMethodProfile::baseline());
        let hack = m.prefill_time(cocktail_prompt(), &KvMethodProfile::hack());
        assert!((hack - base).abs() / base < 1e-9);
    }

    #[test]
    fn transfer_time_scales_with_compression_and_bandwidth() {
        let m = llama_on(GpuKind::A10G);
        let prompt = cocktail_prompt();
        let base_40g = m.transfer_time(prompt, &KvMethodProfile::baseline(), 40.0);
        let hack_40g = m.transfer_time(prompt, &KvMethodProfile::hack(), 40.0);
        let base_400g = m.transfer_time(prompt, &KvMethodProfile::baseline(), 400.0);
        // ~5.3 GB at an effective 4.5 GB/s is on the order of a second.
        assert!(
            base_40g > 0.5 && base_40g < 3.0,
            "baseline 40G transfer {base_40g}"
        );
        assert!(hack_40g < base_40g * 0.2);
        assert!((base_40g / base_400g - 10.0).abs() < 1e-6);
    }

    #[test]
    fn dequant_dominates_approx_for_long_sequences() {
        let decode = llama_on(GpuKind::A100);
        let kv_len = 16_000;
        let dequant = decode.dequant_or_approx_iter_time(kv_len, &KvMethodProfile::kvquant());
        let approx = decode.dequant_or_approx_iter_time(kv_len, &KvMethodProfile::hack());
        assert!(
            dequant > 50.0 * approx,
            "dequant {dequant} should dwarf approximation {approx}"
        );
        // Baseline has neither.
        assert_eq!(
            decode.dequant_or_approx_iter_time(kv_len, &KvMethodProfile::baseline()),
            0.0
        );
    }

    #[test]
    fn no_se_approx_is_more_expensive_than_se() {
        let decode = llama_on(GpuKind::A100);
        let kv_len = 16_000;
        let se = decode.dequant_or_approx_iter_time(kv_len, &KvMethodProfile::hack());
        let no_se = decode.dequant_or_approx_iter_time(kv_len, &KvMethodProfile::hack_no_se());
        assert!(no_se > 5.0 * se, "no-SE {no_se} vs SE {se}");
    }

    #[test]
    fn no_rqe_overhead_does_not_scale_with_sequence_length() {
        let decode = llama_on(GpuKind::A100);
        let rqe_cost = |kv: usize| {
            decode.dequant_or_approx_iter_time(kv, &KvMethodProfile::hack_no_rqe())
                - decode.dequant_or_approx_iter_time(kv, &KvMethodProfile::hack())
        };
        let short = rqe_cost(500);
        let long = rqe_cost(16_000);
        assert!(
            (short - long).abs() / short < 0.05,
            "short {short} vs long {long}"
        );
    }

    #[test]
    fn quantized_decode_iteration_is_faster_for_long_contexts() {
        let decode = llama_on(GpuKind::A100);
        let kv_len = 16_000;
        let batch = 8.0;
        let base = decode.decode_iter_time(kv_len, &KvMethodProfile::baseline(), batch);
        let hack = decode.decode_iter_time(kv_len, &KvMethodProfile::hack(), batch);
        assert!(hack < base, "hack iter {hack} vs baseline iter {base}");
        // Iteration latency should be on the order of milliseconds to tens of ms.
        assert!(base > 1e-3 && base < 0.2, "baseline iteration {base}");
    }

    #[test]
    fn stage_times_reproduce_fig10_ordering() {
        // Llama-3.1 70B, Cocktail-like request (16.2K prompt, 159 output tokens),
        // A10G prefill -> A100 decode over the prefill instance's 40 Gbps NIC.
        let prefill = llama_on(GpuKind::A10G);
        let decode = llama_on(GpuKind::A100);
        let prompt = cocktail_prompt();
        let out = 159;

        let t = |p: &KvMethodProfile| prefill.request_stage_times(&decode, p, prompt, out, 40.0);
        let base = t(&KvMethodProfile::baseline());
        let cachegen = t(&KvMethodProfile::cachegen());
        let kvquant = t(&KvMethodProfile::kvquant());
        let hack = t(&KvMethodProfile::hack());

        // Quantized methods slash the transfer time.
        assert!(cachegen.transfer < 0.2 * base.transfer);
        assert!(hack.transfer < 0.2 * base.transfer);
        // CacheGen/KVQuant pay a dequantization bill HACK does not.
        assert!(cachegen.dequant_or_approx > 10.0 * hack.dequant_or_approx);
        assert!(kvquant.dequant_or_approx > 10.0 * hack.dequant_or_approx);
        // HACK also beats the baselines on prefill and decode compute.
        assert!(hack.prefill < base.prefill);
        assert!(hack.decode <= cachegen.decode + 1e-9);
        // End-to-end ordering of Fig. 9: HACK < CacheGen/KVQuant < baseline.
        assert!(hack.total() < cachegen.total());
        assert!(hack.total() < kvquant.total());
        assert!(cachegen.total() < base.total());
        // Quantization overhead stays a small fraction of the total (§7.2 reports
        // 1.25%-2.91%).
        assert!(cachegen.quantization / cachegen.total() < 0.05);
    }

    #[test]
    fn long_prompts_amplify_hacks_advantage() {
        let prefill = llama_on(GpuKind::A10G);
        let decode = llama_on(GpuKind::A100);
        let gain = |prompt: usize, out: usize| {
            let b = prefill
                .request_stage_times(&decode, &KvMethodProfile::kvquant(), prompt, out, 40.0)
                .total();
            let h = prefill
                .request_stage_times(&decode, &KvMethodProfile::hack(), prompt, out, 40.0)
                .total();
            (b - h) / b
        };
        // IMDb-like (short) vs Cocktail-like (long).
        let short = gain(315, 37);
        let long = gain(16_200, 159);
        assert!(
            long > short,
            "long-prompt gain {long} should exceed short-prompt gain {short}"
        );
    }

    #[test]
    fn v100_shows_smallest_gain_over_quantization_baselines() {
        // §7.2 / Fig. 12: HACK's edge over CacheGen/KVQuant is smallest on V100.
        let decode = llama_on(GpuKind::A100);
        let prompt = cocktail_prompt();
        let out = 159;
        let gain_on = |gpu: GpuKind| {
            let prefill = llama_on(gpu);
            let kv = prefill
                .request_stage_times(
                    &decode,
                    &KvMethodProfile::kvquant(),
                    prompt,
                    out,
                    gpu.instance().network_gbps,
                )
                .total();
            let h = prefill
                .request_stage_times(
                    &decode,
                    &KvMethodProfile::hack(),
                    prompt,
                    out,
                    gpu.instance().network_gbps,
                )
                .total();
            (kv - h) / kv
        };
        // The service-time model cannot reproduce the full size of the effect (most of
        // it comes from prefill INT8 acceleration that V100 lacks), but V100 must never
        // be the GPU that benefits most from HACK.
        let v100 = gain_on(GpuKind::V100);
        let best_other = [GpuKind::A10G, GpuKind::T4, GpuKind::L4, GpuKind::A100]
            .into_iter()
            .map(gain_on)
            .fold(f64::MIN, f64::max);
        assert!(
            best_other > v100,
            "best non-V100 gain {best_other} should exceed V100 gain {v100}"
        );
    }
}
