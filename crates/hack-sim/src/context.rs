//! Per-component handle into the simulation.

use crate::event::{ComponentId, EventId};
use crate::payload::Payload;
use crate::state::SimState;
use crate::EngineMode;
use hack_tensor::DetRng;
use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

/// A component's handle to the engine: read the clock, emit or cancel future
/// events, and draw deterministic random numbers.
///
/// Contexts are created with [`crate::Simulation::create_context`]; cloning one
/// yields another handle to the same component id.
#[derive(Clone)]
pub struct SimulationContext {
    id: ComponentId,
    name: Rc<str>,
    state: Rc<RefCell<SimState>>,
}

impl SimulationContext {
    pub(crate) fn new(id: ComponentId, name: Rc<str>, state: Rc<RefCell<SimState>>) -> Self {
        Self { id, name, state }
    }

    /// This component's id — the address other components emit to.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The name the component was registered under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulation time (seconds).
    pub fn time(&self) -> f64 {
        self.state.borrow().time()
    }

    /// Schedules `payload` for delivery to `dst` after `delay` seconds.
    ///
    /// # Panics
    /// Panics when `delay` is negative or non-finite.
    pub fn emit<T: Any>(&self, payload: T, dst: ComponentId, delay: f64) -> EventId {
        let mut state = self.state.borrow_mut();
        let time = state.time() + delay;
        let payload = wrap_payload(payload, state.mode());
        state.add_event(payload, std::any::type_name::<T>(), self.id, dst, time)
    }

    /// Schedules `payload` for delivery to `dst` at the absolute time `time`.
    ///
    /// # Panics
    /// Panics when `time` is non-finite or earlier than the current time.
    pub fn emit_at<T: Any>(&self, payload: T, dst: ComponentId, time: f64) -> EventId {
        let mut state = self.state.borrow_mut();
        let payload = wrap_payload(payload, state.mode());
        state.add_event(payload, std::any::type_name::<T>(), self.id, dst, time)
    }

    /// Schedules `payload` for delivery back to this component after `delay`.
    pub fn emit_self<T: Any>(&self, payload: T, delay: f64) -> EventId {
        self.emit(payload, self.id, delay)
    }

    /// Cancels a previously emitted event. Canceling an already-delivered id is
    /// a no-op (though it retains a set entry until the run ends), and an id
    /// that was never issued is ignored entirely.
    pub fn cancel_event(&self, id: EventId) {
        self.state.borrow_mut().cancel_event(id);
    }

    /// Uniform `f64` in `[0, 1)` from the engine's seeded generator.
    pub fn rand(&self) -> f64 {
        self.state.borrow_mut().rng().next_f64()
    }

    /// Uniform `f64` in `[lo, hi)` from the engine's seeded generator.
    pub fn gen_range(&self, lo: f64, hi: f64) -> f64 {
        self.state.borrow_mut().rng().range_f64(lo, hi)
    }

    /// Derives an independent deterministic generator (e.g. to hand to a
    /// component that wants its own stream).
    pub fn fork_rng(&self) -> DetRng {
        self.state.borrow_mut().rng().fork()
    }

    /// Runs `f` against the engine probe installed with
    /// [`crate::Simulation::install_probe`], handing it the current simulation
    /// time. Returns `None` — without touching the clock, the queue or the
    /// RNG — when no probe is installed or the installed probe is not a `T`,
    /// so instrumentation guarded by `probe` is free when telemetry is off.
    pub fn probe<T: Any, R>(&self, f: impl FnOnce(f64, &mut T) -> R) -> Option<R> {
        let (probe, time) = {
            let state = self.state.borrow();
            let probe = Rc::clone(state.probe()?);
            (probe, state.time())
        };
        let mut probe = probe.borrow_mut();
        probe.downcast_mut::<T>().map(|t| f(time, t))
    }
}

/// Wraps a payload according to the engine mode: inline-capable in the default
/// slab engine, always boxed in the pre-change compatibility mode.
fn wrap_payload<T: Any>(payload: T, mode: EngineMode) -> Payload {
    match mode {
        EngineMode::Slab => Payload::new(payload),
        EngineMode::Boxed => Payload::boxed(payload),
    }
}

impl std::fmt::Debug for SimulationContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationContext")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish()
    }
}
