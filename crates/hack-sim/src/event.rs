//! Simulation events: typed payloads with total-ordered (time, id) scheduling.

use crate::payload::Payload;
use std::any::Any;
use std::cmp::Ordering;

/// Identifier of a registered component (or passive context).
pub type ComponentId = usize;

/// Unique, monotonically increasing event identifier.
///
/// Ids double as the deterministic tie-breaker for events scheduled at the same
/// time: earlier-emitted events are delivered first.
pub type EventId = u64;

/// One scheduled event.
///
/// The payload is an arbitrary `'static` type; handlers inspect it with
/// [`Event::is`] / [`Event::get`].
#[derive(Debug)]
pub struct Event {
    /// Unique identifier (emission order).
    pub id: EventId,
    /// Delivery time (simulation seconds).
    pub time: f64,
    /// Component that emitted the event.
    pub src: ComponentId,
    /// Component the event is addressed to.
    pub dst: ComponentId,
    /// `std::any::type_name` of the payload, captured at emission (for logs and
    /// diagnostics).
    pub payload_type: &'static str,
    /// Typed payload (stored inline when small, boxed otherwise — see
    /// [`crate::payload::Payload`]).
    pub payload: Payload,
}

impl Event {
    /// Whether the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        self.payload.is::<T>()
    }

    /// The payload as `&T`, if it is of type `T`.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.payload.downcast_ref::<T>()
    }

    /// Whether the payload avoids a heap allocation.
    pub fn payload_is_inline(&self) -> bool {
        self.payload.is_inline()
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so that `BinaryHeap` (a max-heap) pops the earliest event;
        // `total_cmp` gives a total order even for non-finite times (which
        // `emit` rejects anyway), unlike the `partial_cmp(..).unwrap_or(Equal)`
        // construction this replaces, where a NaN would silently corrupt the
        // heap order.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn event(id: EventId, time: f64) -> Event {
        Event {
            id,
            time,
            src: 0,
            dst: 0,
            payload_type: "()",
            payload: Payload::new(()),
        }
    }

    #[test]
    fn heap_pops_earliest_time_then_lowest_id() {
        let mut heap = BinaryHeap::new();
        heap.push(event(3, 5.0));
        heap.push(event(1, 1.0));
        heap.push(event(2, 1.0));
        heap.push(event(0, 9.0));
        let order: Vec<EventId> = std::iter::from_fn(|| heap.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn nan_time_does_not_corrupt_total_order() {
        // total_cmp puts NaN above every finite value, so finite events still
        // pop in the correct order even if a NaN somehow entered the heap.
        let mut heap = BinaryHeap::new();
        heap.push(event(0, f64::NAN));
        heap.push(event(1, 2.0));
        heap.push(event(2, 1.0));
        let order: Vec<EventId> = std::iter::from_fn(|| heap.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn payload_downcasting() {
        #[derive(Debug, PartialEq)]
        struct Ping {
            n: u32,
        }
        let e = Event {
            id: 0,
            time: 0.0,
            src: 1,
            dst: 2,
            payload_type: std::any::type_name::<Ping>(),
            payload: Payload::new(Ping { n: 7 }),
        };
        assert!(e.is::<Ping>());
        assert!(!e.is::<u32>());
        assert_eq!(e.get::<Ping>(), Some(&Ping { n: 7 }));
    }
}
