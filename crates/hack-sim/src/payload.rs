//! Event payload storage: small payloads inline, large ones boxed.
//!
//! The seed engine boxed every payload (`Box<dyn Any>`), which costs one heap
//! allocation per emitted event — the dominant allocation source on
//! multi-million-event runs. Almost every real payload is tiny (the cluster
//! simulator's largest event is a single `usize`), so [`Payload::new`] stores
//! values of at most [`Payload::INLINE_BYTES`] bytes (and alignment ≤ 8)
//! directly inside the event node and only spills larger or over-aligned types
//! to a `Box`. [`Payload::boxed`] forces the pre-change always-box behaviour
//! and exists for the benchmark comparison and the equivalence tests.

use std::any::{Any, TypeId};
use std::mem::{align_of, size_of, MaybeUninit};

/// Inline storage: three `u64` words — 24 bytes, 8-byte aligned.
type InlineBuf = [MaybeUninit<u64>; 3];

enum Repr {
    Inline {
        type_id: TypeId,
        /// The value's bytes, written by `std::ptr::write` at construction.
        data: InlineBuf,
        /// Drops the value in place; `None` for types without drop glue.
        drop_fn: Option<unsafe fn(*mut u64)>,
        /// Keeps the payload `!Send`/`!Sync` like `Box<dyn Any>`, matching the
        /// single-threaded engine (payload types need not be `Send`).
        _not_send: std::marker::PhantomData<*const ()>,
    },
    Boxed(Box<dyn Any>),
}

/// A type-erased event payload (see module docs).
pub struct Payload {
    repr: Repr,
}

unsafe fn drop_inline<T>(ptr: *mut u64) {
    unsafe { std::ptr::drop_in_place(ptr.cast::<T>()) }
}

impl Payload {
    /// Largest payload stored inline (in bytes).
    pub const INLINE_BYTES: usize = size_of::<InlineBuf>();

    /// Wraps a payload, storing it inline when it fits.
    pub fn new<T: Any>(value: T) -> Self {
        if size_of::<T>() <= Self::INLINE_BYTES && align_of::<T>() <= align_of::<u64>() {
            let mut data: InlineBuf = [MaybeUninit::uninit(); 3];
            // SAFETY: the buffer is large enough and sufficiently aligned for
            // `T` (checked above); the value is moved in exactly once and from
            // here on only dropped via `drop_fn` or borrowed via
            // `downcast_ref` after a `TypeId` match.
            unsafe { std::ptr::write(data.as_mut_ptr().cast::<T>(), value) };
            Self {
                repr: Repr::Inline {
                    type_id: TypeId::of::<T>(),
                    data,
                    drop_fn: std::mem::needs_drop::<T>().then_some(drop_inline::<T> as _),
                    _not_send: std::marker::PhantomData,
                },
            }
        } else {
            Self::boxed(value)
        }
    }

    /// Wraps a payload in a `Box` unconditionally (the pre-change representation).
    pub fn boxed<T: Any>(value: T) -> Self {
        Self {
            repr: Repr::Boxed(Box::new(value)),
        }
    }

    /// Whether the payload is of type `T`.
    pub fn is<T: Any>(&self) -> bool {
        match &self.repr {
            Repr::Inline { type_id, .. } => *type_id == TypeId::of::<T>(),
            Repr::Boxed(b) => b.is::<T>(),
        }
    }

    /// The payload as `&T`, if it is of type `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match &self.repr {
            Repr::Inline { type_id, data, .. } => (*type_id == TypeId::of::<T>())
                // SAFETY: the TypeId matches the type written at construction,
                // so the buffer holds a valid, live `T`.
                .then(|| unsafe { &*data.as_ptr().cast::<T>() }),
            Repr::Boxed(b) => b.downcast_ref::<T>(),
        }
    }

    /// Whether the payload is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        if let Repr::Inline {
            data,
            drop_fn: Some(drop_fn),
            ..
        } = &mut self.repr
        {
            // SAFETY: the buffer holds a live value of the type `drop_fn` was
            // instantiated for; it is dropped exactly once, here.
            unsafe { drop_fn(data.as_mut_ptr().cast::<u64>()) }
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.repr {
            Repr::Inline { .. } => f.write_str("Payload::Inline"),
            Repr::Boxed(_) => f.write_str("Payload::Boxed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[derive(Debug, PartialEq)]
    struct Small {
        a: u64,
        b: u32,
    }

    #[derive(Debug, PartialEq)]
    struct Large([u64; 8]);

    #[test]
    fn small_payloads_are_inline_and_downcast() {
        let p = Payload::new(Small { a: 7, b: 9 });
        assert!(p.is_inline());
        assert!(p.is::<Small>());
        assert!(!p.is::<u32>());
        assert_eq!(p.downcast_ref::<Small>(), Some(&Small { a: 7, b: 9 }));
        assert_eq!(p.downcast_ref::<u64>(), None);
    }

    #[test]
    fn large_payloads_spill_to_box() {
        let p = Payload::new(Large([1; 8]));
        assert!(!p.is_inline());
        assert_eq!(p.downcast_ref::<Large>(), Some(&Large([1; 8])));
    }

    #[test]
    fn boxed_constructor_never_inlines() {
        let p = Payload::boxed(3u8);
        assert!(!p.is_inline());
        assert_eq!(p.downcast_ref::<u8>(), Some(&3));
    }

    #[test]
    fn zero_sized_payloads_work() {
        struct Marker;
        let p = Payload::new(Marker);
        assert!(p.is_inline());
        assert!(p.is::<Marker>());
    }

    #[test]
    fn inline_payloads_run_destructors_exactly_once() {
        struct Counts(Rc<Cell<u32>>);
        impl Drop for Counts {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let drops = Rc::new(Cell::new(0));
        let p = Payload::new(Counts(Rc::clone(&drops)));
        assert!(p.is_inline());
        assert_eq!(drops.get(), 0);
        drop(p);
        assert_eq!(drops.get(), 1);
    }

    #[test]
    fn plain_data_payloads_have_no_drop_glue() {
        let p = Payload::new(123u64);
        match &p.repr {
            Repr::Inline { drop_fn, .. } => assert!(drop_fn.is_none()),
            Repr::Boxed(_) => panic!("u64 must be inline"),
        }
    }
}
