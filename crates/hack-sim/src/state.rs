//! Internal shared state: clock, event queue, cancellation set, RNG, log.

use crate::event::{ComponentId, Event, EventId};
use crate::log::{EventRecord, RecordKind};
use crate::payload::Payload;
use crate::queue::{BoxedEventQueue, EventQueue, SlabEventQueue};
use crate::EngineMode;
use hack_tensor::DetRng;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashSet;
use std::io::Write;
use std::rc::Rc;

pub(crate) struct SimState {
    clock: f64,
    mode: EngineMode,
    events: EventQueue,
    canceled: HashSet<EventId>,
    next_event_id: EventId,
    processed: u64,
    rng: DetRng,
    log: Option<Vec<EventRecord>>,
    log_writer: Option<Box<dyn Write>>,
    log_writer_error: Option<std::io::Error>,
    probe: Option<Rc<RefCell<dyn Any>>>,
}

impl SimState {
    pub fn new(seed: u64, mode: EngineMode) -> Self {
        Self {
            clock: 0.0,
            mode,
            events: match mode {
                EngineMode::Slab => EventQueue::Slab(SlabEventQueue::default()),
                EngineMode::Boxed => EventQueue::Boxed(BoxedEventQueue::default()),
            },
            canceled: HashSet::new(),
            next_event_id: 0,
            processed: 0,
            rng: DetRng::new(seed),
            log: None,
            log_writer: None,
            log_writer_error: None,
            probe: None,
        }
    }

    /// The engine representation this state was built with.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    pub fn time(&self) -> f64 {
        self.clock
    }

    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    pub fn set_log_enabled(&mut self, enabled: bool) {
        if enabled {
            self.log.get_or_insert_with(Vec::new);
        } else {
            self.log = None;
        }
    }

    pub fn take_log(&mut self) -> Vec<EventRecord> {
        match &mut self.log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Attaches a streaming log sink; every record from here on is written as
    /// one CSV line (header emitted immediately). Write errors are latched and
    /// surfaced by [`SimState::detach_log_writer`].
    pub fn set_log_writer(&mut self, mut writer: Box<dyn Write>) {
        self.log_writer_error = None;
        if let Err(e) = writeln!(writer, "{}", EventRecord::CSV_HEADER) {
            self.log_writer_error = Some(e);
        }
        self.log_writer = Some(writer);
    }

    /// Flushes and drops the streaming log sink, reporting the first error
    /// encountered since it was attached (if any).
    pub fn detach_log_writer(&mut self) -> std::io::Result<()> {
        let flushed = match &mut self.log_writer {
            Some(writer) => writer.flush(),
            None => Ok(()),
        };
        self.log_writer = None;
        match self.log_writer_error.take() {
            Some(e) => Err(e),
            None => flushed,
        }
    }

    /// Installs the engine probe components reach via
    /// [`crate::SimulationContext::probe`].
    pub fn set_probe(&mut self, probe: Rc<RefCell<dyn Any>>) {
        self.probe = Some(probe);
    }

    /// The installed probe, if any.
    pub fn probe(&self) -> Option<&Rc<RefCell<dyn Any>>> {
        self.probe.as_ref()
    }

    /// Whether any log destination (in-memory or streaming) is active.
    #[inline]
    fn logging(&self) -> bool {
        self.log.is_some() || self.log_writer.is_some()
    }

    /// Routes one record to the active destinations.
    fn record(&mut self, record: EventRecord) {
        if let Some(writer) = &mut self.log_writer {
            if self.log_writer_error.is_none() {
                if let Err(e) = writeln!(writer, "{}", record.render_csv()) {
                    self.log_writer_error = Some(e);
                }
            }
        }
        if let Some(log) = &mut self.log {
            log.push(record);
        }
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics when `time` is non-finite or lies in the past — a silent NaN or a
    /// rewound clock would corrupt the queue order, so both are rejected at the
    /// source.
    pub fn add_event(
        &mut self,
        payload: Payload,
        payload_type: &'static str,
        src: ComponentId,
        dst: ComponentId,
        time: f64,
    ) -> EventId {
        assert!(
            time.is_finite(),
            "cannot schedule `{payload_type}` at non-finite time {time} (src {src} -> dst {dst})"
        );
        assert!(
            time >= self.clock,
            "cannot schedule `{payload_type}` at {time}, before the current time {} (src {src} -> dst {dst})",
            self.clock
        );
        let id = self.next_event_id;
        self.next_event_id += 1;
        self.events.push(Event {
            id,
            time,
            src,
            dst,
            payload_type,
            payload,
        });
        if self.logging() {
            self.record(EventRecord {
                id,
                time,
                src,
                dst,
                payload_type,
                kind: RecordKind::Emitted,
            });
        }
        id
    }

    /// Marks a scheduled event as canceled; it will be dropped when popped.
    ///
    /// Ids that were never issued are ignored — otherwise they would lie in
    /// wait and silently cancel whatever future event is eventually assigned
    /// the same id.
    pub fn cancel_event(&mut self, id: EventId) {
        if id < self.next_event_id {
            self.canceled.insert(id);
        }
    }

    /// Pops the next live event and advances the clock to it.
    pub fn next_event(&mut self) -> Option<Event> {
        while let Some(event) = self.events.pop() {
            // The empty-set check skips a per-event hash lookup on the (vastly
            // dominant) runs that never cancel anything.
            if !self.canceled.is_empty() && self.canceled.remove(&event.id) {
                continue;
            }
            debug_assert!(event.time >= self.clock, "event queue went backwards");
            self.clock = event.time;
            self.processed += 1;
            if self.logging() {
                self.record(EventRecord {
                    id: event.id,
                    time: event.time,
                    src: event.src,
                    dst: event.dst,
                    payload_type: event.payload_type,
                    kind: RecordKind::Delivered,
                });
            }
            return Some(event);
        }
        None
    }

    pub fn queue_len(&self) -> usize {
        self.events.len()
    }

    pub fn emitted_count(&self) -> u64 {
        self.next_event_id
    }

    pub fn processed_count(&self) -> u64 {
        self.processed
    }
}
