//! The time-ordered event queue: a free-list slab behind a compact key heap.
//!
//! The seed engine kept full [`Event`] structs inside a `BinaryHeap`, so every
//! sift operation moved ~56 bytes (plus the boxed payload pointer chased on
//! compare). The slab queue instead heapifies 24-byte [`EventKey`]s — exactly
//! the `(time, id)` pair the ordering is defined on plus a slot index — and
//! parks the event bodies in a slab (`Vec<Option<EventNode>>`) whose slots are
//! recycled through a free list, so node storage is reused instead of
//! reallocated as events churn.
//!
//! Delivery order is identical to the seed's `BinaryHeap<Event>` by
//! construction: both pop by `(time, id)` with `f64::total_cmp` and ids are
//! unique. [`BoxedEventQueue`] keeps the pre-change representation alive for
//! the benchmark comparison and the equivalence tests.

use crate::event::{ComponentId, Event, EventId};
use crate::payload::Payload;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap key: the total order `(time, id)` plus the slab slot of the body.
#[derive(Debug, Clone, Copy)]
struct EventKey {
    time: f64,
    id: EventId,
    slot: u32,
}

impl PartialEq for EventKey {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for EventKey {}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the max-heap pops the earliest (time, id) — the same
        // order as the seed's `impl Ord for Event`.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Event body parked in the slab while the key waits in the heap.
struct EventNode {
    src: ComponentId,
    dst: ComponentId,
    payload_type: &'static str,
    payload: Payload,
}

/// Slab-backed event queue (see module docs).
#[derive(Default)]
pub struct SlabEventQueue {
    keys: BinaryHeap<EventKey>,
    nodes: Vec<Option<EventNode>>,
    free: Vec<u32>,
}

impl SlabEventQueue {
    /// Inserts an event.
    pub fn push(&mut self, event: Event) {
        let node = EventNode {
            src: event.src,
            dst: event.dst,
            payload_type: event.payload_type,
            payload: event.payload,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.nodes[slot as usize].is_none());
                self.nodes[slot as usize] = Some(node);
                slot
            }
            None => {
                let slot = u32::try_from(self.nodes.len()).expect("slab overflow");
                self.nodes.push(Some(node));
                slot
            }
        };
        self.keys.push(EventKey {
            time: event.time,
            id: event.id,
            slot,
        });
    }

    /// Removes and returns the earliest event (by `(time, id)`).
    pub fn pop(&mut self) -> Option<Event> {
        let key = self.keys.pop()?;
        let node = self.nodes[key.slot as usize]
            .take()
            .expect("slab slot vacated while its key was still queued");
        self.free.push(key.slot);
        Some(Event {
            id: key.id,
            time: key.time,
            src: node.src,
            dst: node.dst,
            payload_type: node.payload_type,
            payload: node.payload,
        })
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Capacity of the node slab (allocated once, then recycled).
    pub fn slab_capacity(&self) -> usize {
        self.nodes.len()
    }
}

/// The pre-change queue: full events heapified directly. Kept for the
/// benchmark comparison and as the ordering oracle in tests.
#[derive(Debug, Default)]
pub struct BoxedEventQueue {
    events: BinaryHeap<Event>,
}

impl BoxedEventQueue {
    /// Inserts an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Removes and returns the earliest event (by `(time, id)`).
    pub fn pop(&mut self) -> Option<Event> {
        self.events.pop()
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Queue representation selector (see [`crate::EngineMode`]).
pub enum EventQueue {
    /// Slab nodes + key heap, inline-capable payloads (the default).
    Slab(SlabEventQueue),
    /// Pre-change representation: boxed payloads heapified whole.
    Boxed(BoxedEventQueue),
}

impl EventQueue {
    /// Inserts an event.
    pub fn push(&mut self, event: Event) {
        match self {
            EventQueue::Slab(q) => q.push(event),
            EventQueue::Boxed(q) => q.push(event),
        }
    }

    /// Removes and returns the earliest event (by `(time, id)`).
    pub fn pop(&mut self) -> Option<Event> {
        match self {
            EventQueue::Slab(q) => q.pop(),
            EventQueue::Boxed(q) => q.pop(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        match self {
            EventQueue::Slab(q) => q.len(),
            EventQueue::Boxed(q) => q.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hack_tensor::DetRng;

    fn event(id: EventId, time: f64) -> Event {
        Event {
            id,
            time,
            src: 0,
            dst: 1,
            payload_type: "u64",
            payload: Payload::new(id),
        }
    }

    #[test]
    fn slab_pops_in_time_then_id_order() {
        let mut q = SlabEventQueue::default();
        q.push(event(3, 5.0));
        q.push(event(1, 1.0));
        q.push(event(2, 1.0));
        q.push(event(0, 9.0));
        let order: Vec<EventId> = std::iter::from_fn(|| q.pop()).map(|e| e.id).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn slab_preserves_event_bodies() {
        let mut q = SlabEventQueue::default();
        q.push(Event {
            id: 5,
            time: 2.5,
            src: 3,
            dst: 7,
            payload_type: "u64",
            payload: Payload::new(99u64),
        });
        let e = q.pop().unwrap();
        assert_eq!((e.id, e.time, e.src, e.dst), (5, 2.5, 3, 7));
        assert_eq!(e.get::<u64>(), Some(&99));
        assert!(q.pop().is_none());
    }

    #[test]
    fn slab_recycles_slots_through_the_free_list() {
        let mut q = SlabEventQueue::default();
        // Steady-state churn: queue depth stays <= 4, so the slab must too.
        let mut next_id = 0u64;
        for round in 0..100 {
            for _ in 0..4 {
                q.push(event(next_id, round as f64));
                next_id += 1;
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slab_capacity() <= 4,
            "slab grew to {} slots for queue depth 4",
            q.slab_capacity()
        );
    }

    #[test]
    fn slab_order_matches_boxed_queue_on_random_workload() {
        // The slab queue must reproduce the pre-change BinaryHeap<Event> delivery
        // order exactly, including ties and interleaved push/pop churn.
        for seed in 0..6 {
            let mut rng = DetRng::new(1000 + seed);
            let mut slab = SlabEventQueue::default();
            let mut boxed = BoxedEventQueue::default();
            let mut next_id = 0u64;
            let mut clock = 0.0f64;
            for _ in 0..500 {
                if rng.chance(0.6) || slab.is_empty() {
                    // Times collide frequently to exercise the id tie-break.
                    let time = clock + (rng.range_usize(0, 4) as f64) * 0.5;
                    slab.push(event(next_id, time));
                    boxed.push(event(next_id, time));
                    next_id += 1;
                } else {
                    let a = slab.pop().unwrap();
                    let b = boxed.pop().unwrap();
                    assert_eq!((a.id, a.time.to_bits()), (b.id, b.time.to_bits()));
                    clock = a.time;
                }
            }
            loop {
                match (slab.pop(), boxed.pop()) {
                    (None, None) => break,
                    (Some(a), Some(b)) => {
                        assert_eq!((a.id, a.time.to_bits()), (b.id, b.time.to_bits()))
                    }
                    (a, b) => panic!("queue lengths diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
