//! Structured event logging.
//!
//! When enabled (see [`crate::Simulation::set_log_enabled`]), the engine records
//! one entry per emitted and per delivered event. The log is the ground truth for
//! determinism checks: two runs with the same seed and the same component logic
//! must produce identical logs.

use crate::event::{ComponentId, EventId};

/// Whether a record captures an emission or a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// The event was scheduled.
    Emitted,
    /// The event was popped from the queue and handed to its destination.
    Delivered,
}

/// One structured log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event id.
    pub id: EventId,
    /// Scheduled/delivery time.
    pub time: f64,
    /// Emitting component.
    pub src: ComponentId,
    /// Destination component.
    pub dst: ComponentId,
    /// `std::any::type_name` of the payload.
    pub payload_type: &'static str,
    /// Emission or delivery.
    pub kind: RecordKind,
}

impl EventRecord {
    /// Compact single-line rendering, e.g. for debugging failed runs.
    pub fn render(&self) -> String {
        let arrow = match self.kind {
            RecordKind::Emitted => "~>",
            RecordKind::Delivered => "->",
        };
        // Strip module paths from the payload type for readability.
        let short = self
            .payload_type
            .rsplit("::")
            .next()
            .unwrap_or(self.payload_type);
        format!(
            "[{:>12.6}] #{} {} {} {} ({short})",
            self.time, self.id, self.src, arrow, self.dst
        )
    }
}
