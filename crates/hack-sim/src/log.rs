//! Structured event logging.
//!
//! When enabled (see [`crate::Simulation::set_log_enabled`]), the engine records
//! one entry per emitted and per delivered event. The log is the ground truth for
//! determinism checks: two runs with the same seed and the same component logic
//! must produce identical logs.

use crate::event::{ComponentId, EventId};

/// Whether a record captures an emission or a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// The event was scheduled.
    Emitted,
    /// The event was popped from the queue and handed to its destination.
    Delivered,
}

/// One structured log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event id.
    pub id: EventId,
    /// Scheduled/delivery time.
    pub time: f64,
    /// Emitting component.
    pub src: ComponentId,
    /// Destination component.
    pub dst: ComponentId,
    /// `std::any::type_name` of the payload.
    pub payload_type: &'static str,
    /// Emission or delivery.
    pub kind: RecordKind,
}

impl EventRecord {
    /// Header line matching [`EventRecord::render_csv`]'s column order.
    pub const CSV_HEADER: &'static str = "kind,time,id,src,dst,payload";

    /// Strips module paths from the payload type for readability.
    fn short_payload(&self) -> &'static str {
        self.payload_type
            .rsplit("::")
            .next()
            .unwrap_or(self.payload_type)
    }

    /// Compact single-line rendering, e.g. for debugging failed runs. All
    /// columns are fixed-width so consecutive records line up.
    pub fn render(&self) -> String {
        let arrow = match self.kind {
            RecordKind::Emitted => "~>",
            RecordKind::Delivered => "->",
        };
        format!(
            "[{:>14.6}] #{:<8} {:>4} {} {:<4} ({})",
            self.time,
            self.id,
            self.src,
            arrow,
            self.dst,
            self.short_payload()
        )
    }

    /// One CSV row (no trailing newline); columns per
    /// [`EventRecord::CSV_HEADER`]. Times use full `f64` round-trip precision
    /// so CSV dumps remain valid determinism evidence.
    pub fn render_csv(&self) -> String {
        let kind = match self.kind {
            RecordKind::Emitted => "emit",
            RecordKind::Delivered => "deliver",
        };
        format!(
            "{kind},{},{},{},{},{}",
            self.time,
            self.id,
            self.src,
            self.dst,
            self.short_payload()
        )
    }
}
