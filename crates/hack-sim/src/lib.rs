//! # hack-sim
//!
//! A generic, deterministic discrete-event simulation engine — the substrate the
//! `hack-cluster` serving simulator is built on, usable for any event-driven
//! model.
//!
//! ## Concepts
//!
//! * [`Simulation`] owns the virtual clock, the time-ordered event queue and a
//!   seeded deterministic RNG ([`hack_tensor::DetRng`]). Same seed + same
//!   component logic ⇒ bit-identical event traces.
//! * [`SimulationContext`] is a component's handle into the engine: read the
//!   clock, emit events to other components (by id) after a delay or at an
//!   absolute time, cancel pending events, draw random numbers.
//! * [`EventHandler`] is implemented by components that receive events; payloads
//!   are arbitrary `'static` types, inspected with [`Event::get`].
//! * Event ordering is total: `(time, id)` with `f64::total_cmp`, and emission
//!   rejects non-finite or past times, so the queue can never be corrupted by a
//!   stray NaN.
//! * The engine can record a structured [`log::EventRecord`] trace for
//!   debugging and determinism tests.
//!
//! ## Ping-pong example
//!
//! Two components bounce a ball until a rally budget is exhausted:
//!
//! ```
//! use hack_sim::{ComponentId, Event, EventHandler, Simulation, SimulationContext};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! struct Ball;
//!
//! struct Player {
//!     ctx: SimulationContext,
//!     peer: ComponentId,
//!     hits: u32,
//!     swing_time: f64,
//! }
//!
//! impl EventHandler for Player {
//!     fn on(&mut self, event: Event) {
//!         if event.is::<Ball>() {
//!             self.hits += 1;
//!             if self.hits < 10 {
//!                 // Return the ball across the net.
//!                 self.ctx.emit(Ball, self.peer, self.swing_time);
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let ping_ctx = sim.create_context("ping");
//! let pong_ctx = sim.create_context("pong");
//! let (ping_id, pong_id) = (ping_ctx.id(), pong_ctx.id());
//!
//! let ping = Rc::new(RefCell::new(Player {
//!     ctx: ping_ctx,
//!     peer: pong_id,
//!     hits: 0,
//!     swing_time: 0.1,
//! }));
//! let pong = Rc::new(RefCell::new(Player {
//!     ctx: pong_ctx,
//!     peer: ping_id,
//!     hits: 0,
//!     swing_time: 0.2,
//! }));
//! sim.add_handler("ping", ping.clone());
//! sim.add_handler("pong", pong.clone());
//!
//! // Serve: the referee tosses the ball to `ping` at t = 1s.
//! let referee = sim.create_context("referee");
//! referee.emit(Ball, ping_id, 1.0);
//!
//! sim.run();
//! // `ping` takes its 10th hit and stops; `pong` got 9.
//! assert_eq!(ping.borrow().hits + pong.borrow().hits, 19);
//! // Serve at 1.0, then 9 returns per side at 0.1/0.2 seconds each.
//! assert!((sim.time() - (1.0 + 9.0 * 0.1 + 9.0 * 0.2)).abs() < 1e-12);
//! ```

pub mod context;
pub mod event;
pub mod handler;
pub mod log;
pub mod payload;
pub mod queue;
pub mod simulation;
mod state;

/// Engine representation: how events are queued and payloads stored.
///
/// Both modes produce bit-identical event traces and results; they differ only
/// in allocation behaviour and speed. [`EngineMode::Boxed`] is the seed
/// implementation, retained so benchmarks and tests can measure/verify the
/// slab engine against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Free-list slab of event nodes behind a compact key heap; payloads up to
    /// 24 bytes stored inline (no allocation per event). The default.
    #[default]
    Slab,
    /// Pre-change representation: full events in a `BinaryHeap`, every payload
    /// boxed.
    Boxed,
}

pub use context::SimulationContext;
pub use event::{ComponentId, Event, EventId};
pub use handler::EventHandler;
pub use log::{EventRecord, RecordKind};
pub use payload::Payload;
pub use simulation::Simulation;
