//! The simulation driver: component registry and event loop.

use crate::context::SimulationContext;
use crate::event::{ComponentId, Event};
use crate::handler::EventHandler;
use crate::log::EventRecord;
use crate::state::SimState;
use crate::EngineMode;
use std::cell::RefCell;
use std::rc::Rc;

/// A deterministic discrete-event simulation.
///
/// Owns the virtual clock, the time-ordered event queue and a seeded
/// [`hack_tensor::DetRng`]. Components are registered by name; each gets a
/// [`SimulationContext`] to emit events and, if it implements
/// [`EventHandler`], receives the events addressed to it.
///
/// See the crate-level documentation for a complete ping-pong example.
pub struct Simulation {
    state: Rc<RefCell<SimState>>,
    names: Vec<Rc<str>>,
    handlers: Vec<Option<Rc<RefCell<dyn EventHandler>>>>,
    unhandled: u64,
}

impl Simulation {
    /// Creates an empty simulation whose RNG is seeded with `seed`, using the
    /// default slab/inline-payload engine.
    pub fn new(seed: u64) -> Self {
        Self::with_mode(seed, EngineMode::Slab)
    }

    /// Creates an empty simulation with an explicit engine representation.
    ///
    /// [`EngineMode::Boxed`] reproduces the pre-slab engine (full events
    /// heapified, every payload boxed); event traces and results are
    /// bit-identical across modes — only allocation behaviour and speed differ.
    pub fn with_mode(seed: u64, mode: EngineMode) -> Self {
        Self {
            state: Rc::new(RefCell::new(SimState::new(seed, mode))),
            names: Vec::new(),
            handlers: Vec::new(),
            unhandled: 0,
        }
    }

    /// The engine representation this simulation runs on.
    pub fn mode(&self) -> EngineMode {
        self.state.borrow().mode()
    }

    /// Registers a component name and returns its context. The returned context
    /// can emit events immediately; attach an [`EventHandler`] with
    /// [`Simulation::add_handler`] if the component should also receive them.
    ///
    /// Names must be unique.
    pub fn create_context(&mut self, name: impl Into<String>) -> SimulationContext {
        let name: Rc<str> = Rc::from(name.into());
        assert!(
            self.lookup_id(&name).is_none(),
            "component name `{name}` registered twice"
        );
        let id = self.names.len();
        self.names.push(Rc::clone(&name));
        self.handlers.push(None);
        SimulationContext::new(id, name, Rc::clone(&self.state))
    }

    /// Attaches an event handler to a previously created component name and
    /// returns the component's id.
    pub fn add_handler(
        &mut self,
        name: &str,
        handler: Rc<RefCell<dyn EventHandler>>,
    ) -> ComponentId {
        let id = self
            .lookup_id(name)
            .unwrap_or_else(|| panic!("no context was created for component `{name}`"));
        self.handlers[id] = Some(handler);
        id
    }

    /// Looks up a component id by name.
    pub fn lookup_id(&self, name: &str) -> Option<ComponentId> {
        self.names.iter().position(|n| n.as_ref() == name)
    }

    /// The name a component id was registered under.
    pub fn name(&self, id: ComponentId) -> &str {
        &self.names[id]
    }

    /// Current simulation time (seconds).
    pub fn time(&self) -> f64 {
        self.state.borrow().time()
    }

    /// Delivers the next event. Returns `false` when the queue is empty.
    ///
    /// Events addressed to a component without a handler are counted (see
    /// [`Simulation::unhandled_count`]) and otherwise dropped, like unhandled
    /// messages in most actor systems.
    pub fn step(&mut self) -> bool {
        let event: Option<Event> = self.state.borrow_mut().next_event();
        match event {
            None => false,
            Some(event) => {
                let handler = self.handlers.get(event.dst).cloned().flatten();
                match handler {
                    Some(handler) => handler.borrow_mut().on(event),
                    None => self.unhandled += 1,
                }
                true
            }
        }
    }

    /// Runs until the event queue is empty; returns the number of events
    /// delivered by this call.
    pub fn run(&mut self) -> u64 {
        let before = self.state.borrow().processed_count();
        while self.step() {}
        self.state.borrow().processed_count() - before
    }

    /// Runs until the queue is empty or the clock passes `deadline`; returns
    /// `true` if events remain (i.e. the deadline cut the run short). The first
    /// event scheduled after the deadline is still delivered — it is what moves
    /// the clock past it.
    pub fn run_until(&mut self, deadline: f64) -> bool {
        loop {
            if !self.step() {
                return false;
            }
            if self.time() > deadline {
                return true;
            }
        }
    }

    /// Total events emitted so far (including canceled and pending ones).
    pub fn emitted_count(&self) -> u64 {
        self.state.borrow().emitted_count()
    }

    /// Total events delivered so far.
    pub fn processed_count(&self) -> u64 {
        self.state.borrow().processed_count()
    }

    /// Events delivered to components that had no handler attached.
    pub fn unhandled_count(&self) -> u64 {
        self.unhandled
    }

    /// Number of events currently pending in the queue.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().queue_len()
    }

    /// Enables or disables structured event logging (disabled by default).
    pub fn set_log_enabled(&mut self, enabled: bool) {
        self.state.borrow_mut().set_log_enabled(enabled);
    }

    /// Drains and returns the structured event log recorded so far.
    pub fn take_log(&mut self) -> Vec<EventRecord> {
        self.state.borrow_mut().take_log()
    }

    /// Streams the structured event log to `writer` as CSV instead of (or in
    /// addition to) collecting it in memory: a header line is written
    /// immediately and every subsequent emission/delivery appends one
    /// [`EventRecord::render_csv`] row. Unlike [`Simulation::set_log_enabled`]
    /// + [`Simulation::take_log`], this never holds the full log in memory.
    ///
    /// Write errors are latched (logging continues as a no-op) and surfaced by
    /// [`Simulation::detach_log_writer`].
    pub fn log_to_writer<W: std::io::Write + 'static>(&mut self, writer: W) {
        self.state.borrow_mut().set_log_writer(Box::new(writer));
    }

    /// Flushes and drops the streaming log sink attached with
    /// [`Simulation::log_to_writer`], reporting the first write error
    /// encountered since it was attached. A no-op `Ok(())` when no sink is
    /// attached.
    pub fn detach_log_writer(&mut self) -> std::io::Result<()> {
        self.state.borrow_mut().detach_log_writer()
    }

    /// Installs the engine probe: a shared mutable value components can reach
    /// from their [`SimulationContext`] via [`SimulationContext::probe`]
    /// (telemetry registries, debug counters, ...). The probe is deliberately
    /// outside the event system — reading or writing it can never perturb the
    /// clock, the queue or the RNG.
    pub fn install_probe<T: std::any::Any>(&mut self, probe: Rc<RefCell<T>>) {
        self.state.borrow_mut().set_probe(probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::RecordKind;

    #[derive(Debug)]
    struct Tick {
        n: u32,
    }

    struct Counter {
        ctx: SimulationContext,
        seen: Vec<u32>,
        period: f64,
    }

    impl EventHandler for Counter {
        fn on(&mut self, event: Event) {
            if let Some(tick) = event.get::<Tick>() {
                self.seen.push(tick.n);
                if tick.n > 0 {
                    self.ctx.emit_self(Tick { n: tick.n - 1 }, self.period);
                }
            }
        }
    }

    fn build_counter(sim: &mut Simulation, period: f64) -> Rc<RefCell<Counter>> {
        let ctx = sim.create_context("counter");
        let counter = Rc::new(RefCell::new(Counter {
            ctx,
            seen: Vec::new(),
            period,
        }));
        sim.add_handler("counter", counter.clone());
        counter
    }

    #[test]
    fn self_scheduling_component_counts_down() {
        let mut sim = Simulation::new(1);
        let counter = build_counter(&mut sim, 2.0);
        counter.borrow().ctx.emit_self(Tick { n: 3 }, 1.0);
        let delivered = sim.run();
        assert_eq!(delivered, 4);
        assert_eq!(counter.borrow().seen, vec![3, 2, 1, 0]);
        assert!((sim.time() - 7.0).abs() < 1e-12);
        assert_eq!(sim.queue_len(), 0);
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut sim = Simulation::new(1);
        let counter = build_counter(&mut sim, 1.0);
        let keep = counter.borrow().ctx.emit_self(Tick { n: 0 }, 1.0);
        let cancel = counter.borrow().ctx.emit_self(Tick { n: 10 }, 2.0);
        counter.borrow().ctx.cancel_event(cancel);
        let _ = keep;
        sim.run();
        assert_eq!(counter.borrow().seen, vec![0]);
        assert_eq!(sim.processed_count(), 1);
    }

    #[test]
    fn events_to_handlerless_components_are_counted() {
        let mut sim = Simulation::new(1);
        let passive = sim.create_context("passive");
        passive.emit_self(Tick { n: 1 }, 0.5);
        sim.run();
        assert_eq!(sim.unhandled_count(), 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_delay_is_rejected_at_emit() {
        let mut sim = Simulation::new(1);
        let ctx = sim.create_context("c");
        ctx.emit_self(Tick { n: 0 }, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "before the current time")]
    fn negative_delay_is_rejected_at_emit() {
        let mut sim = Simulation::new(1);
        let ctx = sim.create_context("c");
        ctx.emit_self(Tick { n: 0 }, -1.0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_component_names_are_rejected() {
        let mut sim = Simulation::new(1);
        let _a = sim.create_context("dup");
        let _b = sim.create_context("dup");
    }

    #[test]
    fn log_records_emissions_and_deliveries_in_order() {
        let mut sim = Simulation::new(1);
        sim.set_log_enabled(true);
        let counter = build_counter(&mut sim, 1.0);
        counter.borrow().ctx.emit_self(Tick { n: 1 }, 0.25);
        sim.run();
        let log = sim.take_log();
        // 2 emissions (n=1, n=0) + 2 deliveries.
        assert_eq!(log.len(), 4);
        assert_eq!(log[0].kind, RecordKind::Emitted);
        assert_eq!(log[1].kind, RecordKind::Delivered);
        assert!(log[0].payload_type.ends_with("Tick"));
        assert!(!log[0].render().is_empty());
        // Draining empties the log.
        assert!(sim.take_log().is_empty());
    }

    #[test]
    fn same_seed_same_event_trace() {
        let run = |seed: u64| {
            let mut sim = Simulation::new(seed);
            sim.set_log_enabled(true);
            let counter = build_counter(&mut sim, 0.5);
            // Delays drawn from the engine RNG make the trace seed-dependent.
            let delay = counter.borrow().ctx.gen_range(0.0, 1.0);
            counter.borrow().ctx.emit_self(Tick { n: 5 }, delay);
            sim.run();
            sim.take_log()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn slab_and_boxed_modes_produce_identical_traces() {
        // The slab/inline-payload engine must reproduce the pre-change boxed
        // engine bit-for-bit: same event log, same final clock, same counts.
        let run = |mode: crate::EngineMode| {
            let mut sim = Simulation::with_mode(21, mode);
            sim.set_log_enabled(true);
            let counter = build_counter(&mut sim, 0.75);
            let delay = counter.borrow().ctx.gen_range(0.0, 1.0);
            counter.borrow().ctx.emit_self(Tick { n: 50 }, delay);
            sim.run();
            (sim.take_log(), sim.time().to_bits(), sim.processed_count())
        };
        let slab = run(crate::EngineMode::Slab);
        let boxed = run(crate::EngineMode::Boxed);
        assert_eq!(slab, boxed);
    }

    #[test]
    fn slab_mode_delivers_small_payloads_inline_boxed_mode_never_does() {
        struct Probe {
            inline_seen: Vec<bool>,
        }
        impl EventHandler for Probe {
            fn on(&mut self, event: Event) {
                self.inline_seen.push(event.payload_is_inline());
            }
        }
        for (mode, expect_inline) in [
            (crate::EngineMode::Slab, true),
            (crate::EngineMode::Boxed, false),
        ] {
            let mut sim = Simulation::with_mode(1, mode);
            let ctx = sim.create_context("probe");
            ctx.emit_self(Tick { n: 1 }, 0.5);
            let probe = Rc::new(RefCell::new(Probe {
                inline_seen: Vec::new(),
            }));
            sim.add_handler("probe", probe.clone());
            sim.run();
            assert_eq!(probe.borrow().inline_seen, vec![expect_inline], "{mode:?}");
        }
    }

    #[test]
    fn log_streams_to_writer_without_collecting() {
        #[derive(Clone, Default)]
        struct SharedBuf(Rc<RefCell<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf::default();
        let mut sim = Simulation::new(1);
        sim.log_to_writer(buf.clone());
        let counter = build_counter(&mut sim, 1.0);
        counter.borrow().ctx.emit_self(Tick { n: 1 }, 0.25);
        sim.run();
        sim.detach_log_writer().unwrap();

        let csv = String::from_utf8(buf.0.borrow().clone()).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], EventRecord::CSV_HEADER);
        // 2 emissions + 2 deliveries.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("emit,0.25,0,0,0,Tick"), "{}", lines[1]);
        assert!(lines[2].starts_with("deliver,0.25,"), "{}", lines[2]);
        // The in-memory log was never enabled: nothing was collected.
        assert!(sim.take_log().is_empty());
        // Detaching again is a clean no-op.
        assert!(sim.detach_log_writer().is_ok());
    }

    #[test]
    fn log_writer_errors_are_latched_and_reported() {
        struct FailingWriter;
        impl std::io::Write for FailingWriter {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut sim = Simulation::new(1);
        sim.log_to_writer(FailingWriter);
        let counter = build_counter(&mut sim, 1.0);
        counter.borrow().ctx.emit_self(Tick { n: 0 }, 0.5);
        sim.run(); // must not panic despite every write failing
        let err = sim.detach_log_writer().unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn render_variants_are_aligned_and_parseable() {
        let record = EventRecord {
            id: 7,
            time: 1.5,
            src: 0,
            dst: 3,
            payload_type: "some::module::Tick",
            kind: crate::log::RecordKind::Emitted,
        };
        // Fixed-width columns: two records of different magnitude align.
        let wide = EventRecord {
            id: 123456,
            time: 98765.25,
            ..record.clone()
        };
        let pos = |s: &str| s.find("(Tick)").unwrap();
        assert_eq!(pos(&record.render()), pos(&wide.render()));
        assert_eq!(record.render_csv(), "emit,1.5,7,0,3,Tick");
        assert_eq!(
            EventRecord::CSV_HEADER.split(',').count(),
            record.render_csv().split(',').count()
        );
    }

    #[test]
    fn probe_reaches_installed_value_and_is_silent_otherwise() {
        let mut sim = Simulation::new(1);
        let ctx = sim.create_context("c");
        // No probe installed: closure must not run.
        assert_eq!(ctx.probe::<u32, _>(|_, _| unreachable!("no probe")), None);

        let probe = Rc::new(RefCell::new(0u32));
        sim.install_probe(probe.clone());
        // Wrong type: still None.
        assert_eq!(
            ctx.probe::<String, _>(|_, _| unreachable!("wrong type")),
            None
        );
        // Right type: observes the clock and mutates the probe.
        ctx.emit_self(Tick { n: 0 }, 2.0);
        sim.run();
        let seen = ctx.probe::<u32, _>(|time, v| {
            *v += 5;
            time
        });
        assert_eq!(seen, Some(2.0));
        assert_eq!(*probe.borrow(), 5);
        // Probing never perturbs the engine.
        assert_eq!(sim.queue_len(), 0);
        assert_eq!(sim.emitted_count(), 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(1);
        let counter = build_counter(&mut sim, 10.0);
        counter.borrow().ctx.emit_self(Tick { n: 100 }, 0.0);
        let remaining = sim.run_until(35.0);
        assert!(remaining);
        assert!(sim.queue_len() > 0);
        assert!(sim.time() <= 45.0);
    }
}
