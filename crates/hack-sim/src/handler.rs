//! The component-side interface of the engine.

use crate::event::Event;

/// A simulation component that consumes events addressed to it.
///
/// Components are registered with [`crate::Simulation::add_handler`] and receive
/// every event whose `dst` is their id. They typically hold their own
/// [`crate::SimulationContext`] to emit future events from within `on`.
pub trait EventHandler {
    /// Processes one delivered event.
    fn on(&mut self, event: Event);
}
