//! Telemetry: lifecycle spans, time-series probes, counters/gauges/histograms,
//! and trace exporters.
//!
//! This module is the *data* layer of the simulator's observability stack. It
//! knows nothing about the engine or the cluster components: producers (the
//! `hack-cluster` components, or any `hack-sim` component via
//! `SimulationContext::probe`) push [`Span`]s, [`InstantEvent`]s and
//! time-series samples into one [`Telemetry`] registry, and consumers export
//! the registry as
//!
//! * Chrome trace-event JSON ([`Telemetry::chrome_trace_json`]) — loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, with one
//!   track per registered component and one counter track per time series;
//! * a compact CSV time-series dump ([`Telemetry::timeseries_csv`]);
//! * a JSON time-series dump ([`Telemetry::timeseries_value`]).
//!
//! Everything is deterministic: names are registered in a fixed order, spans
//! and samples are recorded in event order, and no wall-clock or randomness is
//! involved — two runs with the same seed produce byte-identical exports. See
//! `OBSERVABILITY.md` at the repository root for the span taxonomy and the
//! trace-event schema.

use serde::Value;

/// Identifier of a registered track (one Perfetto row, e.g. one replica).
pub type TrackId = u32;

/// Identifier of a registered time series (one Perfetto counter track).
pub type SeriesId = u32;

/// The `req` value of [`Span`]s and [`InstantEvent`]s that are not tied to a
/// single request (e.g. replica failures).
pub const NO_REQUEST: u64 = u64::MAX;

/// One closed lifecycle span on a track: a named interval of simulated time.
///
/// `name` and `cat` are `&'static str` so recording a span on the simulation
/// hot path never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Stage name, e.g. `"prefill_exec"`.
    pub name: &'static str,
    /// Component-kind category, e.g. `"prefill"` (the Chrome `cat` field).
    pub cat: &'static str,
    /// Track the span renders on.
    pub track: TrackId,
    /// Request the span belongs to, or [`NO_REQUEST`].
    pub req: u64,
    /// Start time (simulated seconds).
    pub start: f64,
    /// End time (simulated seconds, `>= start`).
    pub end: f64,
}

impl Span {
    /// Span duration in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One instantaneous event on a track (arrival, rejection, failure, ...).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantEvent {
    /// Event name, e.g. `"rejected"`.
    pub name: &'static str,
    /// Component-kind category (the Chrome `cat` field).
    pub cat: &'static str,
    /// Track the event renders on.
    pub track: TrackId,
    /// Request the event belongs to, or [`NO_REQUEST`].
    pub req: u64,
    /// Event time (simulated seconds).
    pub time: f64,
}

/// One named time series of `(time, value)` samples.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// Series name, e.g. `"prefill-0/queue_depth"`.
    pub name: String,
    /// Samples in recording (= time) order.
    pub points: Vec<(f64, f64)>,
}

/// A log₂-bucketed histogram of non-negative values.
///
/// Bucket `i` holds values in `[2^(i-1), 2^i)` (bucket 0 holds `[0, 1)`), so
/// relative resolution is a factor of two across the full `f64` range with a
/// fixed 64-slot footprint — cheap enough to record into on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    #[inline]
    fn bucket_of(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        // 1 + floor(log2(v)) straight from the IEEE-754 exponent (`v >= 1.0`
        // here, so the unbiased exponent is non-negative and infinities land
        // in the top bucket) — no libm call on the recording hot path.
        let biased = (value.to_bits() >> 52) & 0x7ff;
        (biased as usize - 1022).min(63)
    }

    /// Records one non-negative value (negative values clamp to zero).
    #[inline]
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Smallest recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min
    }

    /// Largest recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `q`-th ranked value (a factor-of-two underestimate at
    /// worst, exact for the extremes via `min`/`max`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
            }
        }
        self.max
    }
}

/// The telemetry registry of one run: tracks, spans, instants, time series and
/// the scalar counter/gauge/histogram registries.
///
/// All registration and recording methods are deterministic and
/// allocation-light; `record`-class methods on pre-registered ids do at most
/// one `Vec` push.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    tracks: Vec<String>,
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    series: Vec<TimeSeries>,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, f64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl Telemetry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // --- Registration (setup time, before the run). ---

    /// Registers a named track (one Perfetto row) and returns its id. Track
    /// ids are assigned in registration order, starting at 0.
    pub fn register_track(&mut self, name: impl Into<String>) -> TrackId {
        let id = self.tracks.len() as TrackId;
        self.tracks.push(name.into());
        id
    }

    /// Registers a named time series (one Perfetto counter track) and returns
    /// its id.
    pub fn register_series(&mut self, name: impl Into<String>) -> SeriesId {
        let id = self.series.len() as SeriesId;
        self.series.push(TimeSeries {
            name: name.into(),
            points: Vec::new(),
        });
        id
    }

    /// Pre-sizes the span and instant stores. Recording works without this —
    /// the vectors grow amortized — but a run that knows its request count can
    /// avoid every reallocation on the hot path by reserving upfront.
    pub fn reserve_recording(&mut self, spans: usize, instants: usize) {
        self.spans.reserve(spans);
        self.instants.reserve(instants);
    }

    // --- Recording (simulation time). ---

    /// Records a closed span.
    #[inline]
    pub fn span(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: TrackId,
        req: u64,
        start: f64,
        end: f64,
    ) {
        debug_assert!(end >= start, "span `{name}` ends before it starts");
        self.spans.push(Span {
            name,
            cat,
            track,
            req,
            start,
            end,
        });
    }

    /// Records an instantaneous event.
    #[inline]
    pub fn instant(
        &mut self,
        name: &'static str,
        cat: &'static str,
        track: TrackId,
        req: u64,
        time: f64,
    ) {
        self.instants.push(InstantEvent {
            name,
            cat,
            track,
            req,
            time,
        });
    }

    /// Appends one sample to a registered series.
    #[inline]
    pub fn sample(&mut self, series: SeriesId, time: f64, value: f64) {
        self.series[series as usize].points.push((time, value));
    }

    /// Adds `delta` to the named counter (registered on first use).
    #[inline]
    pub fn add_counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    /// Sets the named gauge (registered on first use).
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name, value)),
        }
    }

    /// Records one value into the named histogram (registered on first use).
    #[inline]
    pub fn record_histogram(&mut self, name: &'static str, value: f64) {
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.push((name, h));
            }
        }
    }

    // --- Inspection. ---

    /// Registered track names, in id order.
    pub fn tracks(&self) -> &[String] {
        &self.tracks
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded instantaneous events, in recording order.
    pub fn instants(&self) -> &[InstantEvent] {
        &self.instants
    }

    /// All registered time series, in id order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The named histogram, if ever recorded into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Number of spans whose category is `cat`.
    pub fn span_count_in(&self, cat: &str) -> usize {
        self.spans.iter().filter(|s| s.cat == cat).count()
    }

    /// Whether nothing has been recorded (registrations do not count).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.instants.is_empty()
            && self.counters.is_empty()
            && self.series.iter().all(|s| s.points.is_empty())
    }

    // --- Exporters. ---

    /// Exports the registry as Chrome trace-event JSON, loadable in Perfetto
    /// or `chrome://tracing`.
    ///
    /// Schema: `{"traceEvents": [...], "displayTimeUnit": "ms"}` with
    ///
    /// * one `"M"` (metadata) event naming the process and each track
    ///   (`pid` 1, `tid` = track id + 1);
    /// * one `"X"` (complete) event per span — `ts`/`dur` in microseconds of
    ///   simulated time, `args.req` carrying the request id;
    /// * one `"i"` (instant) event per instantaneous event;
    /// * one `"C"` (counter) event per time-series sample, named after the
    ///   series (Perfetto renders each name as its own counter track).
    ///
    /// The export is written by streaming into one `String` (no intermediate
    /// [`Value`] tree), so full-scale traces with millions of events stay
    /// cheap to produce.
    pub fn chrome_trace_json(&self) -> String {
        // ~120 bytes per event is a good preallocation estimate.
        let events = self.spans.len()
            + self.instants.len()
            + self.series.iter().map(|s| s.points.len()).sum::<usize>();
        let mut out = String::with_capacity(128 * (events + self.tracks.len()) + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
        };

        sep(&mut out);
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"hack-sim\"}}",
        );
        for (i, name) in self.tracks.iter().enumerate() {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":{}}}}}",
                i + 1,
                json_string(name)
            ));
        }
        for s in &self.spans {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}{}}}",
                json_string(s.name),
                json_string(s.cat),
                s.track + 1,
                json_f64(s.start * 1e6),
                json_f64(s.duration() * 1e6),
                req_args(s.req)
            ));
        }
        for e in &self.instants {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":{},\"cat\":{},\"pid\":1,\
                 \"tid\":{},\"ts\":{}{}}}",
                json_string(e.name),
                json_string(e.cat),
                e.track + 1,
                json_f64(e.time * 1e6),
                req_args(e.req)
            ));
        }
        for series in &self.series {
            let name = json_string(&series.name);
            for &(t, v) in &series.points {
                sep(&mut out);
                out.push_str(&format!(
                    "{{\"ph\":\"C\",\"name\":{name},\"pid\":1,\"ts\":{},\
                     \"args\":{{\"value\":{}}}}}",
                    json_f64(t * 1e6),
                    json_f64(v)
                ));
            }
        }
        out.push_str("]}");
        out
    }

    /// Exports every registered time series as compact CSV:
    /// `series,time_s,value` rows in series-registration then time order.
    pub fn timeseries_csv(&self) -> String {
        let points: usize = self.series.iter().map(|s| s.points.len()).sum();
        let mut out = String::with_capacity(32 * points + 32);
        out.push_str("series,time_s,value\n");
        for series in &self.series {
            for &(t, v) in &series.points {
                out.push_str(&series.name);
                out.push(',');
                out.push_str(&format!("{t}"));
                out.push(',');
                out.push_str(&format!("{v}"));
                out.push('\n');
            }
        }
        out
    }

    /// Exports every registered time series as a JSON [`Value`] tree:
    /// `{series_name: [[time_s, value], ...], ...}` in registration order.
    pub fn timeseries_value(&self) -> Value {
        Value::Object(
            self.series
                .iter()
                .map(|s| {
                    (
                        s.name.clone(),
                        Value::Array(
                            s.points
                                .iter()
                                .map(|&(t, v)| {
                                    Value::Array(vec![Value::Number(t), Value::Number(v)])
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        )
    }

    /// A one-line human summary (event volumes), for example/CLI output.
    pub fn summary_line(&self) -> String {
        format!(
            "{} spans, {} instants, {} series ({} samples), {} counters, {} histograms",
            self.spans.len(),
            self.instants.len(),
            self.series.len(),
            self.series.iter().map(|s| s.points.len()).sum::<usize>(),
            self.counters.len(),
            self.histograms.len()
        )
    }
}

/// `args` fragment carrying the request id, empty for [`NO_REQUEST`].
fn req_args(req: u64) -> String {
    if req == NO_REQUEST {
        String::new()
    } else {
        format!(",\"args\":{{\"req\":{req}}}")
    }
}

/// JSON string literal with the escapes the trace format can contain.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal for a finite `f64` (non-finite values export as 0,
/// which cannot occur for simulated times but keeps the output parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Telemetry {
        let mut t = Telemetry::new();
        let frontend = t.register_track("frontend");
        let prefill = t.register_track("prefill-0");
        let q = t.register_series("prefill-0/queue_depth");
        t.span("prefill_exec", "prefill", prefill, 3, 1.0, 2.5);
        t.span("queue_wait", "frontend", prefill, 3, 0.5, 1.0);
        t.instant("rejected", "frontend", frontend, 9, 0.75);
        t.instant("replica_failed", "decode", frontend, NO_REQUEST, 4.0);
        t.sample(q, 0.0, 0.0);
        t.sample(q, 1.0, 3.0);
        t.add_counter("completed", 1);
        t.add_counter("completed", 2);
        t.set_gauge("makespan", 4.5);
        t.record_histogram("jct_seconds", 1.5);
        t.record_histogram("jct_seconds", 6.0);
        t
    }

    #[test]
    fn registries_accumulate() {
        let t = populated();
        assert_eq!(
            t.tracks(),
            &["frontend".to_string(), "prefill-0".to_string()]
        );
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.span_count_in("prefill"), 1);
        assert_eq!(t.instants().len(), 2);
        assert_eq!(t.counter("completed"), 3);
        assert_eq!(t.counter("never"), 0);
        assert_eq!(t.gauge("makespan"), Some(4.5));
        let h = t.histogram("jct_seconds").unwrap();
        assert_eq!(h.count(), 2);
        assert!((h.mean() - 3.75).abs() < 1e-12);
        assert!(!t.is_empty());
        assert!(Telemetry::new().is_empty());
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.min(), 1.0);
        // Log2 buckets: the quantile is a lower bound within a factor of 2.
        let p50 = h.quantile(0.5);
        assert!((250.0..=500.0).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((495.0..=990.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) <= h.quantile(1.0));
    }

    #[test]
    fn chrome_trace_parses_and_carries_every_event() {
        let t = populated();
        let json = t.chrome_trace_json();
        let value = serde_json::from_str(&json).expect("trace JSON parses");
        let events = value.get_key("traceEvents").unwrap();
        let Value::Array(events) = events else {
            panic!("traceEvents is an array")
        };
        let phase = |e: &Value| e.get_key("ph").unwrap().as_str().unwrap().to_string();
        let count = |ph: &str| events.iter().filter(|e| phase(e) == ph).count();
        // 1 process + 2 thread metadata, 2 spans, 2 instants, 2 counter samples.
        assert_eq!(count("M"), 3);
        assert_eq!(count("X"), 2);
        assert_eq!(count("i"), 2);
        assert_eq!(count("C"), 2);
        // Span timestamps are microseconds.
        let span = events
            .iter()
            .find(|e| {
                phase(e) == "X" && e.get_key("name").unwrap().as_str() == Some("prefill_exec")
            })
            .unwrap();
        assert_eq!(span.get_key("ts").unwrap().as_f64(), Some(1.0e6));
        assert_eq!(span.get_key("dur").unwrap().as_f64(), Some(1.5e6));
        assert_eq!(
            span.get_key("args")
                .unwrap()
                .get_key("req")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
        // The failure instant is not request-scoped: no args at all.
        let failed = events
            .iter()
            .find(|e| e.get_key("name").unwrap().as_str() == Some("replica_failed"))
            .unwrap();
        assert!(failed.get_key("args").is_none());
    }

    #[test]
    fn csv_and_json_series_dumps_agree() {
        let t = populated();
        let csv = t.timeseries_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("series,time_s,value"));
        assert_eq!(lines.next(), Some("prefill-0/queue_depth,0,0"));
        assert_eq!(lines.next(), Some("prefill-0/queue_depth,1,3"));
        assert_eq!(lines.next(), None);

        let value = t.timeseries_value();
        let series = value.get_key("prefill-0/queue_depth").unwrap();
        let Value::Array(points) = series else {
            panic!("series is an array")
        };
        assert_eq!(points.len(), 2);
        let json = serde_json::to_string(&value).unwrap();
        assert!(serde_json::from_str(&json).is_ok());
    }

    #[test]
    fn string_escaping_survives_round_trip() {
        let mut t = Telemetry::new();
        t.register_track("weird \"name\"\\with\nescapes");
        let json = t.chrome_trace_json();
        assert!(serde_json::from_str(&json).is_ok(), "escaped JSON parses");
    }
}
