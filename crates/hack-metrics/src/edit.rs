//! Edit similarity (normalized Levenshtein distance), the paper's accuracy metric for
//! HumanEval code completion (§7.1).

/// Levenshtein distance between two sequences.
pub fn levenshtein<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit similarity between two sequences: `1 - levenshtein / max(len)`, in `[0, 1]`.
/// Two empty sequences have similarity 1.0.
pub fn edit_similarity<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Edit similarity between two strings, computed over their characters.
pub fn edit_similarity_str(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    edit_similarity(&ac, &bc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
    }

    #[test]
    fn similarity_bounds_and_identity() {
        assert_eq!(edit_similarity_str("hello", "hello"), 1.0);
        assert_eq!(edit_similarity_str("", ""), 1.0);
        assert_eq!(edit_similarity_str("abc", "xyz"), 0.0);
        let s = edit_similarity_str("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = "def add(a, b): return a + b";
        let b = "def add(x, y): return x + y";
        assert!((edit_similarity_str(a, b) - edit_similarity_str(b, a)).abs() < 1e-12);
        assert!(edit_similarity_str(a, b) > 0.7);
    }

    #[test]
    fn works_on_token_id_sequences() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [1u32, 2, 9, 4, 5];
        assert!((edit_similarity(&a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn insertion_only_difference() {
        let a = [1u32, 2, 3];
        let b = [1u32, 2, 3, 4, 5];
        assert!((edit_similarity(&a, &b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn triangle_like_sanity() {
        // Similarity decreases as more tokens change.
        let base = [0u32, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let one_change = [0u32, 1, 2, 3, 99, 5, 6, 7, 8, 9];
        let five_changes = [0u32, 91, 92, 93, 94, 95, 6, 7, 8, 9];
        assert!(edit_similarity(&base, &one_change) > edit_similarity(&base, &five_changes));
    }
}
