//! Scalar error metrics on plain vectors (used by the fidelity harness on logits and
//! probability distributions).

/// Mean absolute error between two equal-length slices.
pub fn mean_abs_error(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mean_abs_error length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() as f64)
        .sum::<f64>()
        / a.len() as f64
}

/// Cosine similarity between two equal-length slices (1.0 for two zero vectors).
pub fn cosine(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        dot += *x as f64 * *y as f64;
        na += (*x as f64).powi(2);
        nb += (*y as f64).powi(2);
    }
    if na == 0.0 && nb == 0.0 {
        return 1.0;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Top-1 agreement rate between two sequences of predictions.
pub fn agreement_rate<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "agreement_rate length mismatch");
    if a.is_empty() {
        return 1.0;
    }
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

/// Total-variation distance between two probability distributions.
pub fn total_variation(p: &[f32], q: &[f32]) -> f64 {
    assert_eq!(p.len(), q.len(), "total_variation length mismatch");
    0.5 * p
        .iter()
        .zip(q)
        .map(|(x, y)| (x - y).abs() as f64)
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_values() {
        assert_eq!(mean_abs_error(&[1.0, 2.0], &[1.5, 1.0]), 0.75);
        assert_eq!(mean_abs_error(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_known_values() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-9);
        assert_eq!(cosine(&[0.0], &[0.0]), 1.0);
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn agreement_counts_matches() {
        assert_eq!(agreement_rate(&[1, 2, 3, 4], &[1, 9, 3, 8]), 0.5);
        assert_eq!(agreement_rate::<u32>(&[], &[]), 1.0);
    }

    #[test]
    fn total_variation_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        let tv = total_variation(&[0.7, 0.3], &[0.5, 0.5]);
        assert!((tv - 0.2).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        cosine(&[1.0], &[1.0, 2.0]);
    }
}
