//! ROUGE-1: unigram-overlap F-score, the paper's accuracy metric for arXiv
//! summarization (§7.1).

use std::collections::HashMap;

/// Tokenizes text into lowercase alphanumeric words.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

fn counts(tokens: &[String]) -> HashMap<&str, usize> {
    let mut map = HashMap::new();
    for t in tokens {
        *map.entry(t.as_str()).or_insert(0) += 1;
    }
    map
}

/// ROUGE-1 F1 between a candidate and a reference text (clipped unigram overlap).
///
/// Returns a value in `[0, 1]`; 1.0 when both texts have identical bags of words,
/// and 1.0 by convention when both are empty.
pub fn rouge1_f1(candidate: &str, reference: &str) -> f64 {
    let cand = tokenize(candidate);
    let refr = tokenize(reference);
    rouge1_f1_tokens(&cand, &refr)
}

/// ROUGE-1 F1 on pre-tokenized word lists (or arbitrary symbol sequences).
pub fn rouge1_f1_tokens(candidate: &[String], reference: &[String]) -> f64 {
    if candidate.is_empty() && reference.is_empty() {
        return 1.0;
    }
    if candidate.is_empty() || reference.is_empty() {
        return 0.0;
    }
    let cand_counts = counts(candidate);
    let ref_counts = counts(reference);
    let mut overlap = 0usize;
    for (word, &c) in &cand_counts {
        if let Some(&r) = ref_counts.get(word) {
            overlap += c.min(r);
        }
    }
    if overlap == 0 {
        return 0.0;
    }
    let precision = overlap as f64 / candidate.len() as f64;
    let recall = overlap as f64 / reference.len() as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        assert!(
            (rouge1_f1("the cat sat on the mat", "the cat sat on the mat") - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn disjoint_texts_score_zero() {
        assert_eq!(rouge1_f1("alpha beta gamma", "delta epsilon zeta"), 0.0);
    }

    #[test]
    fn partial_overlap_known_value() {
        // candidate: "the cat" (2 tokens), reference: "the cat sat" (3 tokens).
        // overlap = 2, precision = 1.0, recall = 2/3, F1 = 0.8.
        assert!((rouge1_f1("the cat", "the cat sat") - 0.8).abs() < 1e-12);
    }

    #[test]
    fn clipping_limits_repeated_words() {
        // candidate repeats "the" 4 times but the reference has it twice.
        let f1 = rouge1_f1("the the the the", "the quick the fox");
        // overlap clipped to 2; precision 0.5, recall 0.5 -> F1 0.5.
        assert!((f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tokenization_is_case_and_punctuation_insensitive() {
        assert!((rouge1_f1("Hello, World!", "hello world") - 1.0).abs() < 1e-12);
        assert_eq!(tokenize("Hello,   world!!"), vec!["hello", "world"]);
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(rouge1_f1("", ""), 1.0);
        assert_eq!(rouge1_f1("a", ""), 0.0);
        assert_eq!(rouge1_f1("", "a"), 0.0);
    }

    #[test]
    fn symmetric_in_f1() {
        let a = "efficient kv cache compression for llm inference";
        let b = "kv cache quantization makes llm inference efficient";
        assert!((rouge1_f1(a, b) - rouge1_f1(b, a)).abs() < 1e-12);
    }

    #[test]
    fn token_variant_works_on_symbol_sequences() {
        let a: Vec<String> = ["5", "7", "9"].iter().map(|s| s.to_string()).collect();
        let b: Vec<String> = ["5", "9", "11"].iter().map(|s| s.to_string()).collect();
        let f1 = rouge1_f1_tokens(&a, &b);
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }
}
