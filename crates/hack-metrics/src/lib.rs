//! # hack-metrics
//!
//! Metrics and reporting for the HACK reproduction:
//!
//! * [`jct`] — per-request Job Completion Time decomposition (prefill / quantization /
//!   communication / dequantization-or-approximation / decode / queueing) and the
//!   aggregated statistics the paper's figures report (average JCT, average time
//!   ratios).
//! * [`rouge`] — ROUGE-1 F-score, the paper's accuracy metric for summarization.
//! * [`edit`] — normalized Levenshtein edit similarity, the paper's accuracy metric for
//!   code completion.
//! * [`error`] — scalar error metrics on vectors (used by the fidelity harness).
//! * [`tenant`] — per-tenant JCT grouping, Jain's fairness index and SLO-attainment
//!   summaries for multi-tenant cluster runs.
//! * [`telemetry`] — request-lifecycle spans, time-series probes and trace
//!   exporters (Chrome trace-event JSON for Perfetto, CSV/JSON time-series
//!   dumps).

pub mod edit;
pub mod error;
pub mod jct;
pub mod rouge;
pub mod telemetry;
pub mod tenant;

pub use edit::edit_similarity;
pub use jct::{average_ratios, JctBreakdown, JctStats, StageRatios};
pub use rouge::rouge1_f1;
pub use telemetry::{Histogram, InstantEvent, SeriesId, Span, Telemetry, TimeSeries, TrackId};
pub use tenant::{jain_index, per_tenant_stats, slo_attainment, TenantSlo};
