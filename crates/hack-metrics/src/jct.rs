//! Job Completion Time decomposition and aggregate statistics.

use serde::{Deserialize, Serialize};

/// Per-request JCT decomposition (all values in seconds).
///
/// The stages match Fig. 10 of the paper; `queueing` captures time spent waiting for a
/// prefill/decode slot or for the NIC, which is part of JCT but not of any stage bar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JctBreakdown {
    /// Prefill compute time.
    pub prefill: f64,
    /// KV quantization/encoding time.
    pub quantization: f64,
    /// KV transmission time (including NIC contention).
    pub communication: f64,
    /// Dequantization (baselines) or approximation (HACK) time.
    pub dequant_or_approx: f64,
    /// Decode time.
    pub decode: f64,
    /// Queueing / waiting time not attributable to any stage.
    pub queueing: f64,
}

impl JctBreakdown {
    /// Decodes a breakdown from its serialized [`serde::Value`] tree (used by
    /// the result-snapshot round-trip path).
    pub fn from_value(value: &serde::Value) -> Option<JctBreakdown> {
        let f = |key: &str| value.get_key(key).and_then(serde::Value::as_f64);
        Some(JctBreakdown {
            prefill: f("prefill")?,
            quantization: f("quantization")?,
            communication: f("communication")?,
            dequant_or_approx: f("dequant_or_approx")?,
            decode: f("decode")?,
            queueing: f("queueing")?,
        })
    }

    /// Total JCT.
    pub fn total(&self) -> f64 {
        self.prefill
            + self.quantization
            + self.communication
            + self.dequant_or_approx
            + self.decode
            + self.queueing
    }

    /// Per-stage ratios `stage / JCT` (the quantity averaged in Figs. 1–4).
    pub fn ratios(&self) -> StageRatios {
        let total = self.total().max(f64::MIN_POSITIVE);
        StageRatios {
            prefill: self.prefill / total,
            quantization: self.quantization / total,
            communication: self.communication / total,
            dequant_or_approx: self.dequant_or_approx / total,
            decode: self.decode / total,
            queueing: self.queueing / total,
        }
    }
}

/// Stage-to-JCT ratios of one request (or the average over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageRatios {
    /// Prefill / JCT.
    pub prefill: f64,
    /// Quantization / JCT.
    pub quantization: f64,
    /// Communication / JCT.
    pub communication: f64,
    /// Dequantization-or-approximation / JCT.
    pub dequant_or_approx: f64,
    /// Decode / JCT.
    pub decode: f64,
    /// Queueing / JCT.
    pub queueing: f64,
}

impl StageRatios {
    /// Sum of all ratios (1.0 for a single request's own ratios).
    pub fn sum(&self) -> f64 {
        self.prefill
            + self.quantization
            + self.communication
            + self.dequant_or_approx
            + self.decode
            + self.queueing
    }
}

/// Average time ratios over many requests, computed the way the paper does:
/// `1/N · Σ_i time_i / JCT_i` per stage (§2.1).
pub fn average_ratios(breakdowns: &[JctBreakdown]) -> StageRatios {
    if breakdowns.is_empty() {
        return StageRatios::default();
    }
    let n = breakdowns.len() as f64;
    let mut acc = StageRatios::default();
    for b in breakdowns {
        let r = b.ratios();
        acc.prefill += r.prefill;
        acc.quantization += r.quantization;
        acc.communication += r.communication;
        acc.dequant_or_approx += r.dequant_or_approx;
        acc.decode += r.decode;
        acc.queueing += r.queueing;
    }
    StageRatios {
        prefill: acc.prefill / n,
        quantization: acc.quantization / n,
        communication: acc.communication / n,
        dequant_or_approx: acc.dequant_or_approx / n,
        decode: acc.decode / n,
        queueing: acc.queueing / n,
    }
}

/// Aggregate JCT statistics over a set of requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JctStats {
    /// Number of requests.
    pub count: usize,
    /// Mean JCT in seconds.
    pub mean: f64,
    /// Median (p50) JCT.
    pub p50: f64,
    /// 95th-percentile JCT.
    pub p95: f64,
    /// 99th-percentile JCT.
    pub p99: f64,
    /// Maximum JCT.
    pub max: f64,
    /// Mean per-stage breakdown (seconds, not ratios).
    pub mean_breakdown: JctBreakdown,
}

impl JctStats {
    /// Computes statistics from per-request breakdowns.
    pub fn from_breakdowns(breakdowns: &[JctBreakdown]) -> JctStats {
        if breakdowns.is_empty() {
            return JctStats::default();
        }
        let mut totals: Vec<f64> = breakdowns.iter().map(|b| b.total()).collect();
        totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = breakdowns.len();
        let mean = totals.iter().sum::<f64>() / n as f64;
        let pct = |q: f64| totals[(((n - 1) as f64) * q).round() as usize];
        let mut mb = JctBreakdown::default();
        for b in breakdowns {
            mb.prefill += b.prefill;
            mb.quantization += b.quantization;
            mb.communication += b.communication;
            mb.dequant_or_approx += b.dequant_or_approx;
            mb.decode += b.decode;
            mb.queueing += b.queueing;
        }
        let nf = n as f64;
        mb.prefill /= nf;
        mb.quantization /= nf;
        mb.communication /= nf;
        mb.dequant_or_approx /= nf;
        mb.decode /= nf;
        mb.queueing /= nf;
        JctStats {
            count: n,
            mean,
            p50: pct(0.5),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *totals.last().unwrap(),
            mean_breakdown: mb,
        }
    }

    /// Relative reduction in mean JCT versus another (baseline) set of statistics:
    /// `1 - self.mean / other.mean`.
    pub fn reduction_vs(&self, other: &JctStats) -> f64 {
        if other.mean <= 0.0 {
            return 0.0;
        }
        1.0 - self.mean / other.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(prefill: f64, comm: f64, decode: f64) -> JctBreakdown {
        JctBreakdown {
            prefill,
            quantization: 0.1,
            communication: comm,
            dequant_or_approx: 0.2,
            decode,
            queueing: 0.5,
        }
    }

    #[test]
    fn total_and_ratios_sum_to_one() {
        let b = sample(2.0, 1.0, 5.0);
        assert!((b.total() - 8.8).abs() < 1e-9);
        assert!((b.ratios().sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_ratios_matches_manual_computation() {
        let a = sample(1.0, 1.0, 2.0); // total 4.8
        let b = sample(2.0, 0.0, 2.0); // total 4.8
        let avg = average_ratios(&[a, b]);
        let expect_prefill = (1.0 / 4.8 + 2.0 / 4.8) / 2.0;
        assert!((avg.prefill - expect_prefill).abs() < 1e-9);
        let expect_comm = (1.0 / 4.8 + 0.0) / 2.0;
        assert!((avg.communication - expect_comm).abs() < 1e-9);
    }

    #[test]
    fn stats_percentiles_are_ordered() {
        let breakdowns: Vec<JctBreakdown> = (1..=100).map(|i| sample(i as f64, 0.0, 0.0)).collect();
        let stats = JctStats::from_breakdowns(&breakdowns);
        assert_eq!(stats.count, 100);
        assert!(stats.p50 <= stats.p95);
        assert!(stats.p95 <= stats.p99);
        assert!(stats.p99 <= stats.max);
        assert!(stats.mean > 0.0);
        assert!((stats.mean_breakdown.queueing - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reduction_vs_baseline() {
        let fast = JctStats {
            mean: 10.0,
            ..Default::default()
        };
        let slow = JctStats {
            mean: 40.0,
            ..Default::default()
        };
        assert!((fast.reduction_vs(&slow) - 0.75).abs() < 1e-9);
        assert_eq!(fast.reduction_vs(&JctStats::default()), 0.0);
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert_eq!(average_ratios(&[]), StageRatios::default());
        assert_eq!(JctStats::from_breakdowns(&[]), JctStats::default());
    }
}
