//! Per-tenant service metrics: JCT grouping, Jain's fairness index and
//! SLO-attainment summaries for multi-tenant cluster runs.
//!
//! The cluster simulator tags every request (and hence every result record)
//! with a [`TenantId`]; the helpers here aggregate those records per tenant so
//! scheduling policies can be compared on *who* got the service, not just on
//! the global average.

use crate::jct::{JctBreakdown, JctStats};
use hack_workload::trace::TenantId;
use serde::Serialize;

/// Jain's fairness index over per-tenant allocations `x_i`:
/// `(Σx)² / (n · Σx²)`.
///
/// Ranges over `(0, 1]`: `1.0` when every tenant receives the same allocation,
/// `1/n` when one tenant receives everything. Degenerate inputs (empty, or all
/// zero) are trivially fair and return `1.0`.
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len() as f64;
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

/// Groups per-request JCT breakdowns by tenant, in ascending tenant order.
pub fn group_by_tenant(
    items: impl IntoIterator<Item = (TenantId, JctBreakdown)>,
) -> Vec<(TenantId, Vec<JctBreakdown>)> {
    let mut groups: Vec<(TenantId, Vec<JctBreakdown>)> = Vec::new();
    for (tenant, breakdown) in items {
        match groups.binary_search_by_key(&tenant, |(t, _)| *t) {
            Ok(i) => groups[i].1.push(breakdown),
            Err(i) => groups.insert(i, (tenant, vec![breakdown])),
        }
    }
    groups
}

/// Per-tenant [`JctStats`], in ascending tenant order.
pub fn per_tenant_stats(
    items: impl IntoIterator<Item = (TenantId, JctBreakdown)>,
) -> Vec<(TenantId, JctStats)> {
    group_by_tenant(items)
        .into_iter()
        .map(|(tenant, breakdowns)| (tenant, JctStats::from_breakdowns(&breakdowns)))
        .collect()
}

/// SLO attainment of one tenant: the fraction of its completed requests whose
/// JCT stayed within the tenant's target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TenantSlo {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant's JCT target in seconds.
    pub target: f64,
    /// Completed requests of this tenant.
    pub count: usize,
    /// Requests that finished within the target.
    pub attained: usize,
}

impl TenantSlo {
    /// Attainment as a fraction in `[0, 1]` (`1.0` for a tenant with no
    /// completed requests — no request missed its target).
    pub fn attainment(&self) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        self.attained as f64 / self.count as f64
    }
}

/// Per-tenant SLO attainment over `(tenant, jct)` pairs, with `target(tenant)`
/// supplying each tenant's JCT target. Tenants appear in ascending order.
pub fn slo_attainment(
    jcts: impl IntoIterator<Item = (TenantId, f64)>,
    target: impl Fn(TenantId) -> f64,
) -> Vec<TenantSlo> {
    let mut summaries: Vec<TenantSlo> = Vec::new();
    for (tenant, jct) in jcts {
        let i = match summaries.binary_search_by_key(&tenant, |s| s.tenant) {
            Ok(i) => i,
            Err(i) => {
                summaries.insert(
                    i,
                    TenantSlo {
                        tenant,
                        target: target(tenant),
                        count: 0,
                        attained: 0,
                    },
                );
                i
            }
        };
        summaries[i].count += 1;
        if jct <= summaries[i].target {
            summaries[i].attained += 1;
        }
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(decode: f64, queueing: f64) -> JctBreakdown {
        JctBreakdown {
            decode,
            queueing,
            ..Default::default()
        }
    }

    #[test]
    fn jain_index_bounds_and_extremes() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        // One tenant takes everything: 1/n.
        assert!((jain_index(&[5.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Monotone: a more skewed split is less fair.
        assert!(jain_index(&[2.0, 1.0]) > jain_index(&[10.0, 1.0]));
    }

    #[test]
    fn grouping_sorts_tenants_and_keeps_all_records() {
        let items = vec![
            (TenantId(2), breakdown(1.0, 0.0)),
            (TenantId(0), breakdown(2.0, 0.0)),
            (TenantId(2), breakdown(3.0, 0.0)),
        ];
        let groups = group_by_tenant(items);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, TenantId(0));
        assert_eq!(groups[1].0, TenantId(2));
        assert_eq!(groups[1].1.len(), 2);

        let stats = per_tenant_stats(vec![
            (TenantId(1), breakdown(4.0, 0.0)),
            (TenantId(1), breakdown(6.0, 0.0)),
        ]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.count, 2);
        assert!((stats[0].1.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn slo_attainment_counts_per_tenant() {
        let jcts = vec![
            (TenantId(0), 1.0),
            (TenantId(0), 3.0),
            (TenantId(1), 10.0),
            (TenantId(1), 30.0),
        ];
        let summary = slo_attainment(jcts, |t| if t == TenantId(0) { 2.0 } else { 20.0 });
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].tenant, TenantId(0));
        assert_eq!(summary[0].count, 2);
        assert_eq!(summary[0].attained, 1);
        assert!((summary[0].attainment() - 0.5).abs() < 1e-12);
        assert!((summary[1].attainment() - 0.5).abs() < 1e-12);
        let empty = TenantSlo {
            tenant: TenantId(9),
            target: 1.0,
            count: 0,
            attained: 0,
        };
        assert_eq!(empty.attainment(), 1.0);
    }
}
