//! # hack-tensor
//!
//! Dense-matrix substrate for the HACK reproduction.
//!
//! The paper's kernels run on GPU tensor cores through Triton; this crate provides the
//! CPU equivalents every other crate in the workspace builds on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the small set of operations attention
//!   needs (blocked matmul, transpose, row slicing, block views).
//! * [`half`] — software IEEE-754 binary16 ("FP16") emulation, used to model the
//!   storage precision the paper's baselines compute in.
//! * [`matmul`] — FP32 and INT8 (i8×i8→i32) GEMMs, including the widened-code GEMM the
//!   HACK homomorphic multiplication lowers to.
//! * [`softmax`] — numerically-stable row softmax plus the online-softmax primitives
//!   used by the FlashAttention-2-style kernel.
//! * [`rng`] — deterministic, seedable PRNG (SplitMix64 / Xoshiro256**) with Gaussian
//!   and exponential sampling; every stochastic component in the workspace takes one of
//!   these so that experiments are reproducible bit-for-bit.
//! * [`compare`] — numerical comparison helpers (relative error, cosine similarity)
//!   used throughout the test suites.

pub mod compare;
pub mod half;
pub mod matmul;
pub mod matrix;
pub mod rng;
pub mod softmax;

pub use compare::{cosine_similarity, max_abs_diff, mean_abs_error, relative_frobenius_error};
pub use half::F16;
pub use matrix::Matrix;
pub use rng::DetRng;
