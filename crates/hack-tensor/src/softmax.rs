//! Numerically-stable softmax and the online-softmax primitives used by the
//! FlashAttention-2-style kernel.

use crate::matrix::Matrix;

/// Row-wise numerically-stable softmax (Eq. 3 of the paper).
pub fn softmax_rows(scores: &Matrix) -> Matrix {
    let mut out = scores.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax.
pub fn softmax_rows_inplace(scores: &mut Matrix) {
    let cols = scores.cols();
    if cols == 0 {
        return;
    }
    for r in 0..scores.rows() {
        let row = scores.row_mut(r);
        softmax_slice_inplace(row);
    }
}

/// In-place softmax of a single slice.
pub fn softmax_slice_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // Fully-masked row: define the output as uniform to avoid NaN propagation.
        let v = 1.0 / row.len() as f32;
        for x in row.iter_mut() {
            *x = v;
        }
        return;
    }
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// Row-wise causal-masked softmax for prefill self-attention.
///
/// Entry `(i, j)` is masked (set to probability 0) when `j > i + offset`, where
/// `offset = L_KV - L_Q`; with `L_Q == L_KV` this is the standard causal mask, and
/// during decode (`L_Q == 1`) nothing is masked.
pub fn causal_softmax_rows(scores: &Matrix, l_kv_minus_l_q: usize) -> Matrix {
    let mut out = scores.clone();
    for r in 0..out.rows() {
        let limit = r + l_kv_minus_l_q; // inclusive last visible column
        let row = out.row_mut(r);
        for (c, v) in row.iter_mut().enumerate() {
            if c > limit {
                *v = f32::NEG_INFINITY;
            }
        }
        softmax_slice_inplace(row);
    }
    out
}

/// Running state for online softmax over blocks of scores (FlashAttention-2 style).
///
/// Processes score blocks left-to-right, maintaining the running row max `m`, the
/// running normaliser `l`, and the unnormalised weighted accumulation of values `acc`.
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    /// Running maximum per row.
    pub m: Vec<f32>,
    /// Running sum of exponentials per row.
    pub l: Vec<f32>,
    /// Unnormalised output accumulator, `rows × d_v`.
    pub acc: Matrix,
}

impl OnlineSoftmax {
    /// Creates the running state for `rows` query rows and value dimension `d_v`.
    pub fn new(rows: usize, d_v: usize) -> Self {
        Self {
            m: vec![f32::NEG_INFINITY; rows],
            l: vec![0.0; rows],
            acc: Matrix::zeros(rows, d_v),
        }
    }

    /// Folds one block of scores (`rows × block_len`) and the corresponding value block
    /// (`block_len × d_v`) into the running state.
    pub fn update(&mut self, score_block: &Matrix, value_block: &Matrix) {
        assert_eq!(score_block.rows(), self.acc.rows(), "row mismatch");
        assert_eq!(
            score_block.cols(),
            value_block.rows(),
            "score/value mismatch"
        );
        assert_eq!(value_block.cols(), self.acc.cols(), "value width mismatch");
        let rows = score_block.rows();
        let d_v = self.acc.cols();
        for r in 0..rows {
            let s_row = score_block.row(r);
            let block_max = s_row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let new_m = self.m[r].max(block_max);
            if new_m == f32::NEG_INFINITY {
                // Entire block masked and nothing accumulated yet.
                continue;
            }
            let correction = if self.m[r] == f32::NEG_INFINITY {
                0.0
            } else {
                (self.m[r] - new_m).exp()
            };
            // Rescale the existing accumulator and normaliser.
            self.l[r] *= correction;
            for c in 0..d_v {
                let v = self.acc.get(r, c) * correction;
                self.acc.set(r, c, v);
            }
            // Fold in the new block.
            for (j, &s) in s_row.iter().enumerate() {
                let p = (s - new_m).exp();
                if p == 0.0 {
                    continue;
                }
                self.l[r] += p;
                let v_row = value_block.row(j);
                #[allow(clippy::needless_range_loop)]
                for c in 0..d_v {
                    let v = self.acc.get(r, c) + p * v_row[c];
                    self.acc.set(r, c, v);
                }
            }
            self.m[r] = new_m;
        }
    }

    /// Finalises the state into normalised attention outputs (`rows × d_v`).
    pub fn finish(self) -> Matrix {
        let mut out = self.acc;
        for r in 0..out.rows() {
            let l = self.l[r];
            let inv = if l > 0.0 { 1.0 / l } else { 0.0 };
            for c in 0..out.cols() {
                let v = out.get(r, c) * inv;
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;
    use crate::rng::DetRng;

    #[test]
    fn rows_sum_to_one() {
        let mut rng = DetRng::new(1);
        let s = Matrix::random_normal(8, 16, 0.0, 3.0, &mut rng);
        let p = softmax_rows(&s);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let s = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let shifted = s.map(|x| x + 100.0);
        let a = softmax_rows(&s);
        let b = softmax_rows(&shifted);
        for c in 0..3 {
            assert!((a.get(0, c) - b.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let s = Matrix::from_vec(1, 3, vec![1e4, -1e4, 0.0]);
        let p = softmax_rows(&s);
        assert!(p.all_finite());
        assert!((p.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_scores_give_uniform_probabilities() {
        let s = Matrix::full(2, 5, 0.7);
        let p = softmax_rows(&s);
        for r in 0..2 {
            for c in 0..5 {
                assert!((p.get(r, c) - 0.2).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn fully_masked_row_is_uniform_not_nan() {
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice_inplace(&mut row);
        assert!(row.iter().all(|x| (x - 0.25).abs() < 1e-6));
    }

    #[test]
    fn causal_mask_zeroes_future_positions() {
        let s = Matrix::full(3, 3, 1.0);
        let p = causal_softmax_rows(&s, 0);
        // Row 0 attends only to position 0.
        assert!((p.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(p.get(0, 1), 0.0);
        assert_eq!(p.get(0, 2), 0.0);
        // Row 1 attends to 0 and 1 equally.
        assert!((p.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((p.get(1, 1) - 0.5).abs() < 1e-6);
        assert_eq!(p.get(1, 2), 0.0);
        // Row 2 attends to everything.
        for c in 0..3 {
            assert!((p.get(2, c) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn causal_mask_with_kv_offset() {
        // L_Q = 2, L_KV = 4 (two cached tokens): row 0 sees columns 0..=2.
        let s = Matrix::full(2, 4, 0.0);
        let p = causal_softmax_rows(&s, 2);
        assert_eq!(p.get(0, 3), 0.0);
        assert!((p.get(0, 0) - 1.0 / 3.0).abs() < 1e-6);
        // Row 1 sees all four.
        assert!((p.get(1, 3) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn online_softmax_matches_dense_attention() {
        let mut rng = DetRng::new(11);
        let l_q = 4;
        let l_kv = 24;
        let d_v = 8;
        let scores = Matrix::random_normal(l_q, l_kv, 0.0, 2.0, &mut rng);
        let values = Matrix::random_normal(l_kv, d_v, 0.0, 1.0, &mut rng);

        let expect = matmul(&softmax_rows(&scores), &values);

        let mut online = OnlineSoftmax::new(l_q, d_v);
        let block = 7; // deliberately not a divisor of l_kv
        let mut start = 0;
        while start < l_kv {
            let end = (start + block).min(l_kv);
            let s_block = scores.block(0, l_q, start, end);
            let v_block = values.row_block(start, end);
            online.update(&s_block, &v_block);
            start = end;
        }
        let got = online.finish();
        for r in 0..l_q {
            for c in 0..d_v {
                assert!(
                    (expect.get(r, c) - got.get(r, c)).abs() < 1e-4,
                    "({r},{c}): {} vs {}",
                    expect.get(r, c),
                    got.get(r, c)
                );
            }
        }
    }

    #[test]
    fn online_softmax_handles_masked_blocks() {
        let l_q = 2;
        let d_v = 3;
        let mut online = OnlineSoftmax::new(l_q, d_v);
        let masked = Matrix::full(l_q, 4, f32::NEG_INFINITY);
        let values = Matrix::full(4, d_v, 5.0);
        online.update(&masked, &values);
        let normal = Matrix::full(l_q, 2, 0.0);
        let values2 = Matrix::from_fn(2, d_v, |r, _| r as f32);
        online.update(&normal, &values2);
        let out = online.finish();
        for r in 0..l_q {
            for c in 0..d_v {
                assert!((out.get(r, c) - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_row_softmax_is_noop() {
        let mut empty: Vec<f32> = vec![];
        softmax_slice_inplace(&mut empty);
        assert!(empty.is_empty());
    }
}
