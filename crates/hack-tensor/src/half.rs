//! Software IEEE-754 binary16 ("FP16") emulation.
//!
//! The paper stores unquantized activations and KV data in FP16 and computes the
//! baseline/dequantized paths in FP16. This module provides bit-exact conversions
//! between `f32` and the 16-bit format (round-to-nearest-even, with correct handling of
//! subnormals, infinities and NaN) so the reproduction can model FP16 *storage*
//! precision on a CPU that computes in `f32`.

/// A 16-bit IEEE-754 binary16 value stored as its raw bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct F16(pub u16);

const F16_EXP_BIAS: i32 = 15;
const F32_EXP_BIAS: i32 = 127;

impl F16 {
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Converts an `f32` to FP16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        F16(f32_to_f16_bits(value))
    }

    /// Converts this FP16 value to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Returns true if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns true if the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns true if the value is finite (not NaN, not infinite).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

/// Converts `f32` bits to binary16 bits using round-to-nearest-even.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            // Preserve a quiet NaN; keep at least one mantissa bit set.
            sign | 0x7C00 | ((mant >> 13) as u16).max(1)
        };
    }

    // Unbiased exponent.
    let unbiased = exp - F32_EXP_BIAS;
    let half_exp = unbiased + F16_EXP_BIAS;

    if half_exp >= 0x1F {
        // Overflow to infinity.
        return sign | 0x7C00;
    }

    if half_exp <= 0 {
        // Subnormal in FP16 (or underflow to zero).
        if half_exp < -10 {
            // Too small even for a subnormal: round to zero.
            return sign;
        }
        // Add the implicit leading 1 and shift right to form the subnormal mantissa.
        let mant_with_hidden = mant | 0x0080_0000;
        let shift = (14 - half_exp) as u32; // between 14 and 24
        let half_mant = (mant_with_hidden >> shift) as u16;
        // Round-to-nearest-even on the bits shifted out.
        let round_bit = 1u32 << (shift - 1);
        let remainder = mant_with_hidden & ((1u32 << shift) - 1);
        let mut result = sign | half_mant;
        if remainder > round_bit || (remainder == round_bit && (half_mant & 1) == 1) {
            result = result.wrapping_add(1);
        }
        return result;
    }

    // Normalised case.
    let mut half_mant = (mant >> 13) as u16;
    let mut half_e = half_exp as u16;
    let remainder = mant & 0x1FFF;
    if remainder > 0x1000 || (remainder == 0x1000 && (half_mant & 1) == 1) {
        half_mant = half_mant.wrapping_add(1);
        if half_mant == 0x0400 {
            // Mantissa overflowed into the exponent.
            half_mant = 0;
            half_e += 1;
            if half_e >= 0x1F {
                return sign | 0x7C00;
            }
        }
    }
    sign | (half_e << 10) | half_mant
}

/// Converts binary16 bits to an `f32` exactly (binary16 is a subset of binary32).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;

    let out_bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalise it into the f32 representation.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03FF;
            let f32_exp = ((e + 1 - F16_EXP_BIAS + F32_EXP_BIAS) as u32) << 23;
            sign | f32_exp | (m << 13)
        }
    } else if exp == 0x1F {
        if mant == 0 {
            sign | 0x7F80_0000
        } else {
            sign | 0x7FC0_0000 | (mant << 13)
        }
    } else {
        let f32_exp = (exp as i32 - F16_EXP_BIAS + F32_EXP_BIAS) as u32;
        sign | (f32_exp << 23) | (mant << 13)
    };
    f32::from_bits(out_bits)
}

/// Rounds an `f32` to the nearest representable FP16 value and returns it as `f32`.
///
/// This is how the workspace models FP16 *storage*: values are kept in `f32` containers
/// but squeezed through binary16 precision whenever the paper's pipeline would have
/// materialised them in FP16.
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Applies [`round_to_f16`] to every element of a slice in place.
pub fn round_slice_to_f16(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = round_to_f16(*v);
    }
}

/// Number of bytes needed to store `n` FP16 values.
pub fn f16_storage_bytes(n: usize) -> usize {
    n * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips() {
        assert_eq!(F16::from_f32(0.0).0, 0);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(0.0).to_f32(), 0.0);
    }

    #[test]
    fn one_round_trips() {
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f32(65504.0), F16::MAX);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::from_f32(0.5).to_f32(), 0.5);
        assert_eq!(F16::from_f32(-2.0).to_f32(), -2.0);
    }

    #[test]
    fn overflow_becomes_infinity() {
        assert_eq!(F16::from_f32(1.0e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1.0e6), F16::NEG_INFINITY);
        assert!(F16::from_f32(1.0e6).is_infinite());
    }

    #[test]
    fn nan_is_preserved() {
        let nan = F16::from_f32(f32::NAN);
        assert!(nan.is_nan());
        assert!(nan.to_f32().is_nan());
    }

    #[test]
    fn infinity_round_trips() {
        assert_eq!(F16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(f32::NEG_INFINITY).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_round_trip() {
        // Smallest positive subnormal is 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1.0e-10).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next FP16 value (1 + 2^-10);
        // round-to-nearest-even must pick 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(round_to_f16(halfway), 1.0);
        // Slightly above halfway must round up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-13);
        assert_eq!(round_to_f16(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn relative_error_is_bounded_for_normals() {
        // FP16 has a 10-bit mantissa, so relative rounding error <= 2^-11.
        let mut rng = crate::rng::DetRng::new(42);
        for _ in 0..10_000 {
            let x = rng.range_f32(-1000.0, 1000.0);
            if x.abs() < 1e-3 {
                continue;
            }
            let r = round_to_f16(x);
            let rel = ((r - x) / x).abs();
            assert!(rel <= 2.0f32.powi(-11) + 1e-7, "x={x} r={r} rel={rel}");
        }
    }

    #[test]
    fn exhaustive_f16_to_f32_to_f16_identity() {
        // Every finite f16 bit pattern must survive a round trip through f32.
        for bits in 0u16..=0xFFFF {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x} -> {:#06x}", back.0);
        }
    }

    #[test]
    fn round_slice_matches_scalar() {
        let mut values = vec![0.1, -3.7, 12345.678, 1e-5];
        let expect: Vec<f32> = values.iter().map(|&v| round_to_f16(v)).collect();
        round_slice_to_f16(&mut values);
        assert_eq!(values, expect);
    }

    #[test]
    fn storage_bytes() {
        assert_eq!(f16_storage_bytes(0), 0);
        assert_eq!(f16_storage_bytes(128), 256);
    }
}
