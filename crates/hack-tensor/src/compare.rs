//! Numerical comparison helpers shared by every test-suite and by the fidelity
//! experiments (Table 6 / Table 7 proxies).

use crate::matrix::Matrix;

/// Maximum absolute element-wise difference between two matrices.
///
/// # Panics
/// Panics if the shapes differ.
pub fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Mean absolute element-wise difference.
pub fn mean_abs_error(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "mean_abs_error shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() as f64)
        .sum();
    (sum / a.len() as f64) as f32
}

/// Relative error in the Frobenius norm: `||a - b||_F / ||a||_F`.
///
/// Returns the absolute norm of `b` if `a` is (numerically) zero.
pub fn relative_frobenius_error(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(
        a.shape(),
        b.shape(),
        "relative_frobenius_error shape mismatch"
    );
    let diff: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum();
    let norm: f64 = a.as_slice().iter().map(|x| (*x as f64).powi(2)).sum();
    if norm < 1e-30 {
        return (diff.sqrt()) as f32;
    }
    (diff.sqrt() / norm.sqrt()) as f32
}

/// Cosine similarity between two matrices viewed as flat vectors.
///
/// Returns 1.0 for two zero matrices and 0.0 when exactly one of them is zero.
pub fn cosine_similarity(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape(), "cosine_similarity shape mismatch");
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        dot += *x as f64 * *y as f64;
        na += (*x as f64).powi(2);
        nb += (*y as f64).powi(2);
    }
    if na < 1e-30 && nb < 1e-30 {
        return 1.0;
    }
    if na < 1e-30 || nb < 1e-30 {
        return 0.0;
    }
    (dot / (na.sqrt() * nb.sqrt())) as f32
}

/// Asserts two matrices are element-wise close; meant for use inside tests.
pub fn assert_matrices_close(a: &Matrix, b: &Matrix, tol: f32, context: &str) {
    assert_eq!(a.shape(), b.shape(), "{context}: shape mismatch");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let x = a.get(r, c);
            let y = b.get(r, c);
            assert!(
                (x - y).abs() <= tol,
                "{context}: element ({r},{c}) differs: {x} vs {y} (tol {tol})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn identical_matrices_have_zero_error() {
        let mut rng = DetRng::new(1);
        let a = Matrix::random_normal(5, 5, 0.0, 1.0, &mut rng);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert_eq!(mean_abs_error(&a, &a), 0.0);
        assert_eq!(relative_frobenius_error(&a, &a), 0.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn known_difference() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.5, 1.0]);
        assert_eq!(max_abs_diff(&a, &b), 1.0);
        assert_eq!(mean_abs_error(&a, &b), 0.75);
    }

    #[test]
    fn relative_error_scales() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let b = Matrix::from_vec(1, 2, vec![3.0, 3.0]);
        // ||a|| = 5, ||a-b|| = 1
        assert!((relative_frobenius_error(&a, &b) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let b = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_vectors_is_minus_one() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let b = a.scale(-3.0);
        assert!((cosine_similarity(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_matrix_edge_cases() {
        let z = Matrix::zeros(2, 2);
        let a = Matrix::full(2, 2, 1.0);
        assert_eq!(cosine_similarity(&z, &z), 1.0);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
        assert!(relative_frobenius_error(&z, &a) > 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        max_abs_diff(&a, &b);
    }

    #[test]
    fn assert_close_passes_within_tolerance() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![1.0005, 1.9995]);
        assert_matrices_close(&a, &b, 1e-3, "test");
    }

    #[test]
    #[should_panic(expected = "differs")]
    fn assert_close_fails_outside_tolerance() {
        let a = Matrix::from_vec(1, 1, vec![1.0]);
        let b = Matrix::from_vec(1, 1, vec![2.0]);
        assert_matrices_close(&a, &b, 0.5, "test");
    }
}
