//! Matrix multiplication kernels.
//!
//! The reproduction needs three flavours of GEMM:
//!
//! 1. An FP32 reference GEMM ([`matmul`], [`matmul_transposed_b`]) for baseline
//!    attention and for validating every other kernel.
//! 2. A cache-blocked FP32 GEMM ([`matmul_blocked`]) used by the larger reference
//!    transformer forward passes.
//! 3. Integer GEMMs on small codes ([`gemm_i8_i32`], [`gemm_u8_i32`]) that model the
//!    INT8 tensor-core path the paper lowers the homomorphic multiplication onto
//!    (§6: quantized 2-bit codes are widened to INT8 before the GEMM because Triton's
//!    minimum compute precision is INT8).

use crate::matrix::Matrix;

/// Reference FP32 GEMM: `C = A · B`.
///
/// # Panics
/// Panics if the inner dimensions do not match.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul inner dimension mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (z, &a_iz) in a_row.iter().enumerate().take(k) {
            if a_iz == 0.0 {
                continue;
            }
            let b_row = b.row(z);
            for (j, &b_zj) in b_row.iter().enumerate().take(n) {
                out_row[j] += a_iz * b_zj;
            }
        }
    }
    out
}

/// FP32 GEMM with the second operand given transposed: `C = A · Bᵀ`.
///
/// Attention computes `Q · Kᵀ`, where both `Q` and `K` are stored token-major
/// (`L × d_h`); this kernel avoids materialising the transpose.
pub fn matmul_transposed_b(a: &Matrix, b_t: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b_t.cols(),
        "matmul_transposed_b inner dimension mismatch: {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b_t.rows(),
        b_t.cols()
    );
    let m = a.rows();
    let n = b_t.rows();
    let k = a.cols();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            let b_row = b_t.row(j);
            let mut acc = 0.0f32;
            for z in 0..k {
                acc += a_row[z] * b_row[z];
            }
            out_row[j] = acc;
        }
    }
    out
}

/// Cache-blocked FP32 GEMM. Identical results (up to FP associativity) to [`matmul`]
/// but substantially faster for the reference-transformer shapes.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_blocked inner dimension mismatch"
    );
    assert!(block > 0, "block size must be positive");
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    for ii in (0..m).step_by(block) {
        let i_end = (ii + block).min(m);
        for kk in (0..k).step_by(block) {
            let k_end = (kk + block).min(k);
            for jj in (0..n).step_by(block) {
                let j_end = (jj + block).min(n);
                for i in ii..i_end {
                    let a_row = a.row(i);
                    let out_row = out.row_mut(i);
                    #[allow(clippy::needless_range_loop)]
                    for z in kk..k_end {
                        let a_iz = a_row[z];
                        if a_iz == 0.0 {
                            continue;
                        }
                        let b_row = b.row(z);
                        for j in jj..j_end {
                            out_row[j] += a_iz * b_row[j];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Integer GEMM on signed 8-bit codes with 32-bit accumulation: `C = A · B`.
///
/// `a` is `m × k` row-major, `b` is `k × n` row-major. This is the CPU stand-in for the
/// INT8 tensor-core GEMM used by HACK's homomorphic multiplication.
pub fn gemm_i8_i32(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "gemm_i8_i32: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8_i32: B length mismatch");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (z, &a_iz) in a_row.iter().enumerate() {
            if a_iz == 0 {
                continue;
            }
            let a_val = a_iz as i32;
            let b_row = &b[z * n..(z + 1) * n];
            for (j, &b_zj) in b_row.iter().enumerate() {
                out_row[j] += a_val * b_zj as i32;
            }
        }
    }
    out
}

/// Integer GEMM on unsigned 8-bit codes (the widened 2-bit/8-bit quantization codes,
/// which are always non-negative) with 32-bit accumulation: `C = A · B`.
pub fn gemm_u8_i32(a: &[u8], b: &[u8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "gemm_u8_i32: A length mismatch");
    assert_eq!(b.len(), k * n, "gemm_u8_i32: B length mismatch");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (z, &a_iz) in a_row.iter().enumerate() {
            if a_iz == 0 {
                continue;
            }
            let a_val = a_iz as i32;
            let b_row = &b[z * n..(z + 1) * n];
            for (j, &b_zj) in b_row.iter().enumerate() {
                out_row[j] += a_val * b_zj as i32;
            }
        }
    }
    out
}

/// Blocked inner product of two unsigned code slices with `i32` accumulation —
/// the innermost kernel of the homomorphic GEMM (§5.3).
///
/// On x86-64 this widens 16 codes at a time to 16-bit lanes and multiply-adds
/// them with `pmaddwd` (part of the x86-64 baseline, so no runtime dispatch) —
/// the CPU analogue of the paper's §6 trick of widening 2-bit codes to INT8
/// for the tensor-core GEMM. Every step is exact integer arithmetic and `i32`
/// addition is associative (also modulo 2³², so even on overflow), making the
/// result bit-identical to the scalar left-to-right sum.
#[inline]
pub fn dot_u8_i32(a: &[u8], b: &[u8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_u8_i32 length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        // `is_x86_feature_detected!` caches its probe in an atomic, so this is
        // one relaxed load + predictable branch per call.
        if a.len() >= 32 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just checked.
            return unsafe { dot_u8_i32_avx2(a, b) };
        }
        // SAFETY: SSE2 is part of the x86-64 baseline instruction set.
        unsafe { dot_u8_i32_sse2(a, b) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    dot_u8_i32_scalar(a, b)
}

/// Portable fallback (and the oracle the SIMD path is tested against).
#[inline]
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
fn dot_u8_i32_scalar(a: &[u8], b: &[u8]) -> i32 {
    let mut acc = 0i32;
    for (x, y) in a.iter().zip(b) {
        acc = acc.wrapping_add(*x as i32 * *y as i32);
    }
    acc
}

#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn dot_u8_i32_sse2(a: &[u8], b: &[u8]) -> i32 {
    use std::arch::x86_64::*;
    let len = a.len();
    let chunks = len / 16;
    unsafe {
        let zero = _mm_setzero_si128();
        let mut acc = _mm_setzero_si128(); // four i32 partial sums
        for c in 0..chunks {
            let pa = _mm_loadu_si128(a.as_ptr().add(c * 16).cast());
            let pb = _mm_loadu_si128(b.as_ptr().add(c * 16).cast());
            // Zero-extend u8 -> 16-bit lanes (0..=255 is non-negative as i16),
            // then pmaddwd: lane products (<= 255² = 65025) are summed pairwise
            // into i32 lanes — exact.
            let a_lo = _mm_unpacklo_epi8(pa, zero);
            let a_hi = _mm_unpackhi_epi8(pa, zero);
            let b_lo = _mm_unpacklo_epi8(pb, zero);
            let b_hi = _mm_unpackhi_epi8(pb, zero);
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
        }
        // Horizontal sum of the four i32 lanes.
        let hi64 = _mm_unpackhi_epi64(acc, acc);
        let sum2 = _mm_add_epi32(acc, hi64);
        let hi32 = _mm_shuffle_epi32(sum2, 0b0000_0001);
        let mut total = _mm_cvtsi128_si32(_mm_add_epi32(sum2, hi32));
        for i in chunks * 16..len {
            total = total.wrapping_add(*a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32);
        }
        total
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn dot_u8_i32_avx2(a: &[u8], b: &[u8]) -> i32 {
    use std::arch::x86_64::*;
    let len = a.len();
    let chunks = len / 32;
    unsafe {
        let zero = _mm256_setzero_si256();
        let mut acc = _mm256_setzero_si256(); // eight i32 partial sums
        for c in 0..chunks {
            let pa = _mm256_loadu_si256(a.as_ptr().add(c * 32).cast());
            let pb = _mm256_loadu_si256(b.as_ptr().add(c * 32).cast());
            // Same widen-then-pmaddwd scheme as the SSE2 path, 32 codes at a time.
            let a_lo = _mm256_unpacklo_epi8(pa, zero);
            let a_hi = _mm256_unpackhi_epi8(pa, zero);
            let b_lo = _mm256_unpacklo_epi8(pb, zero);
            let b_hi = _mm256_unpackhi_epi8(pb, zero);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
        }
        // Horizontal sum of the eight i32 lanes.
        let lo128 = _mm256_castsi256_si128(acc);
        let hi128 = _mm256_extracti128_si256(acc, 1);
        let sum4 = _mm_add_epi32(lo128, hi128);
        let hi64 = _mm_unpackhi_epi64(sum4, sum4);
        let sum2 = _mm_add_epi32(sum4, hi64);
        let hi32 = _mm_shuffle_epi32(sum2, 0b0000_0001);
        let mut total = _mm_cvtsi128_si32(_mm_add_epi32(sum2, hi32));
        for i in chunks * 32..len {
            total = total.wrapping_add(*a.get_unchecked(i) as i32 * *b.get_unchecked(i) as i32);
        }
        total
    }
}

/// Computes the per-partition inner products of two equal-length code rows in
/// one pass: `out[p] = dot(a[start_p..end_p], b[start_p..end_p])`.
///
/// This is [`dot_u8_i32`] fused over a whole partitioned row: the SIMD feature
/// dispatch and the slice validation happen once per row pair instead of once
/// per partition, which matters when partitions are short (Π = 32..128 codes).
///
/// # Panics
/// Panics if the rows differ in length, `spans` and `out` differ in length, or
/// any span is reversed or out of bounds.
#[inline]
pub fn partition_dots_u8_i32(a: &[u8], b: &[u8], spans: &[(usize, usize)], out: &mut [i32]) {
    assert_eq!(a.len(), b.len(), "partition_dots_u8_i32 length mismatch");
    assert_eq!(spans.len(), out.len(), "partition_dots_u8_i32 span count");
    // Validate every span up front — this is a safe public fn, so the unchecked
    // slicing below must be impossible to reach with a bad span.
    for &(start, end) in spans {
        assert!(
            start <= end && end <= a.len(),
            "partition span {start}..{end} out of bounds for row of length {}",
            a.len()
        );
    }
    #[cfg(target_arch = "x86_64")]
    let use_avx2 = std::arch::is_x86_feature_detected!("avx2");
    for (i, &(start, end)) in spans.iter().enumerate() {
        // SAFETY: every span was validated against the row length above.
        let (pa, pb) = unsafe { (a.get_unchecked(start..end), b.get_unchecked(start..end)) };
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: feature checked (AVX2) / baseline (SSE2).
            out[i] = if use_avx2 && pa.len() >= 32 {
                unsafe { dot_u8_i32_avx2(pa, pb) }
            } else {
                unsafe { dot_u8_i32_sse2(pa, pb) }
            };
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            out[i] = dot_u8_i32_scalar(pa, pb);
        }
    }
}

/// Integer GEMM where `B` is provided transposed (`n × k` row-major): `C = A · Bᵀ`.
///
/// The quantized K matrix is stored token-major, so the score computation `Q'·K'ᵀ` uses
/// this layout directly.
pub fn gemm_u8_i32_transposed_b(a: &[u8], b_t: &[u8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(
        a.len(),
        m * k,
        "gemm_u8_i32_transposed_b: A length mismatch"
    );
    assert_eq!(
        b_t.len(),
        n * k,
        "gemm_u8_i32_transposed_b: B length mismatch"
    );
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, out_ij) in out_row.iter_mut().enumerate() {
            *out_ij = dot_u8_i32(a_row, &b_t[j * k..(j + 1) * k]);
        }
    }
    out
}

/// Matrix-vector product `y = A · x` (FP32).
pub fn matvec(a: &Matrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(a.cols(), x.len(), "matvec dimension mismatch");
    a.iter_rows()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

/// Dot product of two slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert!(
                    (a.get(r, c) - b.get(r, c)).abs() <= tol,
                    "({r},{c}): {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                );
            }
        }
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = DetRng::new(4);
        let a = Matrix::random_normal(6, 6, 0.0, 1.0, &mut rng);
        let i = Matrix::identity(6);
        assert_close(&matmul(&a, &i), &a, 1e-6);
        assert_close(&matmul(&i, &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        matmul(&a, &b);
    }

    #[test]
    fn transposed_b_matches_explicit_transpose() {
        let mut rng = DetRng::new(5);
        let a = Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(8, 5, 0.0, 1.0, &mut rng);
        let expect = matmul(&a, &b);
        let got = matmul_transposed_b(&a, &b.transpose());
        assert_close(&expect, &got, 1e-4);
    }

    #[test]
    fn blocked_matches_reference() {
        let mut rng = DetRng::new(6);
        let a = Matrix::random_normal(17, 23, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(23, 11, 0.0, 1.0, &mut rng);
        let expect = matmul(&a, &b);
        for block in [1, 4, 8, 64] {
            let got = matmul_blocked(&a, &b, block);
            assert_close(&expect, &got, 1e-3);
        }
    }

    #[test]
    fn i8_gemm_known_values() {
        // A = [[1, -2], [3, 4]], B = [[5, 6], [7, 8]]
        let a: Vec<i8> = vec![1, -2, 3, 4];
        let b: Vec<i8> = vec![5, 6, 7, 8];
        let c = gemm_i8_i32(&a, &b, 2, 2, 2);
        assert_eq!(c, vec![-9, -10, 43, 50]);
    }

    #[test]
    fn u8_gemm_matches_f32_reference() {
        let mut rng = DetRng::new(7);
        let m = 5;
        let k = 16;
        let n = 9;
        let a: Vec<u8> = (0..m * k).map(|_| rng.range_usize(0, 4) as u8).collect();
        let b: Vec<u8> = (0..k * n).map(|_| rng.range_usize(0, 256) as u8).collect();
        let got = gemm_u8_i32(&a, &b, m, k, n);
        let af = Matrix::from_vec(m, k, a.iter().map(|&x| x as f32).collect());
        let bf = Matrix::from_vec(k, n, b.iter().map(|&x| x as f32).collect());
        let expect = matmul(&af, &bf);
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g as f32, expect.as_slice()[i]);
        }
    }

    #[test]
    fn blocked_u8_dot_matches_scalar_sum() {
        let mut rng = DetRng::new(11);
        for len in [0, 1, 15, 16, 17, 31, 32, 64, 100, 255] {
            let a: Vec<u8> = (0..len).map(|_| rng.range_usize(0, 256) as u8).collect();
            let b: Vec<u8> = (0..len).map(|_| rng.range_usize(0, 256) as u8).collect();
            let scalar: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_u8_i32(&a, &b), scalar, "len {len}");
            assert_eq!(dot_u8_i32_scalar(&a, &b), scalar, "scalar len {len}");
        }
        // Saturated inputs at maximal length exercise the pairwise i32 sums.
        let a = vec![255u8; 4096];
        assert_eq!(dot_u8_i32(&a, &a), 4096 * 255 * 255);
    }

    #[test]
    fn fused_partition_dots_match_per_partition_dots() {
        let mut rng = DetRng::new(12);
        for (len, partition) in [(128usize, 64usize), (100, 32), (64, 64), (36, 16)] {
            let a: Vec<u8> = (0..len).map(|_| rng.range_usize(0, 256) as u8).collect();
            let b: Vec<u8> = (0..len).map(|_| rng.range_usize(0, 256) as u8).collect();
            let spans: Vec<(usize, usize)> = (0..len.div_ceil(partition))
                .map(|p| (p * partition, ((p + 1) * partition).min(len)))
                .collect();
            let mut fused = vec![0i32; spans.len()];
            partition_dots_u8_i32(&a, &b, &spans, &mut fused);
            for (i, &(s, e)) in spans.iter().enumerate() {
                assert_eq!(
                    fused[i],
                    dot_u8_i32(&a[s..e], &b[s..e]),
                    "{len}/{partition}@{i}"
                );
            }
        }
    }

    #[test]
    fn u8_gemm_transposed_matches_untransposed() {
        let mut rng = DetRng::new(8);
        let m = 3;
        let k = 12;
        let n = 7;
        let a: Vec<u8> = (0..m * k).map(|_| rng.range_usize(0, 4) as u8).collect();
        let b: Vec<u8> = (0..k * n).map(|_| rng.range_usize(0, 4) as u8).collect();
        // b_t is n x k.
        let mut b_t = vec![0u8; n * k];
        for z in 0..k {
            for j in 0..n {
                b_t[j * k + z] = b[z * n + j];
            }
        }
        assert_eq!(
            gemm_u8_i32(&a, &b, m, k, n),
            gemm_u8_i32_transposed_b(&a, &b_t, m, k, n)
        );
    }

    #[test]
    fn i8_gemm_accumulates_in_i32_without_overflow() {
        // 127 * 127 * 512 = 8,258,048 which overflows i16 but not i32.
        let k = 512;
        let a = vec![127i8; k];
        let b = vec![127i8; k];
        let c = gemm_i8_i32(&a, &b, 1, k, 1);
        assert_eq!(c[0], 127 * 127 * k as i32);
    }

    #[test]
    fn matvec_and_dot() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0]);
        let y = matvec(&a, &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 8.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn zero_sized_products() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 4);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 4));
    }

    #[test]
    fn associativity_of_scaling() {
        let mut rng = DetRng::new(9);
        let a = Matrix::random_normal(3, 3, 0.0, 1.0, &mut rng);
        let b = Matrix::random_normal(3, 3, 0.0, 1.0, &mut rng);
        let left = matmul(&a.scale(2.0), &b);
        let right = matmul(&a, &b).scale(2.0);
        assert_close(&left, &right, 1e-4);
    }
}
