//! Row-major `f32` matrix type used by every kernel in the workspace.

use crate::half::round_to_f16;
use crate::rng::DetRng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32` values.
///
/// Attention tensors in the reproduction are 2-D per head (`L × d_h` for Q/K/V,
/// `L_Q × L_KV` for scores/probabilities), so a simple 2-D matrix is sufficient; the
/// multi-head and multi-layer structure lives above this type.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix with i.i.d. normal entries (`mean`, `std_dev`).
    pub fn random_normal(
        rows: usize,
        cols: usize,
        mean: f32,
        std_dev: f32,
        rng: &mut DetRng,
    ) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.normal_f32(mean, std_dev))
    }

    /// Builds a matrix with i.i.d. uniform entries in `[lo, hi)`.
    pub fn random_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut DetRng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.range_f32(lo, hi))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the backing row-major slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Returns a copy of the sub-matrix `[row_start..row_end) × [col_start..col_end)`.
    pub fn block(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> Matrix {
        assert!(
            row_start <= row_end && row_end <= self.rows,
            "row range out of bounds"
        );
        assert!(
            col_start <= col_end && col_end <= self.cols,
            "col range out of bounds"
        );
        let mut out = Matrix::zeros(row_end - row_start, col_end - col_start);
        for (or, r) in (row_start..row_end).enumerate() {
            let src = &self.row(r)[col_start..col_end];
            out.row_mut(or).copy_from_slice(src);
        }
        out
    }

    /// Returns the columns `[col_start..col_end)` of the matrix as a new matrix.
    pub fn col_block(&self, col_start: usize, col_end: usize) -> Matrix {
        self.block(0, self.rows, col_start, col_end)
    }

    /// Returns the rows `[row_start..row_end)` of the matrix as a new matrix.
    pub fn row_block(&self, row_start: usize, row_end: usize) -> Matrix {
        self.block(row_start, row_end, 0, self.cols)
    }

    /// Writes `block` into this matrix at offset `(row_off, col_off)`.
    pub fn set_block(&mut self, row_off: usize, col_off: usize, block: &Matrix) {
        assert!(
            row_off + block.rows <= self.rows,
            "block rows overflow destination"
        );
        assert!(
            col_off + block.cols <= self.cols,
            "block cols overflow destination"
        );
        for r in 0..block.rows {
            let dst = &mut self.data[(row_off + r) * self.cols + col_off
                ..(row_off + r) * self.cols + col_off + block.cols];
            dst.copy_from_slice(block.row(r));
        }
    }

    /// Vertically concatenates `self` on top of `other` (both must have equal `cols`).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Appends a single row (must have `cols` elements).
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Horizontally concatenates `self` with `other` (equal row counts).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack requires equal row counts");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise subtraction (`self - other`).
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// Rounds every element to FP16 storage precision (see [`crate::half`]).
    pub fn to_f16_precision(&self) -> Matrix {
        self.map(round_to_f16)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|x| (*x as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |acc, x| acc.max(x.abs()))
    }

    /// Minimum and maximum over a row range of a single column, used by per-column
    /// quantization partitions.
    pub fn col_min_max(&self, col: usize, row_start: usize, row_end: usize) -> (f32, f32) {
        assert!(col < self.cols && row_start < row_end && row_end <= self.rows);
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for r in row_start..row_end {
            let v = self.get(r, col);
            mn = mn.min(v);
            mx = mx.max(v);
        }
        (mn, mx)
    }

    /// Minimum and maximum over a column range of a single row, used by per-row
    /// quantization partitions.
    pub fn row_min_max(&self, row: usize, col_start: usize, col_end: usize) -> (f32, f32) {
        assert!(row < self.rows && col_start < col_end && col_end <= self.cols);
        let slice = &self.row(row)[col_start..col_end];
        let mut mn = f32::INFINITY;
        let mut mx = f32::NEG_INFINITY;
        for &v in slice {
            mn = mn.min(v);
            mx = mx.max(v);
        }
        (mn, mx)
    }

    /// Returns true if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            let ellipsis = if self.cols > 8 { ", ..." } else { "" };
            writeln!(f, "  [{}{}]", shown.join(", "), ellipsis)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Matrix::full(2, 2, 3.5);
        assert!(f.as_slice().iter().all(|&x| x == 3.5));
    }

    #[test]
    fn identity_diagonal() {
        let i = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        m[(0, 1)] = -2.0;
        assert_eq!(m[(0, 1)], -2.0);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = DetRng::new(1);
        let m = Matrix::random_normal(5, 7, 0.0, 1.0, &mut rng);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().shape(), (7, 5));
        assert_eq!(m.get(2, 3), m.transpose().get(3, 2));
    }

    #[test]
    fn block_extraction() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = m.block(1, 3, 2, 4);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.get(0, 0), 6.0);
        assert_eq!(b.get(1, 1), 11.0);
        let rb = m.row_block(2, 4);
        assert_eq!(rb.row(0), m.row(2));
        let cb = m.col_block(0, 2);
        assert_eq!(cb.get(3, 1), 13.0);
    }

    #[test]
    fn set_block_round_trips() {
        let mut m = Matrix::zeros(4, 4);
        let b = Matrix::full(2, 2, 9.0);
        m.set_block(1, 2, &b);
        assert_eq!(m.block(1, 3, 2, 4), b);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn stack_and_push_row() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let mut c = a.clone();
        c.push_row(&[7.0, 8.0]);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(1), &[7.0, 8.0]);

        let h = a.hstack(&Matrix::from_vec(1, 1, vec![9.0]));
        assert_eq!(h.shape(), (1, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).row(0), &[1.5, 2.5, 3.5]);
        assert_eq!(a.sub(&b).row(0), &[0.5, 1.5, 2.5]);
        assert_eq!(a.scale(2.0).row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).row(0), &[1.0, 4.0, 9.0]);
    }

    #[test]
    fn norms_and_stats() {
        let m = Matrix::from_vec(1, 4, vec![1.0, -2.0, 2.0, 0.0]);
        assert!((m.frobenius_norm() - 3.0).abs() < 1e-6);
        assert_eq!(m.max_abs(), 2.0);
        assert_eq!(m.sum(), 1.0);
        assert_eq!(m.mean(), 0.25);
        assert!(m.all_finite());
        let bad = Matrix::from_vec(1, 1, vec![f32::NAN]);
        assert!(!bad.all_finite());
    }

    #[test]
    fn min_max_helpers() {
        let m = Matrix::from_vec(3, 2, vec![1.0, -1.0, 5.0, 2.0, -3.0, 0.0]);
        assert_eq!(m.col_min_max(0, 0, 3), (-3.0, 5.0));
        assert_eq!(m.col_min_max(0, 0, 2), (1.0, 5.0));
        assert_eq!(m.row_min_max(1, 0, 2), (2.0, 5.0));
    }

    #[test]
    fn random_normal_statistics() {
        let mut rng = DetRng::new(3);
        let m = Matrix::random_normal(100, 100, 1.0, 2.0, &mut rng);
        let mean = m.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn f16_precision_reduces_resolution() {
        let m = Matrix::from_vec(1, 2, vec![1.0 + 1e-5, 1000.25]);
        let h = m.to_f16_precision();
        assert_eq!(h.get(0, 0), 1.0);
        // 1000.25 is not representable in fp16 (spacing is 0.5 at that magnitude).
        assert_eq!(h.get(0, 1), 1000.0);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn col_returns_column_copy() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.col(1), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    fn debug_format_does_not_panic() {
        let m = Matrix::from_fn(10, 12, |r, c| (r + c) as f32);
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 10x12"));
    }
}
