//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the workspace (stochastic rounding, synthetic
//! workloads, Poisson arrivals, random tensors) draws from [`DetRng`], a Xoshiro256**
//! generator seeded through SplitMix64. Using a single in-tree generator keeps every
//! experiment reproducible from a `u64` seed and avoids any dependence on platform
//! entropy.
//!
//! `DetRng` also implements [`rand::RngCore`] so it can drive `rand` distributions when
//! convenient.

use rand::RngCore;

/// SplitMix64 generator.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state required by
/// [`Xoshiro256`]; it is also a perfectly serviceable (if statistically weaker)
/// stand-alone generator for non-critical decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256** generator: the workspace-wide deterministic RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_cache: Option<f64>,
}

/// Alias used across the workspace.
pub type DetRng = Xoshiro256;

impl Xoshiro256 {
    /// Creates a generator from a single `u64` seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is invalid for xoshiro; SplitMix64 cannot produce four
        // consecutive zeros from any seed, but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self {
            s,
            gauss_cache: None,
        }
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(hi >= lo, "range_f32 requires hi >= lo");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo, "range_f64 requires hi >= lo");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `hi <= lo`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "range_usize requires hi > lo (got {lo}..{hi})");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal sample via the Box-Muller transform (with caching of the
    /// second output).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_cache.take() {
            return z;
        }
        // Avoid u1 == 0 which would produce ln(0).
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_cache = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// `f32` normal sample convenience wrapper.
    pub fn normal_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        self.normal(mean as f64, std_dev as f64) as f32
    }

    /// Exponential sample with the given rate `lambda` (mean `1/lambda`).
    ///
    /// Used for Poisson-process inter-arrival times in the workload generator.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let mut u = self.next_f64();
        while u <= f64::MIN_POSITIVE {
            u = self.next_f64();
        }
        -u.ln() / lambda
    }

    /// Log-normal sample parameterised by the mean/std of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Derives an independent child generator; useful to give each simulated request or
    /// attention head its own stream without correlating draws.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        Xoshiro256::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(123);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f32_in_unit_interval() {
        let mut rng = DetRng::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_usize_covers_bounds() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[rng.range_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins should be hit: {seen:?}");
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut rng = DetRng::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn normal_moments_are_correct() {
        let mut rng = DetRng::new(17);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "normal mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "normal var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = DetRng::new(23);
        let lambda = 0.25;
        let n = 200_000;
        let mean = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "exponential mean {mean}");
    }

    #[test]
    fn chance_respects_probability() {
        let mut rng = DetRng::new(31);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "chance fraction {frac}");
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut rng = DetRng::new(77);
        let mut child = rng.fork();
        let parent_next: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        let child_next: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(parent_next, child_next);
    }

    #[test]
    fn fill_bytes_fills_partial_chunks() {
        let mut rng = DetRng::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rngcore_impl_matches_inherent() {
        let mut a = DetRng::new(100);
        let mut b = DetRng::new(100);
        assert_eq!(RngCore::next_u64(&mut a), Xoshiro256::next_u64(&mut b));
    }
}
